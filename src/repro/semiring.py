"""Semirings for generalized sparse matrix-matrix multiplication.

The paper evaluates SpGEMM as a building block of graph algorithms
(multi-source BFS, triangle counting, Markov clustering).  Those algorithms
are naturally expressed as matrix products over *semirings* other than the
ordinary ``(+, *)`` pair — e.g. boolean ``(or, and)`` for reachability.  Every
kernel in :mod:`repro.core` therefore accepts a :class:`Semiring`.

A semiring here is ``(add, mul, zero, one)`` where

* ``add`` is an associative, commutative :class:`numpy.ufunc` with identity
  ``zero`` (used to accumulate intermediate products that land on the same
  output coordinate),
* ``mul`` is a binary :class:`numpy.ufunc` (used to combine ``a_ik`` with
  ``b_kj``),
* implicit (non-stored) matrix entries have value ``zero``.

Using ufuncs keeps the scalar kernels trivial (call with two scalars) while
letting the vectorized ESC kernel use ``ufunc.reduceat`` for segment
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ConfigError

#: dtype every registered semiring's accumulator operates over.  One of the
#: two sanctioned dtype-constant sources of the numeric contract (the other
#: is ``matrix/csr.py``, whose ``VALUE_DTYPE`` matches this by design —
#: asserted there); kernels allocating accumulator scratch take their dtype
#: from here or from the operand, never from a literal.
ACCUM_DTYPE = np.float64

__all__ = [
    "Semiring",
    "ACCUM_DTYPE",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "MAX_TIMES",
    "MIN_TIMES",
    "PLUS_FIRST",
    "SEMIRINGS",
    "get_semiring",
]


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring ``(add, mul, zero, one)`` over float64 values.

    Attributes
    ----------
    name:
        Canonical lower-case identifier, e.g. ``"plus_times"``.
    add:
        Additive monoid operation (a numpy ufunc supporting ``reduceat``).
    mul:
        Multiplicative operation (a numpy ufunc, or any ``f(x, y) -> z``
        broadcasting callable).
    zero:
        Identity of ``add`` — the value of implicit sparse entries.
    one:
        Identity of ``mul``.
    annihilates:
        If True, ``mul(x, zero) == zero`` holds, so results equal to ``zero``
        may be dropped from the output pattern.  The paper's kernels never
        drop numerically-cancelled entries (pattern is decided symbolically),
        so this flag is informational and used only by explicit pruning
        helpers.
    """

    name: str
    add: np.ufunc
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float
    one: float
    annihilates: bool = True

    def scalar_add(self, x: float, y: float) -> float:
        """Add two scalar values under this semiring."""
        return float(self.add(x, y))

    def scalar_mul(self, x: float, y: float) -> float:
        """Multiply two scalar values under this semiring."""
        return float(self.mul(x, y))

    def reduce_segments(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Reduce ``values`` over contiguous segments beginning at ``starts``.

        Wrapper around :meth:`numpy.ufunc.reduceat` used by the ESC kernel to
        compress duplicate output coordinates after sorting.  ``starts`` must
        be strictly increasing and non-empty; every segment is non-empty
        (which is always the case for ESC boundaries), so the reduceat
        empty-segment pitfall does not arise.
        """
        if len(values) == 0:
            return np.empty(0, dtype=values.dtype)
        # The one sanctioned pairwise reduction: ESC's contract is "sorted
        # merge", not "scalar-kernel replica" (ordered paths must use
        # accumulate_segments below).
        return self.add.reduceat(values, starts)  # repro-lint: disable=accum-order

    def accumulate_segments(
        self,
        values: np.ndarray,
        new_run: np.ndarray,
        starts: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduce contiguous segments in strict left-to-right order.

        :meth:`reduce_segments` delegates to ``ufunc.reduceat``, which numpy
        may evaluate *pairwise* for floating-point accuracy — an addition
        tree, not a sequence.  The scalar kernels instead fold one value at
        a time into their accumulator, so a bit-for-bit replica needs the
        exact same sequence.  This method reproduces it: each segment's
        output starts as its first value verbatim (no identity fold — this
        also preserves ``-0.0`` and matters for non-``plus`` monoids on
        values below the identity), and every later value is applied with
        one ordered ``add`` via ``ufunc.at``, which processes its operands
        in array order.

        ``new_run`` is the boolean segment-start mask (``new_run[0]`` must
        be True); ``starts`` may pass ``np.flatnonzero(new_run)`` when the
        caller already has it.
        """
        if len(values) == 0:
            return np.empty(0, dtype=values.dtype)
        if starts is None:
            starts = np.flatnonzero(new_run)
        out = values[starts].copy()
        if len(values) > len(starts):
            seg_ids = np.cumsum(new_run) - 1
            rest = ~new_run
            self.add.at(out, seg_ids[rest], values[rest])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name!r})"


def _first(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``mul`` that returns its first operand (useful for selection products)."""
    return np.broadcast_arrays(x, y)[0].copy() if np.ndim(x) or np.ndim(y) else x


#: Classical arithmetic semiring — ordinary matrix multiplication.
PLUS_TIMES = Semiring("plus_times", np.add, np.multiply, 0.0, 1.0)

#: Boolean semiring over {0.0, 1.0}: reachability / BFS frontier expansion.
#: ``max`` realizes logical OR and ``min`` logical AND on 0/1 values.
OR_AND = Semiring("or_and", np.maximum, np.minimum, 0.0, 1.0)

#: Tropical (shortest-path) semiring.  Implicit entries are +inf.
MIN_PLUS = Semiring("min_plus", np.minimum, np.add, float("inf"), 0.0)

#: Used e.g. in maximal independent set and some label propagation variants.
MAX_TIMES = Semiring("max_times", np.maximum, np.multiply, float("-inf"), 1.0)

#: Min-times semiring (reliability-style products on positive values).
MIN_TIMES = Semiring("min_times", np.minimum, np.multiply, float("inf"), 1.0)

#: Plus-first: accumulates values of A weighted by the *pattern* of B.
PLUS_FIRST = Semiring("plus_first", np.add, _first, 0.0, 1.0, annihilates=False)

SEMIRINGS: dict[str, Semiring] = {
    sr.name: sr
    for sr in (PLUS_TIMES, OR_AND, MIN_PLUS, MAX_TIMES, MIN_TIMES, PLUS_FIRST)
}


def get_semiring(which: "str | Semiring") -> Semiring:
    """Resolve a semiring by name or pass an instance through.

    >>> get_semiring("plus_times") is PLUS_TIMES
    True
    """
    if isinstance(which, Semiring):
        return which
    try:
        return SEMIRINGS[which]
    except KeyError:
        raise ConfigError(
            f"unknown semiring {which!r}; available: {sorted(SEMIRINGS)}"
        ) from None
