"""Flop-aware multiplication chains (e.g. AMG's Galerkin triple product).

The paper's introduction lists Algebraic Multigrid among SpGEMM's major
consumers: the coarse operator is the triple product ``A_c = R A P``, and
the association order — ``(R A) P`` vs ``R (A P)`` — can change the work by
large factors.  :func:`multiply_chain` picks the order by the *exact* flop
count of every candidate association (computed by the same machinery as the
paper's load balancer, Fig. 6's FLOPS vector) via the classic
matrix-chain dynamic program, then evaluates it with any registered kernel.

Flop counts of products that involve intermediate results are themselves
exact: the DP materializes intermediate *patterns* bottom-up (cheap relative
to the numeric multiplies it saves).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR
from ..matrix.stats import total_flop
from ..semiring import PLUS_TIMES, Semiring
from .spgemm import spgemm

__all__ = ["ChainPlan", "multiply_chain", "plan_chain", "matrix_power"]


@dataclass(frozen=True)
class ChainPlan:
    """Chosen association order and its predicted cost."""

    #: nested tuple over operand indices, e.g. ``((0, 1), 2)``
    order: tuple
    #: total multiplication count of the chosen order
    flop: int
    #: flop of the worst order, for reporting the saving
    worst_flop: int

    @property
    def saving(self) -> float:
        """Worst-order flop divided by chosen-order flop (>= 1)."""
        return self.worst_flop / self.flop if self.flop else 1.0

    def render(self, names: "list[str] | None" = None) -> str:
        """Human-readable association, e.g. ``((R x A) x P)``."""

        def rec(node) -> str:
            if isinstance(node, int):
                return names[node] if names else f"M{node}"
            return f"({rec(node[0])} x {rec(node[1])})"

        return rec(self.order)


def _pattern(m: CSR) -> CSR:
    import numpy as np

    return CSR(
        m.shape, m.indptr, m.indices, np.ones(m.nnz), sorted_rows=m.sorted_rows
    )


def plan_chain(matrices: "list[CSR]") -> ChainPlan:
    """Matrix-chain DP over **exact** flop counts.

    For up to a handful of operands (the practical case: RAP is three) the
    DP evaluates every split of every interval, computing each candidate
    intermediate's pattern once via the boolean product.
    """
    n = len(matrices)
    if n == 0:
        raise ConfigError("multiply_chain needs at least one matrix")
    for x, y in zip(matrices, matrices[1:]):
        if x.ncols != y.nrows:
            raise ShapeError(
                f"chain dimension mismatch: {x.shape} then {y.shape}"
            )
    if n > 8:
        raise ConfigError(
            f"chain of {n} operands: the exact-flop DP materializes "
            "O(n^2) intermediate patterns; split the chain manually"
        )
    patterns = [_pattern(m) for m in matrices]

    # best[(i, j)] = (flop, order, pattern) for the product of i..j inclusive
    best: "dict[tuple[int, int], tuple[int, tuple, CSR]]" = {}
    worst: "dict[tuple[int, int], int]" = {}
    for i in range(n):
        best[(i, i)] = (0, i, patterns[i])
        worst[(i, i)] = 0
    for span in range(1, n):
        for i in range(n - span):
            j = i + span
            candidates = []
            worst_here = 0
            for k in range(i, j):
                lf, lo, lp = best[(i, k)]
                rf, ro, rp = best[(k + 1, j)]
                step = total_flop(lp, rp)
                candidates.append((lf + rf + step, (lo, ro), lp, rp))
                worst_here = max(
                    worst_here, worst[(i, k)] + worst[(k + 1, j)] + step
                )
            flop, order, lp, rp = min(candidates, key=lambda t: t[0])
            product = spgemm(lp, rp, algorithm="esc", semiring="or_and")
            best[(i, j)] = (flop, order, _pattern(product))
            worst[(i, j)] = worst_here
    flop, order, _ = best[(0, n - 1)]
    return ChainPlan(order=order, flop=flop, worst_flop=worst[(0, n - 1)])


def multiply_chain(
    matrices: "list[CSR]",
    *,
    algorithm: str = "hash",
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    engine: str = "faithful",
    plan: ChainPlan | None = None,
    plan_cache=None,
    tracer=None,
) -> CSR:
    """Multiply a chain of matrices in the flop-optimal association order.

    ``plan_cache`` (a :class:`repro.core.plan.PlanCache`) is forwarded to
    every product, so re-evaluating a chain whose operands keep their
    sparsity patterns — AMG's Galerkin triple product per cycle, Markov
    iterations — pays structure discovery only on the first evaluation.
    ``tracer`` is forwarded to every product, so each association step shows
    up as its own ``spgemm`` root span.
    """
    if plan is None:
        plan = plan_chain(matrices)

    def evaluate(node) -> CSR:
        if isinstance(node, int):
            return matrices[node]
        left = evaluate(node[0])
        right = evaluate(node[1])
        return spgemm(
            left, right,
            algorithm=algorithm, semiring=semiring,
            sort_output=sort_output, nthreads=nthreads, engine=engine,
            plan_cache=plan_cache, tracer=tracer,
        )

    return evaluate(plan.order)


def matrix_power(
    a: CSR,
    exponent: int,
    *,
    algorithm: str = "hash",
    semiring: "str | Semiring" = PLUS_TIMES,
    nthreads: int = 1,
    engine: str = "faithful",
    plan_cache=None,
) -> CSR:
    """``A^k`` by repeated squaring — ceil(log2 k) SpGEMMs instead of k-1.

    Over the boolean semiring this is k-hop reachability; over plus-times
    it is the walk-counting power used by spectral-style graph statistics.
    ``exponent`` must be >= 1 (sparse identity is well-defined, but an
    explicit ``identity(n)`` call is clearer at call sites).  The squaring
    sequence produces a fresh pattern at every step, so ``plan_cache``
    mostly pays off across *repeated* ``matrix_power`` calls on the same
    matrix (each step's plan is recalled the second time around).
    """
    if a.nrows != a.ncols:
        raise ShapeError("matrix_power requires a square matrix")
    if exponent < 1:
        raise ConfigError(f"exponent must be >= 1, got {exponent}")
    result: "CSR | None" = None
    base = a
    e = exponent
    while True:
        if e & 1:
            result = base if result is None else spgemm(
                result, base,
                algorithm=algorithm, semiring=semiring, nthreads=nthreads,
                engine=engine, plan_cache=plan_cache,
            )
        e >>= 1
        if not e:
            break
        base = spgemm(
            base, base,
            algorithm=algorithm, semiring=semiring, nthreads=nthreads,
            engine=engine, plan_cache=plan_cache,
        )
    return result
