"""Flop-aware multiplication chains (e.g. AMG's Galerkin triple product).

The paper's introduction lists Algebraic Multigrid among SpGEMM's major
consumers: the coarse operator is the triple product ``A_c = R A P``, and
the association order — ``(R A) P`` vs ``R (A P)`` — can change the work by
large factors.  :func:`multiply_chain` picks the order by the *exact* flop
count of every candidate association (computed by the same machinery as the
paper's load balancer, Fig. 6's FLOPS vector) via the classic
matrix-chain dynamic program, then evaluates it with any registered kernel.

Flop counts of products that involve intermediate results are themselves
exact: the DP materializes intermediate *patterns* bottom-up (cheap relative
to the numeric multiplies it saves).

On top of the association order, the planner recognizes two **fusable
shapes** (see ``docs/fusion.md``):

* **trailing elementwise mask** — ``(A · B) .* M``: pass ``mask=`` and the
  final product runs through the fused :func:`repro.core.masked.masked_spgemm`
  instead of materializing the full product and filtering it;
* **sandwich triple products** — ``R · A · P`` evaluated left-deep with
  sorted output streams the narrow intermediate block-by-block
  (:meth:`CSR.row_block` views + :func:`repro.matrix.ops.vstack_rows`), so
  the full ``R · A`` is never resident at once.

Each :class:`ChainPlan` node carries a :class:`StagePlan` with per-stage
algorithm/engine choices derived from the symbolic quantities (stage flop
and compression ratio), used when the caller asks for ``algorithm="auto"``
/ ``engine="auto"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR
from ..matrix.ops import pattern, pattern_filter, vstack_rows
from ..matrix.stats import total_flop
from ..semiring import PLUS_TIMES, Semiring
from .masked import masked_spgemm
from .options import ChainOptions
from .spgemm import spgemm
from .symbolic import iter_row_blocks

__all__ = [
    "ChainPlan",
    "StagePlan",
    "multiply_chain",
    "plan_chain",
    "matrix_power",
]

#: Stage flop above which the planner picks the batched engine: below this
#: the per-call numpy overhead of the vectorized pipeline rivals the scalar
#: kernel's row loop, above it the ~16x engine win applies.
FAST_FLOP_THRESHOLD = 4096

#: Stage compression ratio (flop / nnz) at which collisions dominate and
#: the planner prefers the vector-probing hash (the Table-4 boundary).
HIGH_CR_THRESHOLD = 2.0


@dataclass(frozen=True)
class StagePlan:
    """Per-stage execution choice of one chain node, from symbolic facts."""

    #: the nested order node this stage evaluates, e.g. ``(0, 1)``
    node: tuple
    #: multiplications of this stage alone
    flop: int
    #: output pattern nonzeros of this stage (unmasked)
    nnz: int
    #: algorithm picked from the stage's compression ratio
    algorithm: str
    #: engine picked from the stage's flop volume
    engine: str
    #: True on the final stage when the chain carries a fused mask
    masked: bool = False
    #: output nonzeros after the mask (None when ``masked`` is False)
    masked_nnz: "int | None" = None


@dataclass(frozen=True)
class ChainPlan:
    """Chosen association order and its predicted cost."""

    #: nested tuple over operand indices, e.g. ``((0, 1), 2)``
    order: tuple
    #: total multiplication count of the chosen order
    flop: int
    #: flop of the worst order, for reporting the saving
    worst_flop: int
    #: per-stage choices, bottom-up (the root stage is last)
    stages: "tuple[StagePlan, ...]" = ()
    #: recognized fusable shape: None, "masked", "sandwich" or
    #: "masked-sandwich"
    fusable: "str | None" = None

    @property
    def saving(self) -> float:
        """Worst-order flop divided by chosen-order flop (>= 1)."""
        return self.worst_flop / self.flop if self.flop else 1.0

    def render(self, names: "list[str] | None" = None) -> str:
        """Human-readable association, e.g. ``((R x A) x P)``."""

        def rec(node) -> str:
            if isinstance(node, int):
                return names[node] if names else f"M{node}"
            return f"({rec(node[0])} x {rec(node[1])})"

        out = rec(self.order)
        if self.fusable in ("masked", "masked-sandwich"):
            out += " .* M"
        return out


def plan_chain(
    matrices: "list[CSR]",
    *,
    mask: CSR | None = None,
    complement: bool = False,
) -> ChainPlan:
    """Matrix-chain DP over **exact** flop counts.

    For up to a handful of operands (the practical case: RAP is three) the
    DP evaluates every split of every interval, computing each candidate
    intermediate's pattern once via the boolean product.  With ``mask=``,
    the final stage is planned as a fused masked product and its
    ``masked_nnz`` records what fusion keeps off the output path.
    """
    n = len(matrices)
    if n == 0:
        raise ConfigError("multiply_chain needs at least one matrix")
    for x, y in zip(matrices, matrices[1:]):
        if x.ncols != y.nrows:
            raise ShapeError(
                f"chain dimension mismatch: {x.shape} then {y.shape}"
            )
    if n > 8:
        raise ConfigError(
            f"chain of {n} operands: the exact-flop DP materializes "
            "O(n^2) intermediate patterns; split the chain manually"
        )
    if mask is not None:
        if n < 2:
            raise ConfigError(
                "a chain mask gates a product; it needs at least two operands"
            )
        if mask.shape != (matrices[0].nrows, matrices[-1].ncols):
            raise ShapeError(
                f"mask shape {mask.shape} != chain output shape "
                f"{(matrices[0].nrows, matrices[-1].ncols)}"
            )
    patterns = [pattern(m) for m in matrices]

    # best[(i, j)] = (flop, order, pattern) for the product of i..j inclusive
    best: "dict[tuple[int, int], tuple[int, tuple, CSR]]" = {}
    worst: "dict[tuple[int, int], int]" = {}
    for i in range(n):
        best[(i, i)] = (0, i, patterns[i])
        worst[(i, i)] = 0
    for span in range(1, n):
        for i in range(n - span):
            j = i + span
            candidates = []
            worst_here = 0
            for k in range(i, j):
                lf, lo, lp = best[(i, k)]
                rf, ro, rp = best[(k + 1, j)]
                step = total_flop(lp, rp)
                candidates.append((lf + rf + step, (lo, ro), lp, rp))
                worst_here = max(
                    worst_here, worst[(i, k)] + worst[(k + 1, j)] + step
                )
            flop, order, lp, rp = min(candidates, key=lambda t: t[0])
            product = spgemm(lp, rp, algorithm="esc", semiring="or_and")
            best[(i, j)] = (flop, order, pattern(product))
            worst[(i, j)] = worst_here
    flop, order, _ = best[(0, n - 1)]

    # Walk the chosen tree bottom-up, pricing each stage from the patterns
    # the DP already materialized.
    stages: "list[StagePlan]" = []

    def walk(node) -> "tuple[int, int, CSR]":
        if isinstance(node, int):
            return node, node, patterns[node]
        li, _, lp = walk(node[0])
        _, rj, rp = walk(node[1])
        step = total_flop(lp, rp)
        pat = best[(li, rj)][2]
        cr = step / max(pat.nnz, 1)
        stages.append(
            StagePlan(
                node=node,
                flop=step,
                nnz=pat.nnz,
                algorithm="hashvec" if cr >= HIGH_CR_THRESHOLD else "hash",
                engine="fast" if step >= FAST_FLOP_THRESHOLD else "faithful",
            )
        )
        return li, rj, pat

    root_pat = walk(order)[2] if not isinstance(order, int) else patterns[order]
    sandwich = n == 3 and order == ((0, 1), 2)
    fusable = None
    if mask is not None:
        fusable = "masked-sandwich" if sandwich else "masked"
        root = stages[-1]
        masked_nnz = pattern_filter(root_pat, mask, complement=complement).nnz
        stages[-1] = StagePlan(
            node=root.node, flop=root.flop, nnz=root.nnz,
            algorithm=root.algorithm, engine=root.engine,
            masked=True, masked_nnz=masked_nnz,
        )
    elif sandwich:
        fusable = "sandwich"
    return ChainPlan(
        order=order,
        flop=flop,
        worst_flop=worst[(0, n - 1)],
        stages=tuple(stages),
        fusable=fusable,
    )


def multiply_chain(
    matrices: "list[CSR]",
    opts: ChainOptions | None = None,
    *,
    mask: CSR | None = None,
    **kwargs,
) -> CSR:
    """Multiply a chain of matrices in the flop-optimal association order.

    Configuration arrives the same way as :func:`repro.spgemm`'s: a frozen
    :class:`~repro.core.options.ChainOptions` (``multiply_chain(mats,
    opts)``), loose keywords (``multiply_chain(mats, algorithm="hash",
    fuse="off")``), or both — keywords override the options object's
    fields, and a plain :class:`~repro.core.options.SpgemmOptions` is
    promoted field-by-field.  Everything is validated in one place
    (:meth:`ChainOptions.from_kwargs`); unknown keywords raise
    :class:`~repro.errors.ConfigError` listing the valid names.

    ``mask`` (an operand, so not part of the options) gates the chain's
    *final* product through the fused
    :func:`repro.core.masked.masked_spgemm` (``complement`` as there) — the
    unmasked result is never materialized.  ``algorithm="auto"`` /
    ``engine="auto"`` take each stage's choice from the
    :class:`ChainPlan`'s symbolic quantities instead of one global setting.

    ``fuse`` controls the sandwich streaming tier: ``"auto"``/``"on"``
    stream a left-deep sorted triple product block-by-block through
    row-block views (the full intermediate is never resident), ``"off"``
    materializes every intermediate as before.  Streaming applies only when
    it is exact: a left-deep order (every per-row result is independent of
    the surrounding rows, so blocks stack to the unfused product verbatim)
    with sorted output (unsorted orderings depend on block boundaries).

    ``plan`` carries a pre-built :class:`ChainPlan`; ``plan_cache`` (a
    :class:`repro.core.plan.PlanCache`) is forwarded to every product —
    including masked and streamed ones — so re-evaluating a chain whose
    operands keep their sparsity patterns (AMG's Galerkin triple product
    per cycle, Markov iterations) pays structure discovery only on the
    first evaluation.  ``tracer`` is forwarded to every product, so each
    association step shows up as its own root span.
    """
    options = ChainOptions.from_kwargs(opts, **kwargs)
    algorithm = options.algorithm
    semiring = options.semiring
    sort_output = options.sort_output
    nthreads = options.nthreads
    engine = options.engine
    complement = options.complement
    fuse = options.fuse
    plan = options.plan
    plan_cache = options.plan_cache
    tracer = options.tracer
    if plan is not None and not isinstance(plan, ChainPlan):
        raise ConfigError(
            f"multiply_chain's plan must be a ChainPlan (from plan_chain), "
            f"got {type(plan).__name__}"
        )
    n = len(matrices)
    if mask is not None:
        if n < 2:
            raise ConfigError(
                "a chain mask gates a product; it needs at least two operands"
            )
        if mask.shape != (matrices[0].nrows, matrices[-1].ncols):
            raise ShapeError(
                f"mask shape {mask.shape} != chain output shape "
                f"{(matrices[0].nrows, matrices[-1].ncols)}"
            )
    if plan is None:
        plan = plan_chain(matrices, mask=mask, complement=complement)
    stage_map = {s.node: s for s in plan.stages}

    def choose(node) -> "tuple[str, str]":
        st = stage_map.get(node)
        alg = algorithm if algorithm != "auto" else (
            st.algorithm if st is not None else "hash"
        )
        eng = engine if engine != "auto" else (
            st.engine if st is not None else "faithful"
        )
        return alg, eng

    if (
        fuse != "off"
        and sort_output
        and n == 3
        and plan.order == ((0, 1), 2)
    ):
        return _stream_sandwich(
            matrices, choose=choose, mask=mask, complement=complement,
            semiring=semiring, nthreads=nthreads,
            plan_cache=plan_cache, tracer=tracer,
        )

    def evaluate(node, *, apply_mask: bool = False) -> CSR:
        if isinstance(node, int):
            return matrices[node]
        left = evaluate(node[0])
        right = evaluate(node[1])
        alg, eng = choose(node)
        if apply_mask:
            return masked_spgemm(
                left, right, mask,
                semiring=semiring, complement=complement,
                sort_output=sort_output, engine=eng, nthreads=nthreads,
                plan_cache=plan_cache, tracer=tracer,
            )
        return spgemm(
            left, right,
            algorithm=alg, semiring=semiring,
            sort_output=sort_output, nthreads=nthreads, engine=eng,
            plan_cache=plan_cache, tracer=tracer,
        )

    return evaluate(plan.order, apply_mask=mask is not None)


def _stream_sandwich(
    matrices: "list[CSR]",
    *,
    choose,
    mask: CSR | None,
    complement: bool,
    semiring: "str | Semiring",
    nthreads: int,
    plan_cache,
    tracer,
) -> CSR:
    """Evaluate a left-deep triple product in flop-bounded row blocks.

    Every SpGEMM algorithm here is row-local (output row ``i`` depends only
    on row ``i`` of the left operand), so evaluating ``(M0 · M1) · M2`` on
    row-block views of ``M0`` and stacking yields the unfused sorted result
    bit-for-bit — while only one block of the intermediate is ever alive.
    """
    m0, m1, m2 = matrices
    alg1, eng1 = choose((0, 1))
    alg2, eng2 = choose(((0, 1), 2))
    blocks: "list[CSR]" = []
    for r0, r1 in iter_row_blocks(m0, m1):
        left = m0.row_block(r0, r1)
        t = spgemm(
            left, m1,
            algorithm=alg1, semiring=semiring, sort_output=True,
            nthreads=nthreads, engine=eng1,
            plan_cache=plan_cache, tracer=tracer,
        )
        if mask is not None:
            blocks.append(
                masked_spgemm(
                    t, m2, mask.row_block(r0, r1),
                    semiring=semiring, complement=complement,
                    sort_output=True, engine=eng2, nthreads=nthreads,
                    plan_cache=plan_cache, tracer=tracer,
                )
            )
        else:
            blocks.append(
                spgemm(
                    t, m2,
                    algorithm=alg2, semiring=semiring, sort_output=True,
                    nthreads=nthreads, engine=eng2,
                    plan_cache=plan_cache, tracer=tracer,
                )
            )
    return vstack_rows(blocks)


def matrix_power(
    a: CSR,
    exponent: int,
    *,
    algorithm: str = "hash",
    semiring: "str | Semiring" = PLUS_TIMES,
    nthreads: int = 1,
    engine: str = "faithful",
    plan_cache=None,
) -> CSR:
    """``A^k`` by repeated squaring — ceil(log2 k) SpGEMMs instead of k-1.

    Over the boolean semiring this is k-hop reachability; over plus-times
    it is the walk-counting power used by spectral-style graph statistics.
    ``exponent`` must be >= 1 (sparse identity is well-defined, but an
    explicit ``identity(n)`` call is clearer at call sites).  The squaring
    sequence produces a fresh pattern at every step, so ``plan_cache``
    mostly pays off across *repeated* ``matrix_power`` calls on the same
    matrix (each step's plan is recalled the second time around).
    """
    if a.nrows != a.ncols:
        raise ShapeError("matrix_power requires a square matrix")
    if exponent < 1:
        raise ConfigError(f"exponent must be >= 1, got {exponent}")
    result: "CSR | None" = None
    base = a
    e = exponent
    while True:
        if e & 1:
            result = base if result is None else spgemm(
                result, base,
                algorithm=algorithm, semiring=semiring, nthreads=nthreads,
                engine=engine, plan_cache=plan_cache,
            )
        e >>= 1
        if not e:
            break
        base = spgemm(
            base, base,
            algorithm=algorithm, semiring=semiring, nthreads=nthreads,
            engine=engine, plan_cache=plan_cache,
        )
    return result
