"""SPA SpGEMM — Gustavson's dense sparse-accumulator algorithm.

A dense value array of width ``ncols`` plus a stamp array accumulates each
output row (Gilbert et al.'s SPA, §2 of the paper).  Per-thread SPAs give the
``O(n·t)`` temporary storage the paper attributes to naive parallel
Gustavson.  The inner scatter over one B row is numpy-vectorized, making this
the fastest *executable* scalar kernel in the package — it doubles as the
mid-scale correctness oracle.

The kernel is one-phase: thread-local buffers grow per row and are stitched
into the final CSR at the end, like the Heap kernel.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..observability import NULL_TRACER
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .accumulators import SparseAccumulator
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["spa_spgemm", "spa_numeric"]


def _spa_accumulate_row(
    spa: SparseAccumulator,
    i: int,
    a: CSR,
    b: CSR,
    sr: Semiring,
) -> int:
    """Scatter row ``i``'s intermediate products into ``spa``; returns flop."""
    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    spa.start_row(i)
    flop = 0
    for j in range(a_indptr[i], a_indptr[i + 1]):
        k = a_indices[j]
        lo, hi = b_indptr[k], b_indptr[k + 1]
        cols = b_indices[lo:hi]
        contrib = np.atleast_1d(sr.mul(a_data[j], b_data[lo:hi]))
        spa.scatter(cols, contrib, sr)
        flop += hi - lo
    return flop


def spa_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
    tracer=None,
) -> CSR:
    """Multiply via per-thread dense sparse accumulators.

    Inputs may be sorted or unsorted.  With ``sort_output=False`` rows come
    out in first-touch order (the order columns were first produced), which
    is generally unsorted.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    sr = get_semiring(semiring)
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span("partition", phase="partition"):
        if partition is None:
            partition = rows_to_threads(a, b, nthreads)
        elif partition.nrows != a.nrows:
            raise ConfigError(
                f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
            )

    nrows = a.nrows
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    pieces: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}

    total_flop = 0
    time_sort = tracer is not None and sort_output
    sort_seconds = 0.0
    clock = time.perf_counter
    with obs.span("numeric", phase="numeric", rows=nrows):
        for tid in range(partition.nthreads):
            spa = SparseAccumulator(b.ncols)
            thread_flop = 0
            for s, e in partition.rows_of(tid):
                row_cols: list[np.ndarray] = []
                row_vals: list[np.ndarray] = []
                for i in range(s, e):
                    thread_flop += _spa_accumulate_row(spa, i, a, b, sr)
                    if time_sort:
                        t0 = clock()
                        cols_out, vals_out = spa.harvest(sort=True)
                        sort_seconds += clock() - t0
                    else:
                        cols_out, vals_out = spa.harvest(sort=sort_output)
                    row_nnz[i] = len(cols_out)
                    row_cols.append(cols_out)
                    row_vals.append(vals_out)
                if row_cols:
                    pieces[s] = (
                        np.concatenate(row_cols) if row_cols else np.empty(0, INDEX_DTYPE),
                        np.concatenate(row_vals) if row_vals else np.empty(0, VALUE_DTYPE),
                    )
                else:
                    pieces[s] = (
                        np.empty(0, dtype=INDEX_DTYPE),
                        np.empty(0, dtype=VALUE_DTYPE),
                    )
            total_flop += thread_flop
            if stats is not None:
                stats.per_thread.append((spa.touches, thread_flop))
                spa.flush_stats(stats)
        if time_sort:
            tracer.record("sort", sort_seconds, phase="sort", what="row harvest+sort")

    with obs.span("stitch", phase="stitch"):
        indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(row_nnz, out=indptr[1:])
        nnz_total = int(indptr[-1])
        out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
        out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
        for s, (cols, vals) in pieces.items():
            out_indices[indptr[s] : indptr[s] + len(cols)] = cols
            out_data[indptr[s] : indptr[s] + len(vals)] = vals

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += nnz_total
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += nnz_total

    return CSR(
        (nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )


def spa_numeric(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    partition: ThreadPartition,
    indptr: np.ndarray,
    stats: KernelStats | None = None,
    tracer=None,
) -> CSR:
    """Numeric-only SPA multiplication against a cached output ``indptr``.

    The inspector–executor entry point (:mod:`repro.core.plan`): since SPA
    is one-phase, the only symbolic artifact worth caching is the output
    row-pointer array — knowing it lets each harvested row be written
    straight into its final slot, skipping the per-thread piece buffers and
    the stitch pass of :func:`spa_spgemm`.  Accumulation order is untouched,
    so output is bit-for-bit the fresh kernel's.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    sr = get_semiring(semiring)
    if partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )
    nrows = a.nrows
    nnz_total = int(indptr[-1])
    out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
    out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)

    total_flop = 0
    obs = tracer if tracer is not None else NULL_TRACER
    time_sort = tracer is not None and sort_output
    sort_seconds = 0.0
    clock = time.perf_counter
    with obs.span("numeric", phase="numeric", rows=nrows):
        for tid in range(partition.nthreads):
            spa = SparseAccumulator(b.ncols)
            thread_flop = 0
            for s, e in partition.rows_of(tid):
                for i in range(s, e):
                    thread_flop += _spa_accumulate_row(spa, i, a, b, sr)
                    if time_sort:
                        t0 = clock()
                        cols_out, vals_out = spa.harvest(sort=True)
                        sort_seconds += clock() - t0
                    else:
                        cols_out, vals_out = spa.harvest(sort=sort_output)
                    out_indices[indptr[i] : indptr[i + 1]] = cols_out
                    out_data[indptr[i] : indptr[i + 1]] = vals_out
            total_flop += thread_flop
            if stats is not None:
                stats.per_thread.append((spa.touches, thread_flop))
                spa.flush_stats(stats)
        if time_sort:
            tracer.record("sort", sort_seconds, phase="sort", what="row harvest+sort")

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += nnz_total
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += nnz_total

    return CSR(
        (nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )
