"""Executable behavioural proxy for KokkosKernels' ``kkmem`` SpGEMM.

KokkosKernels [Deveci/Trott/Rajamanickam 2017] accumulates with a
*multi-level hash map*: a small first-level table sized for the common case,
with overflow chained into a second-level pool.  The paper runs it with the
``kkmem`` option, unsorted output only (Table 1: 2 phases, HashMap,
Any/Unsorted).

This proxy implements that structure faithfully enough to count its extra
work: a first-level power-of-two table with *separate chaining* into an
append-only pool (begins/nexts arrays, as in kkmem), sized for the *average*
row rather than the maximum — which is exactly why it chains more and runs
slower than the paper's Hash kernel on heavy rows.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .accumulators import HASH_SCALE, lowest_p2
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["kokkos_proxy_spgemm"]


class _ChainedHashMap:
    """First-level table + chained overflow pool (kkmem-style)."""

    def __init__(self, l1_size: int, pool_capacity: int) -> None:
        self.l1_size = max(l1_size, 1)
        self.mask = self.l1_size - 1
        # begins[h] = pool index of chain head, -1 if empty
        self.begins = np.full(self.l1_size, -1, dtype=INDEX_DTYPE)
        self.nexts = np.full(max(pool_capacity, 1), -1, dtype=INDEX_DTYPE)
        self.keys = np.empty(max(pool_capacity, 1), dtype=INDEX_DTYPE)
        self.vals = np.empty(max(pool_capacity, 1), dtype=VALUE_DTYPE)
        self.used = 0
        self.touched_slots: list[int] = []
        self.probes = 0

    def _grow(self) -> None:
        self.nexts = np.concatenate([self.nexts, np.full(len(self.nexts), -1, INDEX_DTYPE)])
        self.keys = np.concatenate([self.keys, np.empty(len(self.keys), INDEX_DTYPE)])
        self.vals = np.concatenate([self.vals, np.empty(len(self.vals), VALUE_DTYPE)])

    def reset(self) -> None:
        for h in self.touched_slots:
            self.begins[h] = -1
        self.touched_slots.clear()
        self.used = 0

    def upsert(self, key: int, value: float, semiring: Semiring) -> None:
        h = (key * HASH_SCALE) & self.mask
        node = self.begins[h]
        self.probes += 1
        while node != -1:
            if self.keys[node] == key:
                self.vals[node] = semiring.add(self.vals[node], value)
                return
            node = self.nexts[node]
            self.probes += 1
        if self.used >= len(self.nexts):
            self._grow()
        idx = self.used
        self.used = idx + 1
        self.keys[idx] = key
        self.vals[idx] = value
        self.nexts[idx] = self.begins[h]
        if self.begins[h] == -1:
            self.touched_slots.append(h)
        self.begins[h] = idx

    def harvest(self) -> "tuple[np.ndarray, np.ndarray]":
        n = self.used
        return self.keys[:n].copy(), self.vals[:n].copy()


def kokkos_proxy_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
) -> CSR:
    """KokkosKernels-style two-phase SpGEMM proxy (unsorted output only).

    The numeric phase shown here subsumes the symbolic counting pass (the
    map records insertion order, so sizes fall out of the same walk); the
    perfmodel charges both phases.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    sr = get_semiring(semiring)
    flop = flop_per_row(a, b)
    if partition is None:
        partition = rows_to_threads(a, b, nthreads, row_cost=flop)
    elif partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data

    nrows = a.nrows
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    pieces: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
    total_flop = 0

    # kkmem sizes its first level from the mean row, not the max — the
    # behavioural difference from the paper's Hash kernel.
    mean_flop = int(flop.mean()) if nrows else 1

    for tid in range(partition.nthreads):
        hashmap = _ChainedHashMap(
            l1_size=lowest_p2(max(mean_flop, 1)),
            pool_capacity=max(int(flop.max(initial=1)), 1),
        )
        thread_flop = 0
        for s, e in partition.rows_of(tid):
            row_cols: list[np.ndarray] = []
            row_vals: list[np.ndarray] = []
            for i in range(s, e):
                hashmap.reset()
                for j in range(a_indptr[i], a_indptr[i + 1]):
                    k = a_indices[j]
                    lo, hi = b_indptr[k], b_indptr[k + 1]
                    cols = b_indices[lo:hi].tolist()
                    prods = np.atleast_1d(sr.mul(a_data[j], b_data[lo:hi])).tolist()
                    thread_flop += len(cols)
                    for col, val in zip(cols, prods):
                        hashmap.upsert(col, val, sr)
                cols_out, vals_out = hashmap.harvest()
                row_nnz[i] = len(cols_out)
                row_cols.append(cols_out)
                row_vals.append(vals_out)
            pieces[s] = (
                np.concatenate(row_cols) if row_cols else np.empty(0, INDEX_DTYPE),
                np.concatenate(row_vals) if row_vals else np.empty(0, VALUE_DTYPE),
            )
        total_flop += thread_flop
        if stats is not None:
            stats.hash_probes += hashmap.probes
            stats.per_thread.append((hashmap.probes, thread_flop))

    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    nnz_total = int(indptr[-1])
    out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
    out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
    for s, (cols, vals) in pieces.items():
        out_indices[indptr[s] : indptr[s] + len(cols)] = cols
        out_data[indptr[s] : indptr[s] + len(vals)] = vals

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += nnz_total
        stats.rows += nrows

    # sorted_rows=None: hashmap extraction order is unsorted in general, but
    # the constructor's detection keeps the flag truthful for the tiny rows
    # that come out sorted anyway.
    return CSR((nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=None)
