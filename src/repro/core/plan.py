"""Inspector–executor plan layer: pay structure discovery once, replay it.

The paper's fastest one-phase baseline is MKL's *inspector–executor* mode,
which wins on repeated products precisely because the symbolic work —
output pattern, table sizes, load balance — is paid once and amortized
across numeric executions.  Our two-phase kernels already compute exactly
that structure, then throw it away on every call.  This module keeps it:

* :func:`inspect` runs the symbolic phase once and returns an
  :class:`SpgemmPlan`;
* :meth:`SpgemmPlan.execute` runs *numeric-only* against any operands with
  the same sparsity pattern (validated by a cheap structure fingerprint,
  always before any numeric work), optionally substituting the semiring;
* :class:`PlanCache` is a bounded LRU keyed by structure fingerprints,
  wired behind ``spgemm(..., plan_cache=...)`` so iterative apps (AMG's
  Galerkin products, Markov clustering, multi-source BFS) get numeric-only
  inner loops without restructuring their call sites.

Two plan modes cover the plan-capable algorithms (the partition is
enforced both at import time and by the ``kernel-dispatch`` contract
linter):

* **batched** — ``engine="fast"`` hash/hashvec/spa, and ``esc`` on either
  engine.  The inspector caches, per flop-bounded row block, the gather
  sources into both operands *already in grouped order*, the segment
  boundaries, and the output-ordering permutation, plus the full output
  ``indptr``/``indices``.  Execution is then gather → ``semiring.mul`` →
  segment-accumulate → write: **zero sorting**, which is where the fresh
  kernel spends most of its time.
* **faithful** — ``engine="faithful"`` hash/hashvec/spa.  The inspector
  caches the thread partition, the per-thread table capacities and the
  output ``indptr`` (via the vectorized :func:`symbolic_row_nnz`, which
  counts exactly what the scalar symbolic pass would), and execution runs
  only the kernel's numeric phase (:func:`repro.core.hash_spgemm.hash_numeric`
  / :func:`repro.core.spa_spgemm.spa_numeric`).

Either way the executed output is **bit-for-bit identical** to a fresh
``spgemm`` call with the same options: the cached permutations are the
unique stable-sort orders the fresh kernels compute, elementwise
``semiring.mul`` commutes with permutation, and segment accumulation
replays the same value sequence.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, PlanError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row
from ..observability import NULL_TRACER, tracer_from_env
from ..semiring import Semiring, get_semiring
from .engine import resolve_engine
from .hash_batch import (
    _max_flop_per_thread,
    _stable_coordinate_order,
    _vhash_geometry,
    _vhash_order,
)
from .hash_spgemm import hash_numeric
from .hash_vector import lanes_for_vector_bits
from .instrument import KernelStats
from .options import SpgemmOptions
from .scheduler import ThreadPartition, rows_to_threads
from .spa_spgemm import spa_numeric
from .symbolic import (
    expand_structure,
    iter_row_blocks,
    mask_membership,
    segment_mask,
    symbolic_row_nnz,
)

__all__ = [
    "PLAN_ALGORITHMS",
    "PLANLESS_ALGORITHMS",
    "MaskedSpgemmPlan",
    "SpgemmPlan",
    "PlanCache",
    "inspect",
    "inspect_masked",
    "structure_fingerprint",
]

#: Algorithms with an inspector–executor split: the two-phase hash family
#: and SPA (both engines) plus the inherently two-phase ESC.
PLAN_ALGORITHMS = frozenset({"hash", "hashvec", "spa", "esc"})

#: Algorithms deliberately without a plan: the one-phase Heap/Merge designs
#: have no symbolic artifact to cache (their accumulators discover structure
#: and values together), and the behavioural proxies' operation streams are
#: their entire purpose — caching would change what they measure.
#: ``mkl_inspector`` is the *model* of an inspector, not a host for ours.
PLANLESS_ALGORITHMS = frozenset({
    "heap",
    "merge",
    "blocked_spa",
    "mkl",
    "mkl_inspector",
    "kokkos",
})

#: Hits between calibrated re-evaluations of a cached ``"auto"`` entry
#: (see :meth:`PlanCache._maybe_revisit`); low enough that serve-style
#: repeated-structure traffic converges within a few hundred requests,
#: high enough that the selector re-run is amortized noise.
AUTO_REVISIT_PERIOD = 32


def _check_plan_coverage() -> None:
    """Fail import when the plan coverage sets drift from the registry.

    Mirrors :func:`repro.core.spgemm._check_registry_coverage`: every
    registered algorithm must be claimed by exactly one of
    ``PLAN_ALGORITHMS`` / ``PLANLESS_ALGORITHMS``.  The contract linter
    enforces the same partition statically.
    """
    from .spgemm import ALGORITHMS

    registered = set(ALGORITHMS)
    problems = []
    overlap = PLAN_ALGORITHMS & PLANLESS_ALGORITHMS
    if overlap:
        problems.append(f"claimed by both plan coverage sets: {sorted(overlap)}")
    missing = registered - PLAN_ALGORITHMS - PLANLESS_ALGORITHMS
    if missing:
        problems.append(f"in ALGORITHMS but no plan coverage set: {sorted(missing)}")
    stale = (PLAN_ALGORITHMS | PLANLESS_ALGORITHMS) - registered
    if stale:
        problems.append(f"in a plan coverage set but unregistered: {sorted(stale)}")
    if problems:
        raise ConfigError(
            "algorithm registry / plan coverage mismatch: " + "; ".join(problems)
        )


_check_plan_coverage()


def structure_fingerprint(m: CSR) -> "tuple[int, int, int, int]":
    """Cheap O(nnz) fingerprint of a matrix's sparsity *structure*.

    ``(nrows, ncols, nnz, crc32(indptr || indices))`` — values are excluded
    (that is the point: a plan replays against new values), and so is the
    ``sorted_rows`` flag, because the ``indices`` bytes already capture the
    ordering that matters to the plan-capable kernels.
    """
    crc = zlib.crc32(np.ascontiguousarray(m.indptr))
    crc = zlib.crc32(np.ascontiguousarray(m.indices), crc)
    return (m.nrows, m.ncols, m.nnz, crc)


@dataclass(frozen=True)
class _BlockRecipe:
    """Cached structure for one flop-bounded row block (batched mode).

    ``a_src``/``b_src`` gather the operands' ``data`` arrays directly in
    grouped (row, col)-stable order; ``new_run``/``starts`` delimit the
    duplicate-coordinate segments; ``reorder`` permutes the reduced
    segments into the kernel's output order (``None`` when the grouped
    order already is the output order, i.e. sorted output).
    """

    a_src: np.ndarray
    b_src: np.ndarray
    new_run: np.ndarray
    starts: np.ndarray
    reorder: np.ndarray | None


class SpgemmPlan:
    """Reusable symbolic structure for one ``(A-pattern, B-pattern)`` pair.

    Build with :func:`inspect`; call :meth:`execute` against any operands
    sharing the inspected sparsity patterns.  Plans are immutable once
    built and safe to reuse across calls.
    """

    __slots__ = (
        "options", "algorithm", "engine", "mode",
        "_fp_a", "_fp_b", "_shape_c",
        "indptr", "indices", "_blocks", "_sorted_rows",
        "partition", "_caps", "_vector_width",
    )

    def __init__(
        self,
        *,
        options: SpgemmOptions,
        algorithm: str,
        engine: str,
        mode: str,
        fp_a: tuple,
        fp_b: tuple,
        shape_c: "tuple[int, int]",
        indptr: np.ndarray,
        indices: np.ndarray | None = None,
        blocks: "list[_BlockRecipe] | None" = None,
        sorted_rows: bool = True,
        partition: ThreadPartition | None = None,
        caps: "list[int] | None" = None,
        vector_width: int = 0,
    ) -> None:
        self.options = options
        self.algorithm = algorithm
        self.engine = engine
        self.mode = mode
        self._fp_a = fp_a
        self._fp_b = fp_b
        self._shape_c = shape_c
        self.indptr = indptr
        self.indices = indices
        self._blocks = blocks
        self._sorted_rows = sorted_rows
        self.partition = partition
        self._caps = caps
        self._vector_width = vector_width

    @property
    def nnz(self) -> int:
        """Output nonzeros the plan will produce."""
        return int(self.indptr[-1])

    def __repr__(self) -> str:
        return (
            f"SpgemmPlan(algorithm={self.algorithm!r}, engine={self.engine!r}, "
            f"mode={self.mode!r}, shape={self._shape_c}, nnz={self.nnz})"
        )

    def _validate_operands(self, a: CSR, b: CSR) -> None:
        """Raise :class:`PlanError` on any structure mismatch — always
        before numeric work touches the cached arrays."""
        fa = structure_fingerprint(a)
        fb = structure_fingerprint(b)
        if fa != self._fp_a:
            raise PlanError(
                f"operand A structure {fa} does not match the inspected "
                f"structure {self._fp_a}; re-run inspect() for this pattern"
            )
        if fb != self._fp_b:
            raise PlanError(
                f"operand B structure {fb} does not match the inspected "
                f"structure {self._fp_b}; re-run inspect() for this pattern"
            )

    def execute(
        self,
        a: CSR,
        b: CSR,
        *,
        semiring: "str | Semiring | None" = None,
        stats: KernelStats | None = None,
        tracer=None,
    ) -> CSR:
        """Numeric-only ``C = A (x) B`` against the cached structure.

        ``semiring`` substitutes the plan's semiring for this execution
        (the cached structure is semiring-independent); ``stats`` overrides
        the plan options' collector; ``tracer`` (or the plan options' one)
        opens an ``execute``-phase span around the replay.  Output is
        bit-for-bit what a fresh ``spgemm`` call with the plan's options
        would return.
        """
        t0 = time.perf_counter()
        self._validate_operands(a, b)
        sr = get_semiring(
            semiring if semiring is not None else self.options.semiring
        )
        if stats is None:
            stats = self.options.stats
        if tracer is None:
            tracer = self.options.tracer
        obs = tracer if tracer is not None else NULL_TRACER
        with obs.span(
            "plan.execute", phase="execute",
            algorithm=self.algorithm, engine=self.engine, mode=self.mode,
        ):
            if self.mode == "batched":
                c = self._execute_batched(a, b, sr, stats)
            else:
                c = self._execute_faithful(a, b, sr, stats, tracer)
        if stats is not None:
            stats.execute_seconds += time.perf_counter() - t0
        return c

    def _execute_faithful(
        self, a: CSR, b: CSR, sr: Semiring, stats: KernelStats | None, tracer=None
    ) -> CSR:
        if self.algorithm == "spa":
            return spa_numeric(
                a, b, semiring=sr, sort_output=self.options.sort_output,
                partition=self.partition, indptr=self.indptr, stats=stats,
                tracer=tracer,
            )
        return hash_numeric(
            a, b, semiring=sr, sort_output=self.options.sort_output,
            partition=self.partition, caps=self._caps, indptr=self.indptr,
            stats=stats, vector_width=self._vector_width, tracer=tracer,
        )

    def _execute_batched(
        self, a: CSR, b: CSR, sr: Semiring, stats: KernelStats | None
    ) -> CSR:
        nnz_total = self.nnz
        out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
        cursor = 0
        total_flop = 0
        for rec in self._blocks:
            vals = np.asarray(
                sr.mul(a.data[rec.a_src], b.data[rec.b_src]), dtype=VALUE_DTYPE
            )
            total_flop += len(vals)
            if self.algorithm == "esc":
                # Replays the ESC compress: same sorted segments, same
                # pairwise reduceat — bitwise the fresh kernel's values.
                seg_vals = sr.reduce_segments(vals, rec.starts)  # repro-lint: disable=accum-order
            else:
                # Strict arrival-order fold, exactly like the fresh batched
                # engine (and therefore the scalar kernels).
                seg_vals = sr.accumulate_segments(vals, rec.new_run, rec.starts)
            if rec.reorder is not None:
                seg_vals = seg_vals[rec.reorder]
            out_data[cursor : cursor + len(seg_vals)] = seg_vals
            cursor += len(seg_vals)
        if stats is not None:
            # Coarse ledger only, like the fast engine; no sort happens at
            # execute time (that is the whole point), so no sort volume.
            stats.flops += total_flop
            stats.output_nnz += nnz_total
            stats.rows += self._shape_c[0]
        return CSR(
            self._shape_c,
            self.indptr,
            self.indices,
            out_data,
            sorted_rows=self._sorted_rows,
        )


class MaskedSpgemmPlan:
    """Reusable symbolic structure for ``(A (x) B) .* pattern(mask)``.

    The fusion tier's plan node: build with :func:`inspect_masked`, replay
    with :meth:`execute` against any operand triple sharing the three
    inspected sparsity patterns.  The cached gather sources are already
    mask-filtered, so execution touches only the *kept* products — the
    replay does strictly less numeric work than a fresh masked call, and no
    membership testing or sorting at all.

    There is a single replay mode (batched): the masked faithful and fast
    engines are bit-identical by construction (the mask gates whole output
    coordinates, so every kept entry folds its full product sequence in
    arrival order), so one cached structure serves both.
    """

    __slots__ = (
        "engine", "complement", "sort_output", "semiring",
        "_fp_a", "_fp_b", "_fp_mask", "_shape_c",
        "indptr", "indices", "_blocks", "_sorted_rows",
    )

    #: reported as the plan's algorithm in spans and reprs
    algorithm = "masked"
    mode = "batched"

    def __init__(
        self,
        *,
        engine: str,
        complement: bool,
        sort_output: bool,
        semiring: "str | Semiring",
        fp_a: tuple,
        fp_b: tuple,
        fp_mask: tuple,
        shape_c: "tuple[int, int]",
        indptr: np.ndarray,
        indices: np.ndarray,
        blocks: "list[_BlockRecipe]",
    ) -> None:
        self.engine = engine
        self.complement = complement
        self.sort_output = sort_output
        self.semiring = semiring
        self._fp_a = fp_a
        self._fp_b = fp_b
        self._fp_mask = fp_mask
        self._shape_c = shape_c
        self.indptr = indptr
        self.indices = indices
        self._blocks = blocks
        self._sorted_rows = sort_output

    @property
    def nnz(self) -> int:
        """Output nonzeros the plan will produce."""
        return int(self.indptr[-1])

    def __repr__(self) -> str:
        return (
            f"MaskedSpgemmPlan(complement={self.complement}, "
            f"sort_output={self.sort_output}, shape={self._shape_c}, "
            f"nnz={self.nnz})"
        )

    def _validate_masked(self, a: CSR, b: CSR, mask: CSR | None) -> None:
        """Raise :class:`PlanError` on any structure mismatch — always
        before numeric work touches the cached arrays."""
        fa = structure_fingerprint(a)
        fb = structure_fingerprint(b)
        if fa != self._fp_a:
            raise PlanError(
                f"operand A structure {fa} does not match the inspected "
                f"structure {self._fp_a}; re-run inspect_masked()"
            )
        if fb != self._fp_b:
            raise PlanError(
                f"operand B structure {fb} does not match the inspected "
                f"structure {self._fp_b}; re-run inspect_masked()"
            )
        if mask is not None:
            fm = structure_fingerprint(mask)
            if fm != self._fp_mask:
                raise PlanError(
                    f"mask structure {fm} does not match the inspected "
                    f"structure {self._fp_mask}; re-run inspect_masked()"
                )

    def execute(
        self,
        a: CSR,
        b: CSR,
        mask: CSR | None = None,
        *,
        semiring: "str | Semiring | None" = None,
        stats: KernelStats | None = None,
        tracer=None,
    ) -> CSR:
        """Numeric-only masked product against the cached structure.

        ``mask`` may be omitted — its membership outcome is baked into the
        cached gathers; when given, its structure fingerprint is validated
        like the operands'.  ``semiring`` substitutes the plan's per call.
        Output is bit-for-bit what a fresh :func:`repro.core.masked.masked_spgemm`
        call (either engine) would return.
        """
        t0 = time.perf_counter()
        self._validate_masked(a, b, mask)
        sr = get_semiring(semiring if semiring is not None else self.semiring)
        obs = tracer if tracer is not None else NULL_TRACER
        with obs.span(
            "plan.execute", phase="execute",
            algorithm=self.algorithm, engine=self.engine, mode=self.mode,
        ):
            c = self._replay(a, b, sr, stats)
        if stats is not None:
            stats.execute_seconds += time.perf_counter() - t0
        return c

    def _replay(
        self, a: CSR, b: CSR, sr: Semiring, stats: KernelStats | None
    ) -> CSR:
        nnz_total = self.nnz
        out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
        cursor = 0
        kept_total = 0
        for rec in self._blocks:
            vals = np.asarray(
                sr.mul(a.data[rec.a_src], b.data[rec.b_src]), dtype=VALUE_DTYPE
            )
            kept_total += len(vals)
            # Strict arrival-order fold over the mask-filtered stream —
            # exactly the fresh masked kernels' sequence.
            seg_vals = sr.accumulate_segments(vals, rec.new_run, rec.starts)
            if rec.reorder is not None:
                seg_vals = seg_vals[rec.reorder]
            out_data[cursor : cursor + len(seg_vals)] = seg_vals
            cursor += len(seg_vals)
        if stats is not None:
            # The replay multiplies only the kept products: flops here is
            # the work actually done, masked_kept mirrors it so the ledger
            # stays comparable with fresh masked calls.
            stats.flops += kept_total
            stats.masked_kept += kept_total
            stats.output_nnz += nnz_total
            stats.rows += self._shape_c[0]
        return CSR(
            self._shape_c,
            self.indptr,
            self.indices,
            out_data,
            sorted_rows=self._sorted_rows,
        )


def inspect(
    a: CSR,
    b: CSR,
    opts: SpgemmOptions | None = None,
    **kwargs,
) -> SpgemmPlan:
    """Run the symbolic phase of ``C = A (x) B`` once; return the plan.

    Accepts the same options surface as :func:`repro.spgemm` (an
    :class:`SpgemmOptions` and/or loose keywords).  ``algorithm="auto"``
    resolves through the Table-4 recipe first; the resolved algorithm must
    be plan-capable (:data:`PLAN_ALGORITHMS`), otherwise a
    :class:`~repro.errors.ConfigError` explains the choices.

    If the options carry a ``stats`` collector, the inspection wall time is
    added to its ``inspect_seconds`` counter.
    """
    options = SpgemmOptions.from_kwargs(opts, **kwargs)
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    t0 = time.perf_counter()
    algorithm = options.algorithm
    if algorithm == "auto":
        from ..autotune import resolve_auto  # deferred: autotune imports core

        algorithm, _ = resolve_auto(
            a, b, sort_output=options.sort_output,
            profile=options.calibration,
        )
    if algorithm not in PLAN_ALGORITHMS:
        raise ConfigError(
            f"algorithm {algorithm!r} has no inspector–executor split; "
            f"plan-capable algorithms: {sorted(PLAN_ALGORITHMS)}"
        )
    engine = resolve_engine(options.engine, algorithm)
    tracer = options.tracer if options.tracer is not None else tracer_from_env()
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span(
        "plan.inspect", phase="inspect",
        algorithm=algorithm, engine=engine, nrows=a.nrows,
    ):
        if engine == "fast" or algorithm == "esc":
            plan = _inspect_batched(a, b, algorithm, engine, options)
        else:
            plan = _inspect_faithful(a, b, algorithm, engine, options)
    if options.stats is not None:
        options.stats.inspect_seconds += time.perf_counter() - t0
    return plan


def _inspect_batched(
    a: CSR, b: CSR, algorithm: str, engine: str, options: SpgemmOptions
) -> SpgemmPlan:
    """Structure pass of the batched engine, caching every permutation.

    Mirrors :func:`repro.core.hash_batch.batch_hash_spgemm` (and the ESC
    kernel) step for step, minus the value arithmetic: same blocks, same
    stable coordinate sort, same output-order emulation — so the cached
    ``indices`` and per-block recipes reproduce the fresh output exactly.
    """
    nrows, ncols = a.nrows, b.ncols
    esc = algorithm == "esc"
    sort_output = True if esc else options.sort_output
    chunk_mask = cap_row = None
    lanes = lanes_for_vector_bits(options.vector_bits)
    if algorithm == "hashvec" and not sort_output:
        chunk_mask, cap_row = _vhash_geometry(
            a, b, options.nthreads, options.partition, lanes
        )

    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    blocks: "list[_BlockRecipe]" = []
    block_cols: "list[np.ndarray]" = []
    for r0, r1 in iter_row_blocks(a, b):
        rows, cols, a_src, b_src = expand_structure(a, b, r0, r1)
        n = len(rows)
        if n == 0:
            continue
        order = _stable_coordinate_order(rows, cols, r0, r1 - r0, ncols)
        r_s = rows[order]
        c_s = cols[order]
        new_run = segment_mask(r_s, c_s)
        starts = np.flatnonzero(new_run)
        seg_rows = r_s[starts]
        seg_cols = c_s[starts]
        first_idx = order[starts]
        row_nnz[r0:r1] += np.bincount(seg_rows - r0, minlength=r1 - r0)

        reorder = None
        if not sort_output:
            if algorithm in ("hash", "spa"):
                reorder = np.argsort(first_idx)
            else:  # hashvec: chunk-table extraction order
                reorder = _vhash_order(
                    seg_rows, seg_cols, first_idx,
                    chunk_mask, cap_row, ncols, lanes,
                )
            seg_cols = seg_cols[reorder]
        blocks.append(
            _BlockRecipe(a_src[order], b_src[order], new_run, starts, reorder)
        )
        block_cols.append(np.ascontiguousarray(seg_cols, dtype=INDEX_DTYPE))

    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    indices = (
        np.concatenate(block_cols)
        if block_cols
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    return SpgemmPlan(
        options=options,
        algorithm=algorithm,
        engine=engine,
        mode="batched",
        fp_a=structure_fingerprint(a),
        fp_b=structure_fingerprint(b),
        shape_c=(nrows, ncols),
        indptr=indptr,
        indices=indices,
        blocks=blocks,
        sorted_rows=sort_output,
    )


def _inspect_faithful(
    a: CSR, b: CSR, algorithm: str, engine: str, options: SpgemmOptions
) -> SpgemmPlan:
    """Symbolic phase for the faithful scalar kernels.

    Caches the flop-balanced partition, the per-thread table capacities
    (the hash kernels' Fig. 7 sizing) and the exact output ``indptr`` —
    computed with the vectorized :func:`symbolic_row_nnz`, which counts
    precisely what the scalar symbolic pass would, just faster.
    """
    flop = flop_per_row(a, b)
    partition = options.partition
    if partition is None:
        partition = rows_to_threads(a, b, options.nthreads, row_cost=flop)
    elif partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )
    caps = _max_flop_per_thread(partition, flop)
    vector_width = lanes_for_vector_bits(options.vector_bits) if algorithm == "hashvec" else 0
    row_nnz = symbolic_row_nnz(a, b)
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    return SpgemmPlan(
        options=options,
        algorithm=algorithm,
        engine=engine,
        mode="faithful",
        fp_a=structure_fingerprint(a),
        fp_b=structure_fingerprint(b),
        shape_c=(a.nrows, b.ncols),
        indptr=indptr,
        sorted_rows=options.sort_output,
        partition=partition,
        caps=caps,
        vector_width=vector_width,
    )


def inspect_masked(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    semiring: "str | Semiring" = "plus_times",
    complement: bool = False,
    sort_output: bool = True,
    engine: str = "fast",
    stats: KernelStats | None = None,
    tracer=None,
) -> MaskedSpgemmPlan:
    """Run the symbolic phase of a masked product once; return the plan.

    Mirrors the batched masked kernel's structure pass step for step —
    expansion, mask-membership filter, stable coordinate sort, segment
    boundaries, output-order emulation — minus the value arithmetic, so
    the cached ``indices`` and per-block recipes reproduce the fresh
    masked output exactly (either engine; they are bit-identical).

    ``engine`` is advisory metadata: replay is always batched.  If
    ``stats`` is supplied, the inspection wall time is added to its
    ``inspect_seconds`` counter.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if mask.shape != (a.nrows, b.ncols):
        raise ShapeError(
            f"mask shape {mask.shape} != output shape {(a.nrows, b.ncols)}"
        )
    t0 = time.perf_counter()
    if tracer is None:
        tracer = tracer_from_env()
    obs = tracer if tracer is not None else NULL_TRACER
    nrows, ncols = a.nrows, b.ncols
    with obs.span(
        "plan.inspect", phase="inspect",
        algorithm="masked", engine=engine, nrows=nrows,
    ):
        row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
        blocks: "list[_BlockRecipe]" = []
        block_cols: "list[np.ndarray]" = []
        for r0, r1 in iter_row_blocks(a, b):
            rows, cols, a_src, b_src = expand_structure(a, b, r0, r1)
            if len(rows) == 0:
                continue
            allowed = mask_membership(rows, cols, mask, r0, r1)
            if complement:
                np.logical_not(allowed, out=allowed)
            rows = rows[allowed]
            cols = cols[allowed]
            a_src = a_src[allowed]
            b_src = b_src[allowed]
            if len(rows) == 0:
                continue
            order = _stable_coordinate_order(rows, cols, r0, r1 - r0, ncols)
            r_s = rows[order]
            c_s = cols[order]
            new_run = segment_mask(r_s, c_s)
            starts = np.flatnonzero(new_run)
            seg_rows = r_s[starts]
            seg_cols = c_s[starts]
            first_idx = order[starts]
            row_nnz[r0:r1] += np.bincount(seg_rows - r0, minlength=r1 - r0)

            reorder = None
            if not sort_output:
                # First-occurrence order over the kept stream (the masked
                # kernels' unsorted convention on both engines).
                reorder = np.argsort(first_idx)
                seg_cols = seg_cols[reorder]
            blocks.append(
                _BlockRecipe(a_src[order], b_src[order], new_run, starts, reorder)
            )
            block_cols.append(np.ascontiguousarray(seg_cols, dtype=INDEX_DTYPE))

        indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(row_nnz, out=indptr[1:])
        indices = (
            np.concatenate(block_cols)
            if block_cols
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        plan = MaskedSpgemmPlan(
            engine=engine,
            complement=complement,
            sort_output=sort_output,
            semiring=semiring,
            fp_a=structure_fingerprint(a),
            fp_b=structure_fingerprint(b),
            fp_mask=structure_fingerprint(mask),
            shape_c=(nrows, ncols),
            indptr=indptr,
            indices=indices,
            blocks=blocks,
        )
    if stats is not None:
        stats.inspect_seconds += time.perf_counter() - t0
    return plan


def _partition_key(partition: ThreadPartition | None):
    """Hashable content fingerprint of a partition (ndarrays aren't)."""
    if partition is None:
        return None
    crc = 0
    if partition.offsets is not None:
        crc = zlib.crc32(np.ascontiguousarray(partition.offsets), crc)
    if partition.chunks is not None:
        crc = zlib.crc32(repr(partition.chunks).encode(), crc)
    return (partition.policy, partition.nthreads, crc)


class PlanCache:
    """Bounded LRU of :class:`SpgemmPlan` keyed by structure fingerprints.

    ``spgemm(a, b, plan_cache=cache)`` routes through :meth:`execute`: a
    hit replays the cached plan numeric-only; a miss pays one inspection
    (plan-capable algorithms) and caches the plan.  Plan-less algorithms —
    including an ``"auto"`` resolution landing on one — are remembered as
    resolved-name markers so the Table-4 recipe is not re-run per
    iteration, and fall back to an ordinary full multiplication.

    Hit/miss totals live on :attr:`hits`/:attr:`misses` and are also pushed
    into each call's :class:`~repro.core.instrument.KernelStats` (as
    ``plan_hits``/``plan_misses``) when one is supplied.

    The cache is thread-safe: lookup, counters and store run under an
    internal lock, while inspection (the expensive part of a miss) runs
    outside it.  Two threads missing on the same key may therefore both
    inspect — wasted work, never wrong results, since the later store just
    overwrites the identical plan.  This is the sharing model the serving
    layer relies on (one process-wide cache, many request threads).
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ConfigError(f"PlanCache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, SpgemmPlan | str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        #: hits per ``"auto"``-resolved key since its last (re)resolution —
        #: the online-refinement revisit counter (see :meth:`execute`)
        self._auto_hits: "dict[tuple, int]" = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def _key(self, a: CSR, b: CSR, options: SpgemmOptions) -> tuple:
        # The semiring is deliberately absent: a plan is semiring-agnostic
        # and execute() substitutes the caller's per call.
        return (
            structure_fingerprint(a),
            structure_fingerprint(b),
            options.algorithm,
            options.sort_output,
            options.nthreads,
            options.engine,
            options.vector_bits,
            _partition_key(options.partition),
        )

    def _store(self, key: tuple, entry) -> None:
        with self._lock:
            self._entries[key] = entry
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            if len(self._auto_hits) > 4 * self.maxsize:
                # drop revisit counters whose entries were evicted
                self._auto_hits = {
                    k: v for k, v in self._auto_hits.items()
                    if k in self._entries
                }

    def _lookup(self, key: tuple, stats: "KernelStats | None"):
        """LRU-touch + counter bump under the lock; None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if stats is not None:
            if entry is not None:
                stats.plan_hits += 1
            else:
                stats.plan_misses += 1
        return entry

    def execute(
        self,
        a: CSR,
        b: CSR,
        options: SpgemmOptions | None = None,
        **kwargs,
    ) -> CSR:
        """``C = A (x) B`` through the cache (inspect on miss, replay on hit)."""
        options = SpgemmOptions.from_kwargs(options, **kwargs)
        if options.plan is not None or options.plan_cache is not None:
            # Strip routing fields so the fallback dispatch cannot recurse.
            options = options.replace(plan=None, plan_cache=None)
        key = self._key(a, b, options)
        stats = options.stats
        entry = self._lookup(key, stats)
        if entry is not None and options.algorithm == "auto":
            entry = self._maybe_revisit(key, entry, a, b, options)
        if entry is not None:
            if isinstance(entry, str):  # plan-less algorithm marker
                from .spgemm import _spgemm_resolved

                return _spgemm_resolved(a, b, options.replace(algorithm=entry))
            return entry.execute(
                a, b, semiring=options.semiring, stats=stats,
                tracer=options.tracer,
            )
        algorithm = options.algorithm
        observe = None
        if algorithm == "auto":
            from ..autotune import resolve_auto  # deferred: autotune imports core

            algorithm, observe = resolve_auto(
                a, b, sort_output=options.sort_output,
                profile=options.calibration,
            )
            with self._lock:
                self._auto_hits[key] = 0
        t0 = time.perf_counter() if observe is not None else 0.0
        if algorithm in PLANLESS_ALGORITHMS:
            from .spgemm import _spgemm_resolved

            self._store(key, algorithm)
            c = _spgemm_resolved(a, b, options.replace(algorithm=algorithm))
        else:
            plan = inspect(a, b, options.replace(algorithm=algorithm))
            self._store(key, plan)
            c = plan.execute(
                a, b, semiring=options.semiring, stats=stats,
                tracer=options.tracer,
            )
        if observe is not None:
            # full inspect+execute seconds: the quantity the calibrated
            # curves predict, fed back into the online refiner
            observe(time.perf_counter() - t0)
        return c

    def _maybe_revisit(
        self, key: tuple, entry, a: CSR, b: CSR, options: SpgemmOptions
    ):
        """Re-run the calibrated selector on long-lived ``"auto"`` entries.

        A cached ``"auto"`` resolution freezes the selector's verdict at
        first sight, which would lock out everything the online refiner
        learns afterwards.  Every :data:`AUTO_REVISIT_PERIOD` hits on such
        a key (and only while a calibration profile is active), the
        selector runs again with the current corrections; if the winner
        changed, the stale entry is dropped and the call proceeds as a
        miss — re-inspecting under the new algorithm.  Static (profile-
        absent) resolutions are deterministic, so they are never revisited.
        """
        from ..autotune import active_profile  # deferred: autotune imports core

        profile = options.calibration
        if profile is None:
            profile = active_profile()
        if profile is None:
            return entry
        with self._lock:
            count = self._auto_hits.get(key, 0) + 1
            self._auto_hits[key] = count
            if count % AUTO_REVISIT_PERIOD:
                return entry
        from ..autotune import resolve_auto

        algorithm, _ = resolve_auto(
            a, b, sort_output=options.sort_output, profile=options.calibration
        )
        current = entry if isinstance(entry, str) else entry.algorithm
        if algorithm == current:
            return entry
        with self._lock:
            self._entries.pop(key, None)
        return None  # counted as a hit already; rebuilt as a silent miss

    def execute_masked(
        self,
        a: CSR,
        b: CSR,
        mask: CSR,
        *,
        semiring: "str | Semiring" = "plus_times",
        complement: bool = False,
        sort_output: bool = True,
        engine: str = "fast",
        nthreads: int = 1,
        stats: KernelStats | None = None,
        tracer=None,
    ) -> CSR:
        """Masked product through the cache (inspect on miss, replay on hit).

        The key is the three structure fingerprints plus the options that
        shape the cached structure (``complement``, ``sort_output``).  The
        engine and thread count are deliberately absent — the masked
        engines are bit-identical and the batched replay is engine- and
        partition-independent, so one plan serves every configuration that
        can reuse it.  ``nthreads`` is accepted for signature symmetry with
        :func:`repro.core.masked.masked_spgemm`.
        """
        del nthreads  # replay is partition-independent; see docstring
        key = (
            "masked",
            structure_fingerprint(a),
            structure_fingerprint(b),
            structure_fingerprint(mask),
            complement,
            sort_output,
        )
        entry = self._lookup(key, stats)
        if entry is not None:
            return entry.execute(
                a, b, mask, semiring=semiring, stats=stats, tracer=tracer
            )
        plan = inspect_masked(
            a, b, mask, semiring=semiring, complement=complement,
            sort_output=sort_output, engine=engine, stats=stats, tracer=tracer,
        )
        self._store(key, plan)
        return plan.execute(
            a, b, mask, semiring=semiring, stats=stats, tracer=tracer
        )
