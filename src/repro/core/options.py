"""Unified option surface for :func:`repro.spgemm` and the plan layer.

The ``spgemm`` keyword list grew one parameter per PR (``algorithm``,
``semiring``, ``sort_output``, ``nthreads``, ``partition``, ``stats``,
``vector_bits``, ``engine``, now ``plan``/``plan_cache``), and the
inspector–executor entry points (:func:`repro.core.plan.inspect`,
:meth:`repro.core.plan.SpgemmPlan.execute`) need the *same* knobs.  Rather
than re-growing parallel kwarg lists, every entry point canonicalizes its
keywords into one frozen :class:`SpgemmOptions` value whose constructor is
the single place configuration is validated.

:class:`ChainOptions` extends the same surface for the chain/fusion tier
(:func:`repro.core.chain.multiply_chain`,
:func:`repro.core.masked.masked_spgemm`): the SpGEMM knobs plus the
mask-complement flag and the sandwich-streaming ``fuse`` tier.

Validation raises :class:`repro.errors.ConfigError` through
:func:`repro.errors.invalid_choice` so the message shape is uniform for
every enumerated parameter: ``unknown <kind> <value>; valid choices: [...]``.

Wire form (the ``repro-job/1`` request schema)
----------------------------------------------
:meth:`SpgemmOptions.to_wire` / :meth:`SpgemmOptions.from_wire` round-trip
the *portable* configuration — the enumerated knobs that mean the same
thing in another process — as a plain JSON-able dict tagged with the
options type.  Process-local fields (``stats`` collectors, ``plan`` /
``plan_cache`` objects, ``tracer``, ``calibration``) are deliberately
absent from the wire: the receiving process supplies its own.  An explicit ``partition`` refuses
to serialize — it encodes row offsets of one concrete operand, and a server
computes its own flop-balanced one.  ``python -m repro`` and the
:mod:`repro.serve` request parser both build their options through
:func:`options_from_wire`, so the CLI and the server share one validated
entry path instead of two ad-hoc keyword lists.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError, invalid_choice
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .engine import ENGINES
from .instrument import KernelStats
from .scheduler import ThreadPartition

__all__ = [
    "SpgemmOptions",
    "ChainOptions",
    "options_from_wire",
    "VALID_VECTOR_BITS",
    "WIRE_OPTION_TYPES",
]

#: Simulated register widths accepted by the HashVector kernels
#: (512 = KNL AVX-512, 256 = Haswell AVX2, 128 = SSE-width lower bound).
VALID_VECTOR_BITS = (128, 256, 512)

#: Engine values accepted on the chain surface: the concrete engines plus
#: ``"auto"`` (per-stage choice from the :class:`~repro.core.chain.ChainPlan`).
_CHAIN_ENGINES = ("auto",)

#: Sandwich-streaming tiers accepted by ``ChainOptions.fuse``.
VALID_FUSE = ("auto", "on", "off")


@dataclass(frozen=True)
class SpgemmOptions:
    """Frozen, validated configuration for one SpGEMM computation.

    Attributes
    ----------
    algorithm:
        Registry name from :func:`repro.core.spgemm.available_algorithms`,
        or ``"auto"`` to apply the Table-4 recipe at call time.
    semiring:
        A :class:`repro.semiring.Semiring` or its registry name; resolved to
        the instance during validation.
    sort_output:
        Whether output rows must have ascending column indices (kernels with
        a fixed output convention override this, see :func:`repro.spgemm`).
    nthreads:
        Simulated thread count (``>= 1``).
    partition:
        Optional explicit :class:`repro.core.scheduler.ThreadPartition`;
        ``None`` lets the kernel compute a flop-balanced one.
    stats:
        Optional :class:`repro.core.instrument.KernelStats` collector.
    vector_bits:
        Simulated register width for ``hashvec`` (one of
        :data:`VALID_VECTOR_BITS`).
    engine:
        ``"faithful"`` or ``"fast"`` (see :mod:`repro.core.engine`).
    plan:
        Optional pre-built :class:`repro.core.plan.SpgemmPlan` to execute
        instead of running inspection.
    plan_cache:
        Optional :class:`repro.core.plan.PlanCache`; ``spgemm`` will look up
        / populate a plan keyed by the operands' structure fingerprints.
    tracer:
        Optional :class:`repro.observability.Tracer`.  ``None`` (the
        default) is the zero-overhead path — kernels skip all tracing
        work — unless the ``REPRO_TRACE`` environment variable activates
        the process-wide tracer at dispatch time.
    calibration:
        Optional :class:`repro.autotune.CalibrationProfile`; when set,
        ``algorithm="auto"`` resolves through the calibrated selector
        against *this* profile instead of the process-wide active one
        (``REPRO_CALIBRATION`` / ``set_active_profile``).  Process-local:
        never serialized to the wire — the executing side activates its
        own machine's profile.
    """

    algorithm: str = "auto"
    semiring: Semiring = PLUS_TIMES
    sort_output: bool = True
    nthreads: int = 1
    partition: ThreadPartition | None = None
    stats: KernelStats | None = field(default=None, compare=False)
    vector_bits: int = 512
    engine: str = "faithful"
    plan: Any = field(default=None, compare=False)
    plan_cache: Any = field(default=None, compare=False)
    tracer: Any = field(default=None, compare=False)
    calibration: Any = field(default=None, compare=False)

    #: wire-schema type tag (`to_wire`'s ``"type"`` field)
    _WIRE_TYPE = "spgemm"
    #: fields that travel on the wire, in schema order
    _WIRE_FIELDS = (
        "algorithm", "semiring", "sort_output", "nthreads",
        "vector_bits", "engine",
    )
    #: engine values valid on top of :data:`repro.core.engine.ENGINES`
    #: (no annotation: a plain class attribute, not a dataclass field)
    _EXTRA_ENGINES = ()

    def __post_init__(self) -> None:
        # Canonicalize the semiring first so equality/caching always compares
        # resolved instances, then validate every enumerated knob in the one
        # place the whole API shares.
        object.__setattr__(self, "semiring", get_semiring(self.semiring))
        from .spgemm import ALGORITHMS  # deferred: spgemm.py imports us

        if self.algorithm != "auto" and self.algorithm not in ALGORITHMS:
            raise invalid_choice(
                "algorithm", self.algorithm, ["auto", *ALGORITHMS]
            )
        if self.engine not in ENGINES and self.engine not in self._EXTRA_ENGINES:
            raise invalid_choice(
                "engine", self.engine, [*ENGINES, *self._EXTRA_ENGINES]
            )
        if self.vector_bits not in VALID_VECTOR_BITS:
            raise invalid_choice(
                "vector_bits", self.vector_bits, list(VALID_VECTOR_BITS)
            )
        if not isinstance(self.nthreads, int) or self.nthreads < 1:
            raise ConfigError(
                f"nthreads must be a positive integer, got {self.nthreads!r}"
            )
        if self.partition is not None and not isinstance(
            self.partition, ThreadPartition
        ):
            raise ConfigError(
                f"partition must be a ThreadPartition or None, "
                f"got {type(self.partition).__name__}"
            )
        self._check_plan()
        if self.plan_cache is not None and not hasattr(self.plan_cache, "execute"):
            raise ConfigError(
                f"plan_cache must provide .execute(a, b, options), "
                f"got {type(self.plan_cache).__name__}"
            )
        if self.tracer is not None and not hasattr(self.tracer, "span"):
            raise ConfigError(
                f"tracer must provide .span(name, phase=...), "
                f"got {type(self.tracer).__name__}"
            )
        if self.calibration is not None and not hasattr(
            self.calibration, "predict_seconds"
        ):
            raise ConfigError(
                f"calibration must be a CalibrationProfile (or None), "
                f"got {type(self.calibration).__name__}"
            )

    def _check_plan(self) -> None:
        """Validate the ``plan`` field (subclasses accept other plan types)."""
        if self.plan is not None and not hasattr(self.plan, "execute"):
            raise ConfigError(
                f"plan must provide .execute(a, b), "
                f"got {type(self.plan).__name__}"
            )

    @classmethod
    def from_kwargs(
        cls, opts: "SpgemmOptions | None" = None, **kwargs: Any
    ) -> "SpgemmOptions":
        """Canonicalize an options object and/or loose keywords.

        ``spgemm(a, b, opts)`` passes a ready-made :class:`SpgemmOptions`;
        ``spgemm(a, b, algorithm=...)`` passes loose keywords; mixing both
        applies the keywords on top of ``opts``.  Unknown keywords raise
        :class:`repro.errors.ConfigError` listing the valid names.

        A subclass accepts a plain base-class instance too (it is promoted
        field-by-field), so a :class:`SpgemmOptions` built for ``spgemm``
        flows unchanged into ``multiply_chain``/``masked_spgemm``.
        """
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - valid
        if unknown:
            raise ConfigError(
                f"unknown {cls._WIRE_TYPE} option(s) {sorted(unknown)}; "
                f"valid options: {sorted(valid)}"
            )
        if opts is None:
            return cls(**kwargs)
        if not isinstance(opts, cls):
            if isinstance(opts, SpgemmOptions):
                promoted = {
                    f.name: getattr(opts, f.name)
                    for f in dataclasses.fields(type(opts))
                    if f.name in valid
                }
                promoted.update(kwargs)
                return cls(**promoted)
            raise ConfigError(
                f"opts must be {cls.__name__} or None, "
                f"got {type(opts).__name__}"
            )
        return opts.replace(**kwargs) if kwargs else opts

    def replace(self, **changes: Any) -> "SpgemmOptions":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    # -- wire form (repro-job/1) -------------------------------------------

    def to_wire(self) -> dict:
        """Portable JSON-able form of this configuration.

        Only the enumerated knobs travel (see the module docstring);
        process-local fields — ``stats``, ``plan``, ``plan_cache``,
        ``tracer``, ``calibration`` — are dropped, and an explicit
        ``partition`` raises
        :class:`~repro.errors.ConfigError` because its row offsets are
        meaningless against another process's operands.
        """
        if self.partition is not None:
            raise ConfigError(
                "an explicit partition is process-local and cannot be "
                "serialized; the executing side computes its own"
            )
        payload: "dict[str, Any]" = {"type": self._WIRE_TYPE}
        for name in self._WIRE_FIELDS:
            value = getattr(self, name)
            payload[name] = value.name if isinstance(value, Semiring) else value
        return payload

    @classmethod
    def from_wire(cls, payload: dict) -> "SpgemmOptions":
        """Rebuild options from :meth:`to_wire` output (full validation).

        The ``type`` tag must match this class; unknown keys raise
        :class:`~repro.errors.ConfigError` listing the valid ones, and
        every field value goes through the constructor's validation —
        a wire request cannot reach a kernel less checked than a local
        keyword call.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"wire options must be a dict, got {type(payload).__name__}"
            )
        got_type = payload.get("type", cls._WIRE_TYPE)
        if got_type != cls._WIRE_TYPE:
            raise invalid_choice(
                "options type", got_type, [cls._WIRE_TYPE]
            )
        body = {k: v for k, v in payload.items() if k != "type"}
        unknown = set(body) - set(cls._WIRE_FIELDS)
        if unknown:
            raise ConfigError(
                f"unknown {cls._WIRE_TYPE} wire option(s) {sorted(unknown)}; "
                f"valid options: {sorted(cls._WIRE_FIELDS)}"
            )
        return cls(**body)


@dataclass(frozen=True)
class ChainOptions(SpgemmOptions):
    """Frozen, validated configuration for the chain/masked surface.

    Extends :class:`SpgemmOptions` with the fusion-tier knobs of
    :func:`repro.core.chain.multiply_chain` and
    :func:`repro.core.masked.masked_spgemm`:

    complement:
        Keep entries *not* in the mask (GraphBLAS ``!M`` semantics); only
        meaningful when the call carries a mask operand.
    fuse:
        Sandwich-streaming tier — ``"auto"``/``"on"`` stream a left-deep
        sorted triple product block-by-block, ``"off"`` materializes every
        intermediate (see ``docs/fusion.md``).

    Differences from the base class, both preserving the historical
    defaults of the functions this canonicalizes:

    * ``algorithm`` defaults to ``"hash"`` (the chain surface's long-time
      default) rather than ``"auto"``; pass ``"auto"`` explicitly to take
      each stage's algorithm from the :class:`~repro.core.chain.ChainPlan`.
    * ``engine`` additionally accepts ``"auto"`` (per-stage engine choice).
    * ``plan`` holds a :class:`~repro.core.chain.ChainPlan` (association
      order + stage choices), not an executable kernel plan.
    """

    algorithm: str = "hash"
    complement: bool = False
    fuse: str = "auto"

    _WIRE_TYPE = "chain"
    _WIRE_FIELDS = SpgemmOptions._WIRE_FIELDS + ("complement", "fuse")
    _EXTRA_ENGINES = _CHAIN_ENGINES

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.complement, bool):
            raise ConfigError(
                f"complement must be a bool, got {self.complement!r}"
            )
        if self.fuse not in VALID_FUSE:
            raise invalid_choice("fuse", self.fuse, list(VALID_FUSE))

    def _check_plan(self) -> None:
        # The chain surface carries a ChainPlan (association order + stage
        # choices); the masked surface carries an executable plan with
        # ``.execute`` (a MaskedSpgemmPlan).  Each entry point re-checks the
        # concrete type it needs; here both shapes are admissible.
        if self.plan is None:
            return
        from .chain import ChainPlan  # deferred: chain.py imports us

        if isinstance(self.plan, ChainPlan):
            return
        super()._check_plan()


#: Wire ``type`` tag -> options class, for :func:`options_from_wire`.
WIRE_OPTION_TYPES: "dict[str, type[SpgemmOptions]]" = {
    SpgemmOptions._WIRE_TYPE: SpgemmOptions,
    ChainOptions._WIRE_TYPE: ChainOptions,
}


def options_from_wire(payload: dict) -> SpgemmOptions:
    """Dispatch a wire options dict to the class named by its ``type`` tag.

    The single request parser shared by ``python -m repro`` and the
    :mod:`repro.serve` protocol: ``{"type": "spgemm", ...}`` builds a
    :class:`SpgemmOptions`, ``{"type": "chain", ...}`` a
    :class:`ChainOptions`; anything else raises
    :class:`~repro.errors.ConfigError` listing the valid tags.
    """
    if not isinstance(payload, dict):
        raise ConfigError(
            f"wire options must be a dict, got {type(payload).__name__}"
        )
    tag = payload.get("type", "spgemm")
    cls = WIRE_OPTION_TYPES.get(tag)
    if cls is None:
        raise invalid_choice("options type", tag, list(WIRE_OPTION_TYPES))
    return cls.from_wire(payload)
