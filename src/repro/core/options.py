"""Unified option surface for :func:`repro.spgemm` and the plan layer.

The ``spgemm`` keyword list grew one parameter per PR (``algorithm``,
``semiring``, ``sort_output``, ``nthreads``, ``partition``, ``stats``,
``vector_bits``, ``engine``, now ``plan``/``plan_cache``), and the
inspector–executor entry points (:func:`repro.core.plan.inspect`,
:meth:`repro.core.plan.SpgemmPlan.execute`) need the *same* knobs.  Rather
than re-growing parallel kwarg lists, every entry point canonicalizes its
keywords into one frozen :class:`SpgemmOptions` value whose constructor is
the single place configuration is validated.

Validation raises :class:`repro.errors.ConfigError` through
:func:`repro.errors.invalid_choice` so the message shape is uniform for
every enumerated parameter: ``unknown <kind> <value>; valid choices: [...]``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError, invalid_choice
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .engine import ENGINES
from .instrument import KernelStats
from .scheduler import ThreadPartition

__all__ = ["SpgemmOptions", "VALID_VECTOR_BITS"]

#: Simulated register widths accepted by the HashVector kernels
#: (512 = KNL AVX-512, 256 = Haswell AVX2, 128 = SSE-width lower bound).
VALID_VECTOR_BITS = (128, 256, 512)


@dataclass(frozen=True)
class SpgemmOptions:
    """Frozen, validated configuration for one SpGEMM computation.

    Attributes
    ----------
    algorithm:
        Registry name from :func:`repro.core.spgemm.available_algorithms`,
        or ``"auto"`` to apply the Table-4 recipe at call time.
    semiring:
        A :class:`repro.semiring.Semiring` or its registry name; resolved to
        the instance during validation.
    sort_output:
        Whether output rows must have ascending column indices (kernels with
        a fixed output convention override this, see :func:`repro.spgemm`).
    nthreads:
        Simulated thread count (``>= 1``).
    partition:
        Optional explicit :class:`repro.core.scheduler.ThreadPartition`;
        ``None`` lets the kernel compute a flop-balanced one.
    stats:
        Optional :class:`repro.core.instrument.KernelStats` collector.
    vector_bits:
        Simulated register width for ``hashvec`` (one of
        :data:`VALID_VECTOR_BITS`).
    engine:
        ``"faithful"`` or ``"fast"`` (see :mod:`repro.core.engine`).
    plan:
        Optional pre-built :class:`repro.core.plan.SpgemmPlan` to execute
        instead of running inspection.
    plan_cache:
        Optional :class:`repro.core.plan.PlanCache`; ``spgemm`` will look up
        / populate a plan keyed by the operands' structure fingerprints.
    tracer:
        Optional :class:`repro.observability.Tracer`.  ``None`` (the
        default) is the zero-overhead path — kernels skip all tracing
        work — unless the ``REPRO_TRACE`` environment variable activates
        the process-wide tracer at dispatch time.
    """

    algorithm: str = "auto"
    semiring: Semiring = PLUS_TIMES
    sort_output: bool = True
    nthreads: int = 1
    partition: ThreadPartition | None = None
    stats: KernelStats | None = field(default=None, compare=False)
    vector_bits: int = 512
    engine: str = "faithful"
    plan: Any = field(default=None, compare=False)
    plan_cache: Any = field(default=None, compare=False)
    tracer: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # Canonicalize the semiring first so equality/caching always compares
        # resolved instances, then validate every enumerated knob in the one
        # place the whole API shares.
        object.__setattr__(self, "semiring", get_semiring(self.semiring))
        from .spgemm import ALGORITHMS  # deferred: spgemm.py imports us

        if self.algorithm != "auto" and self.algorithm not in ALGORITHMS:
            raise invalid_choice(
                "algorithm", self.algorithm, ["auto", *ALGORITHMS]
            )
        if self.engine not in ENGINES:
            raise invalid_choice("engine", self.engine, list(ENGINES))
        if self.vector_bits not in VALID_VECTOR_BITS:
            raise invalid_choice(
                "vector_bits", self.vector_bits, list(VALID_VECTOR_BITS)
            )
        if not isinstance(self.nthreads, int) or self.nthreads < 1:
            raise ConfigError(
                f"nthreads must be a positive integer, got {self.nthreads!r}"
            )
        if self.partition is not None and not isinstance(
            self.partition, ThreadPartition
        ):
            raise ConfigError(
                f"partition must be a ThreadPartition or None, "
                f"got {type(self.partition).__name__}"
            )
        if self.plan is not None and not hasattr(self.plan, "execute"):
            raise ConfigError(
                f"plan must provide .execute(a, b), "
                f"got {type(self.plan).__name__}"
            )
        if self.plan_cache is not None and not hasattr(self.plan_cache, "execute"):
            raise ConfigError(
                f"plan_cache must provide .execute(a, b, options), "
                f"got {type(self.plan_cache).__name__}"
            )
        if self.tracer is not None and not hasattr(self.tracer, "span"):
            raise ConfigError(
                f"tracer must provide .span(name, phase=...), "
                f"got {type(self.tracer).__name__}"
            )

    @classmethod
    def from_kwargs(
        cls, opts: "SpgemmOptions | None" = None, **kwargs: Any
    ) -> "SpgemmOptions":
        """Canonicalize an options object and/or loose keywords.

        ``spgemm(a, b, opts)`` passes a ready-made :class:`SpgemmOptions`;
        ``spgemm(a, b, algorithm=...)`` passes loose keywords; mixing both
        applies the keywords on top of ``opts``.  Unknown keywords raise
        :class:`repro.errors.ConfigError` listing the valid names.
        """
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - valid
        if unknown:
            raise ConfigError(
                f"unknown spgemm option(s) {sorted(unknown)}; "
                f"valid options: {sorted(valid)}"
            )
        if opts is None:
            return cls(**kwargs)
        if not isinstance(opts, cls):
            raise ConfigError(
                f"opts must be SpgemmOptions or None, got {type(opts).__name__}"
            )
        return opts.replace(**kwargs) if kwargs else opts

    def replace(self, **changes: Any) -> "SpgemmOptions":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)
