"""Executable behavioural proxies for the paper's proprietary baselines.

Intel MKL's ``mkl_sparse_spmm`` family is closed source; the paper itself
treats it as a black box and characterizes it empirically (Table 1 lists its
accumulator as unknown).  To keep the benchmark harness runnable end-to-end
we provide *executable proxies* that (a) compute correct products and (b)
exhibit MKL's observed behavioural traits, which the performance model keys
off:

* **mkl** — two-phase, accepts any input order, output order selectable.
  Observed traits (§5.4): strong on small uniform matrices and high
  compression ratios, "terrible" load balance on skewed (G500) inputs
  because its internal scheduling is row-count based, and a pronounced
  sorting penalty on dense outputs.  The proxy is a SPA kernel over a
  *static* (row-count) partition — reproducing the load-imbalance trait —
  with dynamic chunked dispatch modeled in the perfmodel layer.
* **mkl_inspector** — the inspector-executor API: one phase, output always
  unsorted, lower constant factors (it skips the symbolic pass).  Proxy: a
  SPA kernel in one-phase mode with unsorted harvest over a static
  partition.

Correctness of both proxies is verified against the dense oracle in tests;
their *performance* characteristics live in
:mod:`repro.perfmodel.cost` (``mkl_cost``/``mkl_inspector_cost``).
"""

from __future__ import annotations

from ..matrix.csr import CSR
from ..semiring import PLUS_TIMES, Semiring
from .instrument import KernelStats
from .scheduler import ThreadPartition, static_partition
from .spa_spgemm import spa_spgemm

__all__ = ["mkl_proxy_spgemm", "mkl_inspector_spgemm"]


def mkl_proxy_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
) -> CSR:
    """MKL-like two-phase SpGEMM proxy ("Any" input order, "Select" output).

    Rows are split by *row count*, not flop — the root of MKL's poor load
    balance on skewed matrices that Figure 12 (G500 panels) shows.
    """
    if partition is None:
        partition = static_partition(a.nrows, nthreads)
    return spa_spgemm(
        a,
        b,
        semiring=semiring,
        sort_output=sort_output,
        partition=partition,
        stats=stats,
    )


def mkl_inspector_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
) -> CSR:
    """MKL inspector-executor proxy: one phase, output always unsorted."""
    if partition is None:
        partition = static_partition(a.nrows, nthreads)
    return spa_spgemm(
        a,
        b,
        semiring=semiring,
        sort_output=False,
        partition=partition,
        stats=stats,
    )
