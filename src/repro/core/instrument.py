"""Operation-count instrumentation shared by all executable kernels.

The machine-level performance model (:mod:`repro.perfmodel`) needs *exact*
operation counts — hash probes, heap pushes/pops, sort element counts, bytes
touched.  Rather than modelling them twice, the executable kernels emit them
through a :class:`KernelStats` collector when one is supplied, and the
perfmodel's closed-form count functions are cross-validated against these
measured counts in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Mutable per-run operation counters.

    All counters are totals across the whole multiplication.  ``per_thread``
    holds ``(compute_ops, flop)`` pairs indexed by simulated thread id when
    the kernel was run with a thread partition.
    """

    #: scalar multiply-accumulate operations performed (= flop executed)
    flops: int = 0
    #: hash-table probe steps (scalar kernels: one per slot inspected)
    hash_probes: int = 0
    #: hash-table insertions (distinct keys placed)
    hash_inserts: int = 0
    #: probe-sequence starts (one per table access, across all phases)
    hash_accesses: int = 0
    #: vectorized probe steps (HashVector: one per chunk inspected)
    vector_probes: int = 0
    #: heap push operations
    heap_pushes: int = 0
    #: heap pop operations
    heap_pops: int = 0
    #: elements passed through an output sort
    sorted_elements: int = 0
    #: entries written to the output structure
    output_nnz: int = 0
    #: dense-accumulator (SPA) touches
    spa_touches: int = 0
    #: rows processed
    rows: int = 0
    #: inspector–executor plan-cache hits (``spgemm(..., plan_cache=...)``)
    plan_hits: int = 0
    #: inspector–executor plan-cache misses (inspection had to run)
    plan_misses: int = 0
    #: wall-clock seconds spent in plan inspection (symbolic/structure phase)
    inspect_seconds: float = 0.0
    #: wall-clock seconds spent in plan numeric-only executions
    execute_seconds: float = 0.0
    #: per-simulated-thread (ops, flop) pairs
    per_thread: "list[tuple[int, int]]" = field(default_factory=list)

    def collision_factor(self) -> float:
        """Average probes per probe-sequence start — the paper's ``c``.

        ``c = 1`` means no collisions (every probe lands on its home slot).
        Returns 1.0 when no probing happened at all.
        """
        if self.hash_probes == 0 or self.hash_accesses == 0:
            return 1.0
        return self.hash_probes / self.hash_accesses

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another collector's counts into this one."""
        self.flops += other.flops
        self.hash_probes += other.hash_probes
        self.hash_inserts += other.hash_inserts
        self.hash_accesses += other.hash_accesses
        self.vector_probes += other.vector_probes
        self.heap_pushes += other.heap_pushes
        self.heap_pops += other.heap_pops
        self.sorted_elements += other.sorted_elements
        self.output_nnz += other.output_nnz
        self.spa_touches += other.spa_touches
        self.rows += other.rows
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.inspect_seconds += other.inspect_seconds
        self.execute_seconds += other.execute_seconds
        self.per_thread.extend(other.per_thread)
