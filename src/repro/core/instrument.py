"""Operation-count instrumentation shared by all executable kernels.

The machine-level performance model (:mod:`repro.perfmodel`) needs *exact*
operation counts — hash probes, heap pushes/pops, sort element counts, bytes
touched.  Rather than modelling them twice, the executable kernels emit them
through a :class:`KernelStats` collector when one is supplied, and the
perfmodel's closed-form count functions are cross-validated against these
measured counts in the test suite.

Counters and spans land in one report: when a run is traced
(:mod:`repro.observability`), the dispatcher snapshots the collector around
the kernel and attaches the per-call deltas to the root span, and the
kernel's per-phase wall times flow back into the ``*_seconds`` counters
here — so a single ``KernelStats`` carries both the operation ledger and
the phase timing of everything merged into it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = ["KernelStats", "EXTRA_SPAN_COUNTERS"]

#: Trace-only counter keys sanctioned on spans *in addition to* the
#: :class:`KernelStats` fields.  The span-discipline contract (see
#: ``docs/static-analysis.md``) requires every literal counter key at a
#: tracer seam to be a declared field of the instrumentation schema so
#: traces and stats ledgers reconcile; ``nnz`` is the one deliberate
#: extra — the dispatcher stamps the *result's* nonzero count on the root
#: span, which is a property of the output, not an operation count.
EXTRA_SPAN_COUNTERS = frozenset({"nnz"})


@dataclass
class KernelStats:
    """Mutable per-run operation counters.

    All counters are totals across the whole multiplication.  ``per_thread``
    holds ``(compute_ops, flop)`` pairs indexed by simulated thread id when
    the kernel was run with a thread partition.
    """

    #: scalar multiply-accumulate operations performed (= flop executed)
    flops: int = 0
    #: hash-table probe steps (scalar kernels: one per slot inspected)
    hash_probes: int = 0
    #: hash-table insertions (distinct keys placed)
    hash_inserts: int = 0
    #: probe-sequence starts (one per table access, across all phases)
    hash_accesses: int = 0
    #: vectorized probe steps (HashVector: one per chunk inspected)
    vector_probes: int = 0
    #: heap push operations
    heap_pushes: int = 0
    #: heap pop operations
    heap_pops: int = 0
    #: elements passed through an output sort
    sorted_elements: int = 0
    #: entries written to the output structure
    output_nnz: int = 0
    #: dense-accumulator (SPA) touches
    spa_touches: int = 0
    #: intermediate products that survived a fused mask (``masked_spgemm``);
    #: ``flops - masked_kept`` is the work fusion kept off the output path
    masked_kept: int = 0
    #: rows processed
    rows: int = 0
    #: shm-sanitizer audit checks performed (``REPRO_SANITIZE=shm``):
    #: segment digests, claim registrations, block/claim comparisons
    sanitize_checks: int = 0
    #: shm-sanitizer violations observed (nonzero only on runs that raised
    #: ``SanitizerError`` — the counter lands on the span before the raise)
    sanitize_violations: int = 0
    #: inspector–executor plan-cache hits (``spgemm(..., plan_cache=...)``)
    plan_hits: int = 0
    #: inspector–executor plan-cache misses (inspection had to run)
    plan_misses: int = 0
    #: wall-clock seconds spent in plan inspection (symbolic/structure phase)
    inspect_seconds: float = 0.0
    #: wall-clock seconds spent in plan numeric-only executions
    execute_seconds: float = 0.0
    #: wall-clock seconds in the symbolic phase (filled on traced runs)
    symbolic_seconds: float = 0.0
    #: wall-clock seconds in the numeric phase (filled on traced runs)
    numeric_seconds: float = 0.0
    #: wall-clock seconds in output sorting/extraction (filled on traced runs)
    sort_seconds: float = 0.0
    #: per-simulated-thread (ops, flop) pairs
    per_thread: "list[tuple[int, int]]" = field(default_factory=list)

    def collision_factor(self) -> float:
        """Average probes per probe-sequence start — the paper's ``c``.

        ``c = 1`` means no collisions (every probe lands on its home slot).
        Returns 1.0 when no probing happened at all.
        """
        if self.hash_probes == 0 or self.hash_accesses == 0:
            return 1.0
        return self.hash_probes / self.hash_accesses

    def scalar_snapshot(self) -> "dict[str, float]":
        """Current value of every numeric counter, by field name.

        The observability layer diffs two snapshots to attribute counter
        deltas to one traced call; list-valued fields (``per_thread``) are
        deliberately excluded.
        """
        out: "dict[str, float]" = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)):
                out[f.name] = value
        return out

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another collector's counts into this one.

        Driven by ``dataclasses.fields`` so a counter added to the class is
        merged by construction — the previous hand-enumerated field list
        silently dropped any counter it predated.  Numbers add; lists
        extend; any other field type is a programming error surfaced loudly
        rather than skipped.
        """
        for f in dataclasses.fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, list):
                mine.extend(theirs)
            elif isinstance(mine, (int, float)):
                setattr(self, f.name, mine + theirs)
            else:
                raise TypeError(
                    f"KernelStats.merge does not know how to combine field "
                    f"{f.name!r} of type {type(mine).__name__}"
                )
