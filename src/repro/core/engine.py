"""Execution-engine dispatch layer and the per-thread scratch arena.

Every algorithm in the registry exists for two different jobs, and the
*engine* selects which one runs:

* ``"faithful"`` — the scalar, instrumented kernels (``hash_spgemm`` and
  friends).  They execute the paper's algorithms literally — slot-by-slot
  hash probes, per-element heap pushes — because those operations are the
  data the machine-level performance model consumes.  This is the default.
* ``"fast"`` — the batched numpy implementation
  (:mod:`repro.core.hash_batch`): whole flop-bounded row blocks are expanded,
  bucketed and scatter-reduced with vectorized primitives.  It produces
  **bit-for-bit identical** CSR output (indptr/indices/data, sorted or
  unsorted) for the hash-family kernels and SPA, at numpy speed — the same
  re-mapping of hash SpGEMM onto wide vector units that Le Fèvre & Casas
  (arXiv:2303.02471) perform on real hardware, applied to numpy's vector
  width.

The registry below is the plug-in point for future backends (sharded,
cached, multi-process SUMMA): a backend registers an :class:`EngineInfo`
and the capability set it covers, and :func:`repro.spgemm` routes to it.

Algorithms without a batched implementation (the Heap family and the
behavioural proxies, whose element-level behaviour *is* their purpose) fall
back to the faithful kernel under ``engine="fast"``; ``esc`` is inherently
vectorized, so both engines run the same code for it.

The :class:`ScratchArena` is the engine-level realization of the paper's
"parallel" memory-management scheme (§5.3.1): rather than allocating fresh
key/value/permutation buffers per row block (the single-allocator bottleneck
of Fig. 4), each thread owns one arena whose buffers grow geometrically and
are reused across blocks and across calls.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, invalid_choice

__all__ = [
    "EngineInfo",
    "ENGINES",
    "FAST_ALGORITHMS",
    "VECTORIZED_ALGORITHMS",
    "FAITHFUL_ONLY_ALGORITHMS",
    "available_engines",
    "resolve_engine",
    "ScratchArena",
    "get_thread_arena",
]


@dataclass(frozen=True)
class EngineInfo:
    """One execution backend: how a registered algorithm gets run.

    Attributes
    ----------
    name:
        Registry key accepted by ``spgemm(..., engine=...)``.
    description:
        Human-readable summary (shown by the CLI / docs).
    exact_counts:
        Whether kernels under this engine produce exact per-operation
        instrumentation (hash probes, heap pushes).  The fast engine only
        fills the coarse ledger entries (flop, output nnz, sort volume).
    """

    name: str
    description: str
    exact_counts: bool


#: Engine registry.  Future backends (sharding, caching, multi-process
#: SUMMA) plug in here and claim a capability set.
ENGINES: "dict[str, EngineInfo]" = {
    "faithful": EngineInfo(
        "faithful",
        "scalar instrumented kernels (paper-exact operation streams)",
        exact_counts=True,
    ),
    "fast": EngineInfo(
        "fast",
        "batched numpy execution (vectorized row-block processing)",
        exact_counts=False,
    ),
}

#: Algorithms with a dedicated batched implementation in
#: :mod:`repro.core.hash_batch` (bit-for-bit identical output).
FAST_ALGORITHMS = frozenset({"hash", "hashvec", "spa"})

#: Algorithms that are already fully vectorized, so both engines run the
#: same code path.
VECTORIZED_ALGORITHMS = frozenset({"esc"})

#: Algorithms that deliberately have *no* batched implementation and always
#: run the faithful kernel: the Heap family's element-level merge order and
#: the behavioural proxies' operation streams are their entire purpose.
#: Every registered algorithm must appear in exactly one of the three
#: coverage sets — the contract linter (rule ``kernel-dispatch``) and
#: :func:`repro.core.spgemm._check_registry_coverage` both enforce the
#: partition, so a new kernel cannot fall through ``resolve_engine`` by
#: accident.
FAITHFUL_ONLY_ALGORITHMS = frozenset({
    "heap",
    "merge",
    "mkl",
    "mkl_inspector",
    "kokkos",
    "blocked_spa",
})


def available_engines() -> "list[str]":
    """Engine names accepted by :func:`repro.spgemm`, in registry order."""
    return list(ENGINES)


def resolve_engine(engine: str, algorithm: str) -> str:
    """Validate ``engine`` and return the engine that will actually run.

    ``"fast"`` resolves to ``"faithful"`` for algorithms without a batched
    implementation (heap/merge and the behavioural proxies — their
    element-level behaviour is the point), and stays ``"fast"`` for the
    hash family, SPA and the inherently-vectorized ESC.
    """
    if engine not in ENGINES:
        raise invalid_choice("engine", engine, available_engines())
    if engine == "fast" and algorithm in (FAST_ALGORITHMS | VECTORIZED_ALGORITHMS):
        return "fast"
    return "faithful"


class ScratchArena:
    """Named, geometrically-grown scratch buffers reused across row blocks.

    Mirrors the paper's thread-private allocation scheme: one allocation
    amortized over the whole computation instead of one per row (block).
    ``take(name, size, dtype)`` returns a length-``size`` view of the named
    buffer, growing it to the next power of two only when needed, so steady
    state performs **zero** allocations per block.

    An arena is *not* thread-safe; use :func:`get_thread_arena` to obtain
    the calling thread's private instance.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: "dict[str, np.ndarray]" = {}

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` view of buffer ``name``, allocated on demand."""
        if size < 0:
            raise ConfigError(f"arena buffer size must be >= 0, got {size}")
        dt = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != dt:
            cap = 1 << max(int(size - 1).bit_length(), 10)  # >= 1024 entries
            buf = np.empty(cap, dtype=dt)
            self._buffers[name] = buf
        return buf[:size]

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently held by the arena's buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def release(self) -> None:
        """Drop every buffer (memory returns to the allocator)."""
        self._buffers.clear()


_THREAD_ARENAS = threading.local()


def get_thread_arena() -> ScratchArena:
    """The calling thread's private :class:`ScratchArena` (created lazily)."""
    arena = getattr(_THREAD_ARENAS, "arena", None)
    if arena is None:
        arena = ScratchArena()
        _THREAD_ARENAS.arena = arena
    return arena
