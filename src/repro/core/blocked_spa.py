"""Blocked-SPA SpGEMM — column-partitioned Gustavson (Patwary et al. 2015).

§2 of the paper: "For matrices with large dimensions, a SPA-based algorithm
can still achieve good performance by 'blocking' SPA in order to decrease
cache miss rates.  Patwary et al. achieved this by partitioning the data
structure of B by columns."

The column range of B (and hence of C) is split into blocks of
``block_cols`` columns; each block is processed with a dense accumulator of
only ``block_cols`` entries, which stays cache-resident regardless of the
matrix dimension.  The price is re-streaming A and the block-filtered parts
of B once per block.  The ablation bench
(``benchmarks/bench_ablation_blocked_spa.py``) reproduces Patwary's
crossover: blocking loses on small matrices (extra passes) and wins on
large ones (no SPA cache misses).

Output rows are naturally fully sorted: blocks are processed in ascending
column order and the harvest within a block is sorted.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .accumulators import SparseAccumulator
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["blocked_spa_spgemm", "default_block_cols"]

#: default SPA block: 4096 columns x 12 bytes = 48 KB, comfortably L2-resident
DEFAULT_BLOCK_COLS = 4096


def default_block_cols(cache_bytes: float = 256 * 1024) -> int:
    """Largest power-of-two column block whose SPA fits in ``cache_bytes``."""
    entries = max(int(cache_bytes // 12), 1)
    return 1 << max((entries.bit_length() - 1), 0)


def _column_block_views(b: CSR, block_cols: int) -> "list[tuple[int, CSR]]":
    """Split B by column ranges; block k holds columns [k*bc, (k+1)*bc).

    Column indices inside each block CSR are rebased to the block, so the
    inner SPA only needs ``block_cols`` slots.
    """
    nblocks = (b.ncols + block_cols - 1) // block_cols
    if nblocks <= 1:
        return [(0, b)]
    block_of = b.indices // block_cols
    rows = np.repeat(np.arange(b.nrows), b.row_nnz())
    order = np.lexsort((b.indices, block_of, rows))
    # After this sort, each row's entries are grouped by block; rebuild one
    # CSR per block with a vectorized pass.
    blocks = []
    sorted_blocks = block_of[order]
    sorted_rows = rows[order]
    sorted_cols = b.indices[order]
    sorted_vals = b.data[order]
    for k in range(nblocks):
        sel = sorted_blocks == k
        if not sel.any():
            blocks.append((k, None))
            continue
        r = sorted_rows[sel]
        c = sorted_cols[sel] - k * block_cols
        v = sorted_vals[sel]
        counts = np.bincount(r, minlength=b.nrows)
        indptr = np.zeros(b.nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        width = min(block_cols, b.ncols - k * block_cols)
        blocks.append((k, CSR((b.nrows, width), indptr, c, v, sorted_rows=True)))
    return blocks


def blocked_spa_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
    block_cols: int = DEFAULT_BLOCK_COLS,
) -> CSR:
    """Multiply via column-blocked dense accumulators.

    ``block_cols`` is the SPA width per pass (power of two recommended);
    the output is always row-sorted (``sort_output=False`` is accepted for
    interface uniformity but costs nothing to honour).
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if block_cols < 1:
        raise ConfigError(f"block_cols must be >= 1, got {block_cols}")
    sr = get_semiring(semiring)
    if partition is None:
        partition = rows_to_threads(a, b, nthreads)
    elif partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    nrows = a.nrows

    # Per (block, row) pieces; stitched at the end in block-ascending order,
    # which yields globally sorted rows.
    piece_cols: "list[dict[int, np.ndarray]]" = []
    piece_vals: "list[dict[int, np.ndarray]]" = []
    total_flop = 0

    blocks = _column_block_views(b, block_cols)
    for k, b_block in blocks:
        cols_map: "dict[int, np.ndarray]" = {}
        vals_map: "dict[int, np.ndarray]" = {}
        piece_cols.append(cols_map)
        piece_vals.append(vals_map)
        if b_block is None:
            continue
        bb_indptr, bb_indices, bb_data = (
            b_block.indptr, b_block.indices, b_block.data,
        )
        offset = k * block_cols
        for tid in range(partition.nthreads):
            spa = SparseAccumulator(b_block.ncols)
            for s, e in partition.rows_of(tid):
                for i in range(s, e):
                    spa.start_row(i)
                    touched = False
                    for j in range(a_indptr[i], a_indptr[i + 1]):
                        kk = a_indices[j]
                        lo, hi = bb_indptr[kk], bb_indptr[kk + 1]
                        if lo == hi:
                            continue
                        contrib = np.atleast_1d(
                            sr.mul(a_data[j], bb_data[lo:hi])
                        )
                        spa.scatter(bb_indices[lo:hi], contrib, sr)
                        total_flop += hi - lo
                        touched = True
                    if touched:
                        ccols, cvals = spa.harvest(sort=True)
                        if len(ccols):
                            cols_map[i] = ccols + offset
                            vals_map[i] = cvals
            if stats is not None:
                spa.flush_stats(stats)

    # Stitch: per row, concatenate blocks in ascending order.
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    for cols_map in piece_cols:
        for i, ccols in cols_map.items():
            row_nnz[i] += len(ccols)
    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    out_indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
    out_data = np.empty(int(indptr[-1]), dtype=VALUE_DTYPE)
    cursor = indptr[:-1].copy()
    for cols_map, vals_map in zip(piece_cols, piece_vals):
        for i, ccols in cols_map.items():
            n = len(ccols)
            out_indices[cursor[i] : cursor[i] + n] = ccols
            out_data[cursor[i] : cursor[i] + n] = vals_map[i]
            cursor[i] += n

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += int(indptr[-1])
        stats.rows += nrows

    return CSR((nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=True)
