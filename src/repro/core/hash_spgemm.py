"""Hash SpGEMM — the paper's flagship algorithm (§4.2.1, Fig. 7).

Two phases over rows partitioned by the flop-balanced scheduler:

* **symbolic** — per row, insert every intermediate product's column index
  into the thread-private hash table; the number of distinct keys is
  ``nnz(c_i*)``, giving the output row pointers;
* **numeric** — re-run the products, accumulating values in the table, then
  harvest each row (sorting by column index only when the caller wants
  sorted output — the significant optimization highlighted in the abstract).

Each (simulated) thread allocates ONE hash table sized by the maximum flop of
any row it owns (``lowest_p2`` of it, clipped to the column count), reusing
it across rows with O(row) reinitialization — the paper's "parallel"
allocation scheme that §5.3.1 shows is essential on KNL.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row
from ..observability import NULL_TRACER
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .accumulators import HashAccumulator, VectorHashAccumulator
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["hash_spgemm", "hash_numeric"]


def _check_operands(a: CSR, b: CSR) -> None:
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")


def _max_flop_per_thread(
    partition: ThreadPartition, flop: np.ndarray
) -> "list[int]":
    """Upper limit of any row's flop within each thread's rows (Fig. 7 l.5-8)."""
    caps = []
    for tid in range(partition.nthreads):
        cap = 0
        for s, e in partition.rows_of(tid):
            if e > s:
                cap = max(cap, int(flop[s:e].max(initial=0)))
        caps.append(cap)
    return caps


def hash_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
    vector_width: int = 0,
    one_phase: bool = False,
    tracer=None,
) -> CSR:
    """Multiply two CSR matrices with the hash-table accumulator.

    Parameters
    ----------
    a, b:
        Operands.  Inputs may be sorted or unsorted ("Any" in Table 1).
    semiring:
        Semiring (name or instance) used for multiply/accumulate.
    sort_output:
        Emit rows sorted by column index ("Select" in Table 1).  Skipping the
        sort is the headline optimization for unsorted pipelines.
    nthreads:
        Number of simulated threads; rows are assigned with the paper's
        flop-balanced scheduler unless ``partition`` overrides it.
    partition:
        Optional pre-built :class:`ThreadPartition` (e.g. to reproduce the
        static/dynamic scheduling experiments of Fig. 9).
    stats:
        Optional :class:`KernelStats` receiving exact operation counts.
    vector_width:
        0 → scalar probing (:class:`HashAccumulator`).  >0 → chunked
        "vector register" probing with that many 32-bit lanes
        (:class:`VectorHashAccumulator`); used by
        :func:`repro.core.hash_vector.hash_vector_spgemm`.
    one_phase:
        Skip the symbolic pass and grow per-thread output buffers instead
        (§2's alternative strategy: "we allocate large enough memory space
        for output matrix and compute").  Halves the probing work at the
        price of flop-bounded temporary memory — the trade-off the paper
        lays out between its two-phase Hash and one-phase Heap designs.
    tracer:
        Optional :class:`repro.observability.Tracer`; opens
        partition/symbolic/numeric spans and reports the per-row
        extract+sort total as a ``sort``-phase span.  ``None`` (default)
        executes no tracing work in the row loops.

    Returns
    -------
    CSR
        ``C = A (x) B`` with ``sorted_rows == sort_output``.
    """
    _check_operands(a, b)
    sr = get_semiring(semiring)
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span("partition", phase="partition"):
        flop = flop_per_row(a, b)
        if partition is None:
            partition = rows_to_threads(a, b, nthreads, row_cost=flop)
        elif partition.nrows != a.nrows:
            raise ConfigError(
                f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
            )
        caps = _max_flop_per_thread(partition, flop)

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data

    if one_phase:
        return _hash_one_phase(
            a, b, sr, sort_output, partition, caps, stats, vector_width,
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Symbolic phase: per-row output sizes.
    # ------------------------------------------------------------------
    with obs.span("symbolic", phase="symbolic", rows=a.nrows):
        row_nnz = np.zeros(a.nrows, dtype=INDPTR_DTYPE)
        tables = []
        for tid in range(partition.nthreads):
            if vector_width:
                table = VectorHashAccumulator(
                    caps[tid], b.ncols, lane_width=vector_width
                )
            else:
                table = HashAccumulator(caps[tid], b.ncols)
            tables.append(table)
            for s, e in partition.rows_of(tid):
                for i in range(s, e):
                    table.reset()
                    insert = table.insert_symbolic
                    for j in range(a_indptr[i], a_indptr[i + 1]):
                        k = a_indices[j]
                        for col in b_indices[b_indptr[k] : b_indptr[k + 1]].tolist():
                            insert(col)
                    row_nnz[i] = (
                        len(table.occupied)
                        if not vector_width
                        else int(table.fill[table.touched].sum()) if table.touched else 0
                    )
            if stats is not None:
                table.flush_stats(stats)

        indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(row_nnz, out=indptr[1:])
        out_indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
        out_data = np.empty(int(indptr[-1]), dtype=VALUE_DTYPE)

    # ------------------------------------------------------------------
    # Numeric phase: recompute with values, harvest into the output.
    # ------------------------------------------------------------------
    with obs.span("numeric", phase="numeric", rows=a.nrows):
        total_flop = _numeric_phase(
            a, b, sr, sort_output, partition, tables,
            indptr, out_indices, out_data, stats, vector_width,
            tracer=tracer,
        )

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += int(indptr[-1])
        stats.rows += a.nrows
        if sort_output:
            stats.sorted_elements += int(indptr[-1])

    return CSR(
        (a.nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )


def _numeric_phase(
    a: CSR,
    b: CSR,
    sr: Semiring,
    sort_output: bool,
    partition: ThreadPartition,
    tables: list,
    indptr: np.ndarray,
    out_indices: np.ndarray,
    out_data: np.ndarray,
    stats: KernelStats | None,
    vector_width: int,
    tracer=None,
) -> int:
    """Numeric pass against pre-sized tables and a known ``indptr``.

    Shared by the fresh two-phase kernel (tables arrive warm from its own
    symbolic pass) and :func:`hash_numeric` (tables are freshly built from
    the plan's cached capacities — same sizes, so the probe sequences and
    extraction orders are identical).  Returns the total flop executed.
    """
    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    total_flop = 0
    # Per-row sort timing only exists on the traced path: a plain local
    # accumulator around extract(), reported once as a "sort" child span.
    time_sort = tracer is not None and sort_output
    sort_seconds = 0.0
    clock = time.perf_counter
    for tid in range(partition.nthreads):
        table = tables[tid]
        thread_ops_before = table.probes if not vector_width else table.vprobes
        thread_flop = 0
        for s, e in partition.rows_of(tid):
            for i in range(s, e):
                table.reset()
                insert = table.insert_numeric
                for j in range(a_indptr[i], a_indptr[i + 1]):
                    k = a_indices[j]
                    a_val = a_data[j]
                    lo, hi = b_indptr[k], b_indptr[k + 1]
                    cols = b_indices[lo:hi].tolist()
                    prods = sr.mul(a_val, b_data[lo:hi])
                    thread_flop += len(cols)
                    for col, val in zip(cols, np.atleast_1d(prods).tolist()):
                        insert(col, val, sr)
                if time_sort:
                    t0 = clock()
                    cols_out, vals_out = table.extract(sort=True)
                    sort_seconds += clock() - t0
                else:
                    cols_out, vals_out = table.extract(sort=sort_output)
                out_indices[indptr[i] : indptr[i + 1]] = cols_out
                out_data[indptr[i] : indptr[i + 1]] = vals_out
        total_flop += thread_flop
        if stats is not None:
            thread_ops = (
                table.probes if not vector_width else table.vprobes
            ) - thread_ops_before
            stats.per_thread.append((thread_ops, thread_flop))
            table.flush_stats(stats)
    if time_sort:
        tracer.record("sort", sort_seconds, phase="sort", what="row extract+sort")
    return total_flop


def hash_numeric(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    partition: ThreadPartition,
    caps: "list[int]",
    indptr: np.ndarray,
    stats: KernelStats | None = None,
    vector_width: int = 0,
    tracer=None,
) -> CSR:
    """Numeric-only hash multiplication against a cached symbolic result.

    The inspector–executor entry point (:mod:`repro.core.plan`): ``indptr``
    is the output row-pointer array discovered by a previous symbolic phase
    on the same sparsity structure, ``caps`` the per-thread row-flop bounds
    that size each thread's table, and ``partition`` the row partition both
    phases share.  Tables are rebuilt at the cached capacities, so the
    numeric pass is operation-for-operation the one :func:`hash_spgemm`
    would run — the symbolic pass is simply skipped.
    """
    _check_operands(a, b)
    sr = get_semiring(semiring)
    if partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )
    nnz_total = int(indptr[-1])
    out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
    out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
    tables = []
    for tid in range(partition.nthreads):
        if vector_width:
            tables.append(
                VectorHashAccumulator(caps[tid], b.ncols, lane_width=vector_width)
            )
        else:
            tables.append(HashAccumulator(caps[tid], b.ncols))
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span("numeric", phase="numeric", rows=a.nrows):
        total_flop = _numeric_phase(
            a, b, sr, sort_output, partition, tables,
            indptr, out_indices, out_data, stats, vector_width,
            tracer=tracer,
        )
    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += nnz_total
        stats.rows += a.nrows
        if sort_output:
            stats.sorted_elements += nnz_total
    return CSR(
        (a.nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )


def _hash_one_phase(
    a: CSR,
    b: CSR,
    sr: Semiring,
    sort_output: bool,
    partition: ThreadPartition,
    caps: "list[int]",
    stats: KernelStats | None,
    vector_width: int,
    tracer=None,
) -> CSR:
    """Single numeric pass; per-thread result buffers grow per row."""
    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    nrows = a.nrows
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    pieces: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
    total_flop = 0
    obs = tracer if tracer is not None else NULL_TRACER
    time_sort = tracer is not None and sort_output
    sort_seconds = 0.0
    clock = time.perf_counter
    numeric_scope = obs.span("numeric", phase="numeric", rows=nrows)
    with numeric_scope:
        for tid in range(partition.nthreads):
            if vector_width:
                table = VectorHashAccumulator(
                    caps[tid], b.ncols, lane_width=vector_width
                )
            else:
                table = HashAccumulator(caps[tid], b.ncols)
            thread_flop = 0
            for s, e in partition.rows_of(tid):
                row_cols: "list[np.ndarray]" = []
                row_vals: "list[np.ndarray]" = []
                for i in range(s, e):
                    table.reset()
                    insert = table.insert_numeric
                    for j in range(a_indptr[i], a_indptr[i + 1]):
                        k = a_indices[j]
                        lo, hi = b_indptr[k], b_indptr[k + 1]
                        cols = b_indices[lo:hi].tolist()
                        prods = np.atleast_1d(sr.mul(a_data[j], b_data[lo:hi])).tolist()
                        thread_flop += len(cols)
                        for col, val in zip(cols, prods):
                            insert(col, val, sr)
                    if time_sort:
                        t0 = clock()
                        cols_out, vals_out = table.extract(sort=True)
                        sort_seconds += clock() - t0
                    else:
                        cols_out, vals_out = table.extract(sort=sort_output)
                    row_nnz[i] = len(cols_out)
                    row_cols.append(cols_out)
                    row_vals.append(vals_out)
                pieces[s] = (
                    np.concatenate(row_cols) if row_cols else np.empty(0, INDEX_DTYPE),
                    np.concatenate(row_vals) if row_vals else np.empty(0, VALUE_DTYPE),
                )
            total_flop += thread_flop
            if stats is not None:
                thread_ops = table.probes if not vector_width else table.vprobes
                stats.per_thread.append((thread_ops, thread_flop))
                table.flush_stats(stats)
        if time_sort:
            tracer.record("sort", sort_seconds, phase="sort", what="row extract+sort")

    with obs.span("stitch", phase="stitch"):
        indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(row_nnz, out=indptr[1:])
        nnz_total = int(indptr[-1])
        out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
        out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
        for s, (ccols, cvals) in pieces.items():
            out_indices[indptr[s] : indptr[s] + len(ccols)] = ccols
            out_data[indptr[s] : indptr[s] + len(cvals)] = cvals

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += nnz_total
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += nnz_total

    return CSR(
        (nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )
