"""Merge SpGEMM — iterative sorted-row merging (ViennaCL / Gremse et al.).

§2 of the paper: "ViennaCL implementation, which was first described for
GPUs, iteratively merges sorted lists, similar to merge sort."

Each output row is the semiring-sum of ``nnz(a_i*)`` *sorted* B rows; this
kernel reduces them by rounds of pairwise merges (a merge-sort tree), so
every element is touched ``ceil(log2 k)`` times in fully streaming order —
the opposite trade-off from the Heap kernel's pointer-chasing k-way merge.
The pairwise merge of two sorted (cols, vals) lists is numpy-vectorized via
the classic ``searchsorted`` interleaving.

Properties: one phase, requires sorted inputs, emits sorted output (like
Heap in Table 1's terms).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["merge_spgemm", "merge_sorted_lists"]


def merge_sorted_lists(
    cols_a: np.ndarray,
    vals_a: np.ndarray,
    cols_b: np.ndarray,
    vals_b: np.ndarray,
    semiring: Semiring,
) -> "tuple[np.ndarray, np.ndarray]":
    """Merge two duplicate-free sorted runs, combining equal columns.

    Vectorized two-pointer merge: every element's slot in the interleaved
    order comes from one ``searchsorted`` against the other list; duplicate
    columns (present in both) are then folded with ``semiring.add``.
    """
    if len(cols_a) == 0:
        return cols_b, vals_b
    if len(cols_b) == 0:
        return cols_a, vals_a
    # positions in the merged sequence (ties: a's copy first)
    pos_a = np.arange(len(cols_a)) + np.searchsorted(cols_b, cols_a, side="left")
    pos_b = np.arange(len(cols_b)) + np.searchsorted(cols_a, cols_b, side="right")
    total = len(cols_a) + len(cols_b)
    cols = np.empty(total, dtype=cols_a.dtype)
    vals = np.empty(total, dtype=vals_a.dtype)
    cols[pos_a] = cols_a
    cols[pos_b] = cols_b
    vals[pos_a] = vals_a
    vals[pos_b] = vals_b
    dup = np.flatnonzero(cols[1:] == cols[:-1])
    if len(dup) == 0:
        return cols, vals
    vals[dup] = semiring.add(vals[dup], vals[dup + 1])
    keep = np.ones(total, dtype=bool)
    keep[dup + 1] = False
    return cols[keep], vals[keep]


def merge_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
) -> CSR:
    """Multiply two *row-sorted* CSR matrices by iterative row merging.

    Raises :class:`ConfigError` for unsorted B (merge needs sorted runs);
    the :func:`repro.spgemm` dispatcher sorts transparently.  Output is
    always sorted (``sort_output`` accepted for interface uniformity).
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if not b.sorted_rows:
        raise ConfigError(
            "merge_spgemm requires row-sorted B; call b.sort_rows() first "
            "or use spgemm(..., algorithm='merge')"
        )
    sr = get_semiring(semiring)
    if partition is None:
        partition = rows_to_threads(a, b, nthreads)
    elif partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data

    nrows = a.nrows
    row_results: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
    total_flop = 0
    merged_elements = 0

    for tid in range(partition.nthreads):
        for s, e in partition.rows_of(tid):
            for i in range(s, e):
                # The per-row run stack *is* the merge algorithm (ViennaCL's
                # row-merge design the paper benchmarks as "MergeSpGEMM"):
                # its entries are zero-copy views into B, and its length is
                # nnz(a_i*) — the sanctioned exception to the Section 4.3
                # no-per-row-allocation contract.
                runs: "list[tuple[np.ndarray, np.ndarray]]" = []  # repro-lint: disable=hot-loop-alloc
                for j in range(a_indptr[i], a_indptr[i + 1]):
                    k = a_indices[j]
                    lo, hi = b_indptr[k], b_indptr[k + 1]
                    if lo == hi:
                        continue
                    vals = np.atleast_1d(sr.mul(a_data[j], b_data[lo:hi]))
                    runs.append((b_indices[lo:hi], vals))
                    total_flop += hi - lo
                # merge-sort tree over the runs
                while len(runs) > 1:
                    # Each tree level halves the run list; `nxt` is the next
                    # level (O(log nnz(a_i*)) short-lived lists per row, part
                    # of the same sanctioned merge-tree exception as `runs`).
                    nxt = []  # repro-lint: disable=hot-loop-alloc
                    for p in range(0, len(runs) - 1, 2):
                        ca, va = runs[p]
                        cb, vb = runs[p + 1]
                        merged_elements += len(ca) + len(cb)
                        nxt.append(merge_sorted_lists(ca, va, cb, vb, sr))
                    if len(runs) % 2:
                        nxt.append(runs[-1])
                    runs = nxt
                if runs:
                    row_results[i] = runs[0]

    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    for i, (ccols, _) in row_results.items():
        row_nnz[i] = len(ccols)
    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    out_indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
    out_data = np.empty(int(indptr[-1]), dtype=VALUE_DTYPE)
    for i, (ccols, cvals) in row_results.items():
        out_indices[indptr[i] : indptr[i + 1]] = ccols
        out_data[indptr[i] : indptr[i + 1]] = cvals

    if stats is not None:
        stats.flops += total_flop
        stats.sorted_elements += merged_elements
        stats.output_nnz += int(indptr[-1])
        stats.rows += nrows

    return CSR((nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=True)
