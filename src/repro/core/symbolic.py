"""Vectorized symbolic machinery: expansion and exact per-row ``nnz(C)``.

Two-phase SpGEMM algorithms first run a *symbolic* phase that determines the
output pattern size (§2: "counts the number of non-zero elements of output
matrix first").  The scalar kernels do this with their own accumulators; this
module provides a fully numpy-vectorized equivalent used (a) by the ESC
kernel, (b) as the fast oracle for ``nnz(C)`` at scales where scalar Python
kernels are too slow, and (c) by the performance model, which needs exact
per-row output sizes for Eq. (2) and the sort-cost terms.

The expansion enumerates every intermediate product of ``C = A B``: for each
nonzero ``a_ik`` it emits the whole row ``b_k*``.  Memory is ``O(flop)`` for
the expanded block, so callers process row blocks capped at
``max_block_flop`` intermediate products.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..errors import ShapeError
from ..matrix.csr import CSR, INDPTR_DTYPE
from ..matrix.stats import flop_per_row

__all__ = [
    "expand_rows",
    "expand_structure",
    "iter_row_blocks",
    "mask_membership",
    "masked_row_nnz",
    "segment_mask",
    "symbolic_row_nnz",
]

#: Default cap on intermediate products materialized at once (~8M entries
#: = a few hundred MB of scratch), keeping peak memory laptop-friendly.
DEFAULT_MAX_BLOCK_FLOP = 1 << 23


def expand_structure(
    a: CSR,
    b: CSR,
    row_start: int,
    row_end: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Value-free expansion plan for output rows [row_start, row_end).

    Returns ``(out_rows, out_cols, a_src, b_src)`` where ``a_src`` /
    ``b_src`` index the operands' ``data`` arrays: intermediate product
    ``p`` is ``a.data[a_src[p]] * b.data[b_src[p]]`` landing at coordinate
    ``(out_rows[p], out_cols[p])``.  The four arrays depend only on the
    operands' *structure* (``indptr``/``indices``), which is what lets the
    inspector–executor plan layer cache them and replay numeric-only
    executions against new values.

    Everything is vectorized: the classic "ragged gather" uses a repeated
    arange built from cumulative offsets.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    lo = int(a.indptr[row_start])
    hi = int(a.indptr[row_end])
    a_cols = a.indices[lo:hi]
    reps = np.diff(b.indptr)[a_cols]  # nnz(b_k*) per a-nonzero
    total = int(reps.sum())
    if total == 0:
        empty = np.empty(0, dtype=a.indices.dtype)
        eidx = np.empty(0, dtype=INDPTR_DTYPE)
        return empty, empty, eidx, eidx
    # Output row of each intermediate product.
    row_of_entry = np.repeat(
        np.arange(row_start, row_end, dtype=a.indices.dtype),
        np.diff(a.indptr[row_start : row_end + 1]),
    )
    out_rows = np.repeat(row_of_entry, reps)
    # Positions into B's arrays: starts[j] + (0..reps[j]-1), vectorized.
    starts = b.indptr[a_cols]
    offs = np.arange(total, dtype=INDPTR_DTYPE)
    seg_begin = np.concatenate([[0], np.cumsum(reps)[:-1]])
    offs -= np.repeat(seg_begin, reps)
    b_src = np.repeat(starts, reps) + offs
    out_cols = b.indices[b_src]
    a_src = np.repeat(np.arange(lo, hi, dtype=INDPTR_DTYPE), reps)
    return out_rows, out_cols, a_src, b_src


def expand_rows(
    a: CSR,
    b: CSR,
    row_start: int,
    row_end: int,
    *,
    with_values: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Materialize all intermediate products for output rows [row_start, row_end).

    Returns ``(out_rows, out_cols, a_vals_expanded_x_b_vals_or_None)`` where
    the value array is only the *gathered pair* ``(a_ik, b_kj)`` combined by
    ordinary multiplication; semiring-specific combination is done by the
    caller (ESC passes the raw gathers through ``semiring.mul``).

    Structure discovery is delegated to :func:`expand_structure`; this
    wrapper just gathers the factor values on top.
    """
    out_rows, out_cols, a_src, b_src = expand_structure(a, b, row_start, row_end)
    if not with_values:
        return out_rows, out_cols, None
    if len(out_rows) == 0:
        return out_rows, out_cols, np.empty(0)
    # Keep the two factor gathers separate so semirings other than
    # plus_times can combine them; we return a 2-row stack.
    vals = np.stack([a.data[a_src], b.data[b_src]])
    return out_rows, out_cols, vals


def segment_mask(
    rows: np.ndarray, cols: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Boolean mask marking where a new ``(row, col)`` segment begins.

    ``rows``/``cols`` must already be grouped so equal coordinates are
    contiguous (any stable (row, col) sort does).  Shared by the ESC
    compress step, the batched engine and :func:`symbolic_row_nnz` — and
    cached by the plan layer, for which the mask *is* the symbolic result.
    """
    n = len(rows)
    if out is None:
        out = np.empty(n, dtype=bool)
    if n == 0:
        return out
    out[0] = True
    np.not_equal(rows[1:], rows[:-1], out=out[1:])
    np.logical_or(out[1:], cols[1:] != cols[:-1], out=out[1:])
    return out


def mask_membership(
    rows: np.ndarray,
    cols: np.ndarray,
    mask: CSR,
    row_start: int,
    row_end: int,
) -> np.ndarray:
    """Which coordinates ``(rows[p], cols[p])`` are stored entries of ``mask``.

    ``rows`` holds absolute row indices inside ``[row_start, row_end)``.
    The test is order-independent, so an unsorted mask works: the mask
    block's entries are flattened to fused ``(row - row_start) * ncols +
    col`` keys and sorted once, then every query key is located with one
    ``searchsorted``.  This is a *symbolic builder* like everything else in
    this module — the fused masked kernel and the plan inspector call it;
    numeric-only ``execute`` replays never do (the membership outcome is
    baked into the cached gather order).
    """
    n = len(rows)
    out = np.empty(n, dtype=bool)
    if n == 0:
        return out
    lo = int(mask.indptr[row_start])
    hi = int(mask.indptr[row_end])
    if lo == hi:
        out[:] = False
        return out
    ncols = mask.ncols
    span = row_end - row_start
    if ncols and span <= (2**62) // max(ncols, 1):
        m_rows = np.repeat(
            np.arange(row_start, row_end, dtype=INDPTR_DTYPE),
            np.diff(mask.indptr[row_start : row_end + 1]),
        )
        mkeys = np.sort((m_rows - row_start) * ncols + mask.indices[lo:hi])
        pkeys = (rows.astype(INDPTR_DTYPE) - row_start) * ncols + cols
        pos = np.searchsorted(mkeys, pkeys)
        valid = pos < len(mkeys)
        out[:] = False
        out[valid] = mkeys[pos[valid]] == pkeys[valid]
        return out
    # Fused keys would overflow int64 (astronomical ncols): fall back to a
    # per-row membership test against each mask row's sorted columns.
    out[:] = False
    for i in range(row_start, row_end):
        sel = rows == i
        if not sel.any():
            continue
        mc = np.sort(mask.indices[mask.indptr[i] : mask.indptr[i + 1]])
        qc = cols[sel]
        pos = np.searchsorted(mc, qc)
        ok = pos < len(mc)
        hit = np.zeros(len(qc), dtype=bool)
        hit[ok] = mc[pos[ok]] == qc[ok]
        out[sel] = hit
    return out


def masked_row_nnz(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    complement: bool = False,
    max_block_flop: int = DEFAULT_MAX_BLOCK_FLOP,
) -> np.ndarray:
    """Exact per-row ``nnz`` of the masked product ``(A B) .* M``.

    The mask gates by *output coordinate*, so the count is the number of
    distinct expanded coordinates that are stored (resp. absent, with
    ``complement``) in the mask.  Drives the perfmodel's fusion accounting
    (saved materialization and sort volume).
    """
    out = np.zeros(a.nrows, dtype=INDPTR_DTYPE)
    for r0, r1 in iter_row_blocks(a, b, max_block_flop):
        rows, cols, _ = expand_rows(a, b, r0, r1, with_values=False)
        if len(rows) == 0:
            continue
        allowed = mask_membership(rows, cols, mask, r0, r1) != complement
        rows = rows[allowed]
        cols = cols[allowed]
        if len(rows) == 0:
            continue
        order = np.lexsort((cols, rows))
        r = rows[order]
        c = cols[order]
        new_run = segment_mask(r, c)
        distinct_rows = r[new_run]
        out[r0:r1] += np.bincount(distinct_rows - r0, minlength=r1 - r0)
    return out


def iter_row_blocks(
    a: CSR, b: CSR, max_block_flop: int = DEFAULT_MAX_BLOCK_FLOP
) -> Iterator[Tuple[int, int]]:
    """Yield ``(row_start, row_end)`` blocks whose expansion stays bounded.

    A single row whose flop exceeds the cap still forms its own block (the
    cap is a soft target, correctness first).
    """
    n = a.nrows
    if n == 0:
        yield 0, 0
        return
    csum = np.cumsum(flop_per_row(a, b))
    start = 0
    while start < n:
        base = csum[start - 1] if start else 0
        end = int(np.searchsorted(csum, base + max_block_flop, side="right"))
        end = max(end, start + 1)  # an oversized single row forms its own block
        end = min(end, n)
        yield start, end
        start = end


def symbolic_row_nnz(
    a: CSR, b: CSR, max_block_flop: int = DEFAULT_MAX_BLOCK_FLOP
) -> np.ndarray:
    """Exact ``nnz(c_i*)`` for every output row of ``C = A B`` (vectorized).

    Expands intermediate products block-by-block, sorts each block by
    (row, col) and counts distinct coordinates per row.  ``O(flop log flop)``
    time, ``O(max_block_flop)`` extra space.
    """
    out = np.zeros(a.nrows, dtype=INDPTR_DTYPE)
    for r0, r1 in iter_row_blocks(a, b, max_block_flop):
        rows, cols, _ = expand_rows(a, b, r0, r1, with_values=False)
        if len(rows) == 0:
            continue
        order = np.lexsort((cols, rows))
        r = rows[order]
        c = cols[order]
        new_run = segment_mask(r, c)
        distinct_rows = r[new_run]
        out[r0:r1] += np.bincount(distinct_rows - r0, minlength=r1 - r0)
    return out
