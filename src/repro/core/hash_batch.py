"""Batched (numpy-vectorized) execution of the hash-family kernels and SPA.

This is the ``engine="fast"`` implementation behind :func:`repro.spgemm`.
Instead of probing a hash table per element in Python, a whole flop-bounded
row block is processed at once:

1. **expand** — materialize every intermediate product of the block with the
   existing :func:`repro.core.symbolic.expand_rows` machinery (the classic
   ragged gather);
2. **bucket** — combine each product's output coordinate into one fused
   ``row * ncols + col`` key and stable-sort, which lands every colliding
   product in a contiguous segment (this plays the role of the scalar
   kernels' multiplicative-hash probing: same groups, vector width instead
   of slot width);
3. **reduce** — collapse each segment with an ordered ``np.add.at``
   scatter-reduction (:meth:`repro.semiring.Semiring.accumulate_segments`).
   The stable sort preserves *arrival order* inside a segment and the
   reduction applies ``add`` one value at a time in that sequence — exactly
   how the scalar kernels accumulate, float-for-float the same values
   (``reduceat`` would sum pairwise and drift by ULPs).

Output *ordering* is then emulated per algorithm so the result is
indistinguishable from the faithful kernel's:

* sorted output — ascending column (all kernels agree);
* ``hash`` / ``spa`` unsorted — **first-occurrence order**.  The scalar hash
  table extracts via its ``occupied`` list, which records keys in first
  insertion order, and SPA harvests in first-touch order: both equal the
  order each distinct column first appears in the expansion stream, which we
  recover from the stable sort for free;
* ``hashvec`` unsorted — chunk-table order.  The chunked accumulator emits
  chunks in first-touch order and keys within a chunk in insertion order.
  When no chunk overflows (the common case, detected exactly) this equals a
  lexsort by (chunk first-touch, key first-occurrence) with the chunk id
  computed by the same multiplicative hash as the scalar table; rows where
  a chunk *does* overflow are re-ordered through a real
  :class:`~repro.core.accumulators.VectorHashAccumulator`, so the emulation
  is exact in all cases.

Scratch (fused keys, gathered copies, segment flags) lives in the calling
thread's :class:`~repro.core.engine.ScratchArena` — allocated once, reused
across row blocks and across calls, mirroring the paper's §5.3.1 parallel
allocation scheme.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .accumulators import HASH_SCALE, VectorHashAccumulator, lowest_p2
from .engine import ScratchArena, get_thread_arena
from .hash_vector import lanes_for_vector_bits
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads
from .symbolic import (
    DEFAULT_MAX_BLOCK_FLOP,
    expand_rows,
    iter_row_blocks,
    segment_mask,
)

__all__ = ["batch_hash_spgemm"]

#: Algorithms this module implements (same names as the Table-1 registry).
BATCH_ALGORITHMS = ("hash", "hashvec", "spa")


def _stable_coordinate_order(
    rows: np.ndarray,
    cols: np.ndarray,
    r0: int,
    span: int,
    ncols: int,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Stable permutation grouping products by (row, col), arrival order kept.

    Uses a fused ``(row - r0) * ncols + col`` key with a single stable
    argsort when it fits in int64, falling back to a two-key lexsort
    otherwise — bitwise the same permutation either way (both sorts are
    stable over identical keys).  Shared by the batched engine and the plan
    inspector, which caches the permutation.
    """
    n = len(rows)
    if ncols and span <= (2**62) // max(ncols, 1):
        key = (
            arena.take("key", n, INDPTR_DTYPE)
            if arena is not None
            else np.empty(n, dtype=INDPTR_DTYPE)
        )
        np.subtract(rows, r0, out=key)
        key *= ncols
        key += cols
        return np.argsort(key, kind="stable")
    # fused key would overflow int64 — fall back to two-key sort
    return np.lexsort((cols, rows))


def _max_flop_per_thread(
    partition: ThreadPartition, flop: np.ndarray
) -> "list[int]":
    """Per-thread row-flop upper bound — identical to the faithful kernel's
    table sizing input (Fig. 7 l.5-8)."""
    caps = []
    for tid in range(partition.nthreads):
        cap = 0
        for s, e in partition.rows_of(tid):
            if e > s:
                cap = max(cap, int(flop[s:e].max(initial=0)))
        caps.append(cap)
    return caps


def _vhash_geometry(
    a: CSR, b: CSR, nthreads: int, partition: ThreadPartition | None, lanes: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-row ``(chunk_mask, table_capacity)`` of the faithful HashVector.

    The chunked table's shape depends on the owning thread's row-flop cap,
    so the partition must be reproduced exactly (same default call as
    :func:`repro.core.hash_spgemm.hash_spgemm`).
    """
    flop = flop_per_row(a, b)
    if partition is None:
        partition = rows_to_threads(a, b, nthreads, row_cost=flop)
    caps = _max_flop_per_thread(partition, flop)
    chunk_mask = np.zeros(a.nrows, dtype=INDEX_DTYPE)
    cap_row = np.zeros(a.nrows, dtype=INDEX_DTYPE)
    ncols_floor = max(b.ncols, 1)
    for tid in range(partition.nthreads):
        bound = min(max(caps[tid], 0), ncols_floor)
        base = lowest_p2(bound + 1)
        nchunks = lowest_p2((base + lanes - 1) // lanes)
        for s, e in partition.rows_of(tid):
            chunk_mask[s:e] = nchunks - 1
            cap_row[s:e] = caps[tid]
    return chunk_mask, cap_row


def _emulate_vhash_row(
    cols_arrival: np.ndarray, capacity: int, ncols: int, lanes: int
) -> np.ndarray:
    """Exact chunk-table extraction order for one row, via the real
    accumulator (only used for the rare rows where a chunk overflows)."""
    table = VectorHashAccumulator(capacity, ncols, lane_width=lanes)
    for col in cols_arrival.tolist():
        table.insert_symbolic(int(col))
    order_cols, _ = table.extract(sort=False)
    return order_cols


def _vhash_order(
    seg_rows: np.ndarray,
    seg_cols: np.ndarray,
    first_idx: np.ndarray,
    chunk_mask: np.ndarray,
    cap_row: np.ndarray,
    ncols: int,
    lanes: int,
) -> np.ndarray:
    """Permutation putting (row, col)-sorted segments into chunk-table order.

    Rows occupy disjoint ranges of the arrival-index space (the expansion
    enumerates rows in order), so one global lexsort keyed on
    (chunk-first-touch arrival, key arrival) realizes the per-row ordering.
    """
    masks = chunk_mask[seg_rows]
    home = (seg_cols * HASH_SCALE) & masks
    # Group by (row, home chunk), arrival order inside the group.
    grp = np.lexsort((first_idx, home, seg_rows))
    g_rows = seg_rows[grp]
    g_home = home[grp]
    g_first = first_idx[grp]
    n = len(grp)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(g_rows[1:], g_rows[:-1], out=boundary[1:])
    np.logical_or(boundary[1:], g_home[1:] != g_home[:-1], out=boundary[1:])
    g_starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(g_starts, n))
    # First-touch time of each chunk = arrival of its earliest key.
    chunk_touch = np.repeat(g_first[g_starts], sizes)
    perm_grp = np.lexsort((g_first, chunk_touch))
    perm = grp[perm_grp]

    overflow = sizes > lanes
    if overflow.any():
        # A full home chunk spills keys into neighbouring chunks, perturbing
        # both fills and first-touch order — emulate those rows exactly.
        bad_rows = np.unique(g_rows[g_starts][overflow])
        perm_rows = seg_rows[perm]
        for row in bad_rows.tolist():
            sel = np.flatnonzero(seg_rows == row)
            arrival = sel[np.argsort(first_idx[sel])]
            cols_arrival = seg_cols[arrival]
            order_cols = _emulate_vhash_row(
                cols_arrival, int(cap_row[row]), ncols, lanes
            )
            pos_of_col = {int(c): int(p) for c, p in zip(seg_cols[sel], sel)}
            emulated = np.fromiter(
                (pos_of_col[int(c)] for c in order_cols),
                dtype=perm.dtype,
                count=len(order_cols),
            )
            slot = np.flatnonzero(perm_rows == row)
            perm[slot] = emulated
    return perm


def batch_hash_spgemm(
    a: CSR,
    b: CSR,
    *,
    algorithm: str = "hash",
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
    vector_bits: int = 512,
    max_block_flop: int = DEFAULT_MAX_BLOCK_FLOP,
    arena: ScratchArena | None = None,
    tracer=None,
) -> CSR:
    """Batched ``C = A (x) B`` — bit-identical to the faithful kernel.

    Parameters mirror :func:`repro.core.hash_spgemm.hash_spgemm`;
    ``algorithm`` selects whose output conventions to reproduce
    (``"hash"``, ``"hashvec"`` or ``"spa"``).  ``stats`` receives the coarse
    ledger entries only (flop, output nnz, rows, sort volume) — per-probe
    counts exist only on the faithful engine, by design.  With a ``tracer``,
    per-block expand/bucket/reduce times accumulate into numeric/sort/stitch
    phase spans reported once at the end (like the ESC kernel).
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if algorithm not in BATCH_ALGORITHMS:
        raise ConfigError(
            f"batch engine has no implementation for {algorithm!r}; "
            f"available: {list(BATCH_ALGORITHMS)}"
        )
    sr = get_semiring(semiring)
    if partition is not None and partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )
    if arena is None:
        arena = get_thread_arena()
    nrows, ncols = a.nrows, b.ncols

    chunk_mask = cap_row = None
    lanes = lanes_for_vector_bits(vector_bits)
    if algorithm == "hashvec" and not sort_output:
        chunk_mask, cap_row = _vhash_geometry(a, b, nthreads, partition, lanes)

    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    block_cols: "list[np.ndarray]" = []
    block_vals: "list[np.ndarray]" = []
    total_flop = 0

    traced = tracer is not None
    numeric_seconds = sort_seconds = 0.0
    clock = time.perf_counter
    t0 = clock() if traced else 0.0

    for r0, r1 in iter_row_blocks(a, b, max_block_flop):
        rows, cols, factors = expand_rows(a, b, r0, r1, with_values=True)
        n = len(rows)
        if n == 0:
            continue
        total_flop += n
        vals = np.asarray(sr.mul(factors[0], factors[1]), dtype=VALUE_DTYPE)
        if traced:
            t1 = clock()
            numeric_seconds += t1 - t0

        # Stable bucketing by fused (row, col) key: collisions become
        # contiguous segments, arrival order preserved inside each.
        span = r1 - r0
        order = _stable_coordinate_order(rows, cols, r0, span, ncols, arena)
        r_s = np.take(rows, order, out=arena.take("rows_s", n, rows.dtype))
        c_s = np.take(cols, order, out=arena.take("cols_s", n, cols.dtype))
        v_s = np.take(vals, order, out=arena.take("vals_s", n, VALUE_DTYPE))
        if traced:
            t2 = clock()
            sort_seconds += t2 - t1

        new_run = segment_mask(r_s, c_s, out=arena.take("new_run", n, bool))
        starts = np.flatnonzero(new_run)

        # Strict arrival-order reduction.  ufunc.reduceat sums pairwise for
        # float accuracy, which is *not* the scalar kernels' left-to-right
        # sequence — accumulate_segments folds values one at a time.
        seg_vals = sr.accumulate_segments(v_s, new_run, starts)
        seg_cols = c_s[starts]
        seg_rows = r_s[starts]
        first_idx = order[starts]  # arrival position of each distinct key
        row_nnz[r0:r1] += np.bincount(seg_rows - r0, minlength=span)
        if traced:
            t3 = clock()
            numeric_seconds += t3 - t2

        if sort_output:
            pass  # segments are already in ascending (row, col) order
        elif algorithm in ("hash", "spa"):
            # First-occurrence order; rows are disjoint in arrival space, so
            # a single argsort is simultaneously row-major and per-row exact.
            reorder = np.argsort(first_idx)
            seg_cols = seg_cols[reorder]
            seg_vals = seg_vals[reorder]
        else:  # hashvec
            reorder = _vhash_order(
                seg_rows, seg_cols, first_idx, chunk_mask, cap_row, ncols, lanes
            )
            seg_cols = seg_cols[reorder]
            seg_vals = seg_vals[reorder]

        block_cols.append(np.ascontiguousarray(seg_cols, dtype=INDEX_DTYPE))
        block_vals.append(np.ascontiguousarray(seg_vals, dtype=VALUE_DTYPE))
        if traced:
            t0 = clock()
            sort_seconds += t0 - t3

    if traced:
        t4 = clock()
    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    nnz_total = int(indptr[-1])
    out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
    out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
    cursor = 0
    for bc, bv in zip(block_cols, block_vals):
        out_indices[cursor : cursor + len(bc)] = bc
        out_data[cursor : cursor + len(bv)] = bv
        cursor += len(bc)
    if traced:
        tracer.record(
            "expand+reduce", numeric_seconds, phase="numeric", what="expand/mul/reduce"
        )
        tracer.record(
            "bucket", sort_seconds, phase="sort", what="stable coordinate order"
        )
        tracer.record("assemble", clock() - t4, phase="stitch", what="block assembly")

    if stats is not None:
        stats.flops += total_flop
        stats.output_nnz += nnz_total
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += nnz_total

    return CSR(
        (nrows, ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )
