"""Uniform SpGEMM entry point and the algorithm registry (Table 1).

:func:`spgemm` is the public one-call API: pick an algorithm by name (or let
the Table-4 recipe pick), and the dispatcher handles each kernel's input
requirements (e.g. sorting B for the Heap kernel) and output conventions.

The registry :data:`ALGORITHMS` is the executable form of the paper's
Table 1 ("Summary of SpGEMM codes studied in this paper").
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigError
from ..matrix.csr import CSR
from ..semiring import Semiring
from .blocked_spa import blocked_spa_spgemm
from .engine import (
    FAITHFUL_ONLY_ALGORITHMS,
    FAST_ALGORITHMS,
    VECTORIZED_ALGORITHMS,
    available_engines,
    resolve_engine,
)
from .esc_spgemm import esc_spgemm
from .hash_batch import batch_hash_spgemm
from .hash_spgemm import hash_spgemm
from .merge_spgemm import merge_spgemm
from .hash_vector import hash_vector_spgemm
from .heap_spgemm import heap_spgemm
from .instrument import KernelStats
from ..observability import tracer_from_env
from .kokkos_like import kokkos_proxy_spgemm
from .mkl_like import mkl_inspector_spgemm, mkl_proxy_spgemm
from .options import SpgemmOptions
from .scheduler import ThreadPartition
from .spa_spgemm import spa_spgemm

__all__ = [
    "AlgorithmInfo",
    "ALGORITHMS",
    "available_algorithms",
    "available_engines",
    "spgemm",
    "SpgemmOptions",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One row of Table 1, plus dispatch metadata.

    Attributes
    ----------
    name:
        Registry key.
    phases:
        1 (one-phase, output buffers grow) or 2 (symbolic + numeric).
    accumulator:
        Human-readable accumulator description (Table 1 column).
    input_sorted:
        ``"any"`` or ``"sorted"`` — what the kernel accepts.
    output_sorted:
        ``"select"`` (caller chooses), ``"sorted"``, or ``"unsorted"``.
    is_proxy:
        True for behavioural stand-ins for closed-source libraries.
    """

    name: str
    phases: int
    accumulator: str
    input_sorted: str
    output_sorted: str
    is_proxy: bool = False

    def table_row(self) -> str:
        """Format as a Table-1 style line."""
        sortedness = f"{self.input_sorted.capitalize()}/{self.output_sorted.capitalize()}"
        proxy = " (proxy)" if self.is_proxy else ""
        return (
            f"{self.name:<14s} {self.phases:^6d} {self.accumulator:<18s} "
            f"{sortedness:<18s}{proxy}"
        )


#: Executable registry mirroring Table 1 of the paper.
ALGORITHMS: "dict[str, AlgorithmInfo]" = {
    "hash": AlgorithmInfo("hash", 2, "Hash Table", "any", "select"),
    "hashvec": AlgorithmInfo("hashvec", 2, "Hash Table (vec)", "any", "select"),
    "heap": AlgorithmInfo("heap", 1, "Heap", "sorted", "sorted"),
    "spa": AlgorithmInfo("spa", 1, "Dense SPA", "any", "select"),
    "mkl": AlgorithmInfo("mkl", 2, "- (unknown)", "any", "select", is_proxy=True),
    "mkl_inspector": AlgorithmInfo(
        "mkl_inspector", 1, "- (unknown)", "any", "unsorted", is_proxy=True
    ),
    "kokkos": AlgorithmInfo(
        "kokkos", 2, "HashMap", "any", "unsorted", is_proxy=True
    ),
    "esc": AlgorithmInfo("esc", 2, "Sort+Reduce", "any", "sorted"),
    # Extensions beyond the paper's Table 1, from its related-work section:
    # column-blocked SPA (Patwary et al. 2015) and iterative row merging
    # (ViennaCL / Gremse et al. 2015).
    "blocked_spa": AlgorithmInfo("blocked_spa", 1, "Blocked SPA", "any", "sorted"),
    "merge": AlgorithmInfo("merge", 1, "Merge Tree", "sorted", "sorted"),
}


def _check_registry_coverage() -> None:
    """Fail import when the engine coverage sets drift from the registry.

    Every registered algorithm must be claimed by exactly one of
    ``FAST_ALGORITHMS`` / ``VECTORIZED_ALGORITHMS`` /
    ``FAITHFUL_ONLY_ALGORITHMS`` (see :mod:`repro.core.engine`).  The
    contract linter checks the same partition statically; this runtime
    twin makes the drift impossible to import, not just impossible to
    merge.
    """
    coverage = (FAST_ALGORITHMS, VECTORIZED_ALGORITHMS, FAITHFUL_ONLY_ALGORITHMS)
    problems = []
    registered = set(ALGORITHMS)
    claimed: "set[str]" = set()
    for cover in coverage:
        overlap = claimed & cover
        if overlap:
            problems.append(f"claimed by multiple engine sets: {sorted(overlap)}")
        claimed |= cover
    missing = registered - claimed
    if missing:
        problems.append(f"in ALGORITHMS but no engine coverage set: {sorted(missing)}")
    stale = claimed - registered
    if stale:
        problems.append(f"in an engine coverage set but unregistered: {sorted(stale)}")
    if problems:
        raise ConfigError(
            "algorithm registry / engine coverage mismatch: " + "; ".join(problems)
        )


_check_registry_coverage()


def _debug_validate_enabled() -> bool:
    """Whether ``REPRO_DEBUG_VALIDATE=1`` CSR invariant checking is on.

    Read per call (not at import) so tests and debugging sessions can
    toggle it; the lookup is two dict probes and does not perturb
    benchmarks, which only pay when the mode is enabled.
    """
    return os.environ.get("REPRO_DEBUG_VALIDATE", "") == "1"


def available_algorithms() -> "list[str]":
    """Names accepted by :func:`spgemm`, in registry order."""
    return list(ALGORITHMS)


def spgemm(a: CSR, b: CSR, opts: SpgemmOptions | None = None, **kwargs) -> CSR:
    """Compute ``C = A (x) B`` over a semiring with a selectable algorithm.

    Configuration arrives either as a ready-made
    :class:`~repro.core.options.SpgemmOptions` (``spgemm(a, b, opts)``), as
    loose keywords (``spgemm(a, b, algorithm="hash", engine="fast")``), or
    both — keywords override the options object's fields.  Everything is
    canonicalized through :meth:`SpgemmOptions.from_kwargs`, which is the
    single place configuration is validated: unknown ``algorithm`` /
    ``engine`` / ``vector_bits`` values raise
    :class:`~repro.errors.ConfigError` listing the valid choices.

    Options
    -------
    algorithm:
        One of :func:`available_algorithms`, or ``"auto"`` to apply the
        paper's Table-4 recipe (:func:`repro.core.recipe.recommend`).
    semiring, sort_output, nthreads, partition, stats:
        Forwarded to the kernel (see :func:`repro.core.hash_spgemm.hash_spgemm`).
    vector_bits:
        Simulated register width for ``hashvec`` (512 = KNL, 256 = Haswell).
    engine:
        ``"faithful"`` (default) runs the scalar instrumented kernels;
        ``"fast"`` runs the batched numpy implementation
        (:mod:`repro.core.hash_batch`) for the hash family and SPA —
        bit-for-bit identical output at numpy speed.  Algorithms without a
        batched implementation fall back to the faithful kernel (see
        :func:`repro.core.engine.resolve_engine`).
    plan:
        A pre-built :class:`~repro.core.plan.SpgemmPlan` (from
        :func:`repro.core.plan.inspect`): the multiplication replays the
        cached structure numeric-only.  The operands must match the
        inspected sparsity patterns (:class:`~repro.errors.PlanError`
        otherwise).
    plan_cache:
        A :class:`~repro.core.plan.PlanCache`: plans are looked up by the
        operands' structure fingerprints, inspected on miss and replayed on
        hit — the drop-in way to make iterative workloads (AMG, Markov,
        BFS) numeric-only after their first iteration.

    Notes
    -----
    Kernels with fixed output conventions override ``sort_output``:
    ``heap``/``esc`` always return sorted rows; ``mkl_inspector``/``kokkos``
    always return unsorted rows.  The Heap kernel needs sorted B; the
    dispatcher sorts a copy transparently when needed (charging that cost is
    the perfmodel's job, mirroring the paper's fairness argument that
    sorted-input algorithms must emit sorted output).

    With ``REPRO_DEBUG_VALIDATE=1`` in the environment, the full CSR
    invariant suite (monotone indptr, index bounds, sorted-flag
    truthfulness, duplicate detection) runs on both operands at entry and
    on the result at exit — off by default so benchmarks are unaffected.

    With a ``tracer`` (explicit or via ``REPRO_TRACE``), the dispatch and
    every phase seam below it open spans — see ``docs/observability.md``.
    """
    options = SpgemmOptions.from_kwargs(opts, **kwargs)
    if options.tracer is None:
        env_tracer = tracer_from_env()
        if env_tracer is not None:
            options = options.replace(tracer=env_tracer)
    debug_validate = _debug_validate_enabled()
    if debug_validate:
        a.validate()
        b.validate()
    if options.plan is not None:
        c = options.plan.execute(
            a, b, semiring=options.semiring, stats=options.stats,
            tracer=options.tracer,
        )
    elif options.plan_cache is not None:
        c = options.plan_cache.execute(a, b, options)
    else:
        c = _spgemm_resolved(a, b, options)
    if debug_validate:
        c.validate()
    return c


def _spgemm_resolved(a: CSR, b: CSR, options: SpgemmOptions) -> CSR:
    """Plan-free dispatch: resolve ``auto`` + engine, then run the kernel.

    Also the fallback the :class:`~repro.core.plan.PlanCache` uses for
    plan-less algorithms, which is why it is factored out of :func:`spgemm`.
    """
    algorithm = options.algorithm
    observe = None
    if algorithm == "auto":
        # Calibrated selection when a profile is active (explicit on the
        # options, or ambient); the static Table-4 recommend otherwise —
        # resolve_auto's profile-absent path is exactly that call.
        from ..autotune import resolve_auto  # deferred: autotune imports core

        algorithm, observe = resolve_auto(
            a, b, sort_output=options.sort_output,
            profile=options.calibration,
        )
    engine = resolve_engine(options.engine, algorithm)
    tracer = options.tracer
    if tracer is None:
        t0 = time.perf_counter() if observe is not None else 0.0
        c = _dispatch_kernel(
            algorithm, a, b, engine=engine, semiring=options.semiring,
            sort_output=options.sort_output, nthreads=options.nthreads,
            partition=options.partition, stats=options.stats,
            vector_bits=options.vector_bits, tracer=None,
        )
        if observe is not None:
            observe(time.perf_counter() - t0)
        return c
    stats = options.stats
    t0 = time.perf_counter() if observe is not None else 0.0
    with tracer.span(
        "spgemm", phase="other",
        algorithm=algorithm, engine=engine,
        nrows=a.nrows, ncols=b.ncols, nthreads=options.nthreads,
    ) as root:
        before = stats.scalar_snapshot() if stats is not None else None
        c = _dispatch_kernel(
            algorithm, a, b, engine=engine, semiring=options.semiring,
            sort_output=options.sort_output, nthreads=options.nthreads,
            partition=options.partition, stats=stats,
            vector_bits=options.vector_bits, tracer=tracer,
        )
        root.add_counter("nnz", float(c.nnz))
        if stats is not None:
            # Counters and spans in one report: the KernelStats delta of
            # this call lands on the root span, and the traced phase times
            # flow back into the stats' *_seconds counters.
            for key, value in stats.scalar_snapshot().items():
                delta = value - before[key]
                if delta:
                    root.add_counter(key, delta)
            _phase_seconds_into_stats(root, stats)
    if observe is not None:
        observe(time.perf_counter() - t0)
    return c


#: Traced phases mirrored into KernelStats wall-time counters.
_PHASE_STAT_FIELDS = {
    "symbolic": "symbolic_seconds",
    "numeric": "numeric_seconds",
    "sort": "sort_seconds",
}


def _phase_seconds_into_stats(root, stats: KernelStats) -> None:
    """Fold a finished span tree's phase times into the stats collector."""
    for span in root.walk():
        attr = _PHASE_STAT_FIELDS.get(span.phase)
        if attr is not None:
            setattr(stats, attr, getattr(stats, attr) + span.exclusive_seconds())


def _dispatch_kernel(
    algorithm: str,
    a: CSR,
    b: CSR,
    *,
    engine: str,
    semiring: "str | Semiring",
    sort_output: bool,
    nthreads: int,
    partition: ThreadPartition | None,
    stats: KernelStats | None,
    vector_bits: int,
    tracer=None,
) -> CSR:
    """Route one (algorithm, engine) pair to its kernel (resolved inputs)."""
    if engine == "fast" and algorithm in ("hash", "hashvec", "spa"):
        return batch_hash_spgemm(
            a, b, algorithm=algorithm, semiring=semiring,
            sort_output=sort_output, nthreads=nthreads, partition=partition,
            stats=stats, vector_bits=vector_bits, tracer=tracer,
        )

    if algorithm == "hash":
        return hash_spgemm(
            a, b, semiring=semiring, sort_output=sort_output,
            nthreads=nthreads, partition=partition, stats=stats,
            tracer=tracer,
        )
    if algorithm == "hashvec":
        return hash_vector_spgemm(
            a, b, semiring=semiring, sort_output=sort_output,
            nthreads=nthreads, partition=partition, stats=stats,
            vector_bits=vector_bits, tracer=tracer,
        )
    if algorithm == "heap":
        if b.sorted_rows:
            b_sorted = b
        elif tracer is None:
            b_sorted = b.sort_rows()
        else:
            with tracer.span("sort_b", phase="sort", reason="heap needs sorted B"):
                b_sorted = b.sort_rows()
        return heap_spgemm(
            a, b_sorted, semiring=semiring, sort_output=True,
            nthreads=nthreads, partition=partition, stats=stats,
            tracer=tracer,
        )
    if algorithm == "spa":
        return spa_spgemm(
            a, b, semiring=semiring, sort_output=sort_output,
            nthreads=nthreads, partition=partition, stats=stats,
            tracer=tracer,
        )
    if algorithm == "mkl":
        return mkl_proxy_spgemm(
            a, b, semiring=semiring, sort_output=sort_output,
            nthreads=nthreads, partition=partition, stats=stats,
        )
    if algorithm == "mkl_inspector":
        return mkl_inspector_spgemm(
            a, b, semiring=semiring,
            nthreads=nthreads, partition=partition, stats=stats,
        )
    if algorithm == "kokkos":
        return kokkos_proxy_spgemm(
            a, b, semiring=semiring,
            nthreads=nthreads, partition=partition, stats=stats,
        )
    if algorithm == "esc":
        return esc_spgemm(
            a, b, semiring=semiring, sort_output=True, stats=stats,
            tracer=tracer,
        )
    if algorithm == "blocked_spa":
        return blocked_spa_spgemm(
            a, b, semiring=semiring, sort_output=True,
            nthreads=nthreads, partition=partition, stats=stats,
        )
    if algorithm == "merge":
        b_sorted = b if b.sorted_rows else b.sort_rows()
        return merge_spgemm(
            a, b_sorted, semiring=semiring, sort_output=True,
            nthreads=nthreads, partition=partition, stats=stats,
        )
    raise AssertionError(f"registry/dispatch mismatch for {algorithm!r}")
