"""The paper's recipe: which SpGEMM algorithm for which scenario (§4.2.4, §5.7).

Two layers:

* **Theoretical cost formulas** — Eq. (1) and Eq. (2) of the paper:

  .. math::

     T_{heap} = \\sum_i flop(c_{i*}) \\cdot \\log_2 nnz(a_{i*})

     T_{hash} = flop \\cdot c + \\sum_i nnz(c_{i*}) \\cdot \\log_2 nnz(c_{i*})

  (the hash sort term applies only when sorted output is required).  These
  predict that Hash wins when ``nnz(c_i*)`` or the compression ratio
  ``flop/nnz(C)`` is large, Heap when the output is very sparse.

* **The empirical Table-4 recipe** — the decision table the paper distills
  from its evaluation, keyed on data kind (real vs synthetic), compression
  ratio, edge factor, skew, operation and sortedness.

:func:`recommend` applies Table 4; :func:`heap_cost_model` /
:func:`hash_cost_model` expose the formulas so users can see *why* (and so
tests can check the recipe agrees with the theory where the paper says it
does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..matrix.csr import CSR
from ..matrix.stats import flop_per_row, row_skew
from .symbolic import symbolic_row_nnz

__all__ = [
    "heap_cost_model",
    "hash_cost_model",
    "RecipeDecision",
    "RECIPE_EXCLUDED",
    "AUTOTUNE_ONLY",
    "recommend",
    "recipe_table",
]

#: Registered algorithms no selector may ever pick, with why.  The paper's
#: recipe only names the per-scenario *winners* of its evaluation (hash,
#: hashvec, heap, mkl_inspector); ``mkl``/``kokkos`` are behavioural proxies
#: evaluated as comparators — selecting a proxy in production makes no sense
#: when native kernels exist (``mkl_inspector`` is the single exception
#: Table 4(a) names, because unsorted inspector-executor output is a mode
#: the native kernels expose directly).
#:
#: The contract linter (rule ``kernel-dispatch``) enforces that every
#: registered algorithm is recommendable by :func:`recommend`, listed here,
#: or listed in :data:`AUTOTUNE_ONLY` — adding a kernel forces this decision
#: explicitly.
RECIPE_EXCLUDED = frozenset({
    "mkl",
    "kokkos",
})

#: Algorithms the static Table-4 recipe never names but the *calibrated*
#: selector (``repro.autotune``) may pick when measured curves favour them:
#:
#: * ``spa``/``blocked_spa`` — dense-accumulator baselines; dominated by the
#:   hash family on the paper's machines (cache-residency cliff, Fig. 12)
#:   but competitive on small/dense problems other hosts may see;
#: * ``esc`` — distributed/GPU-lineage kernel studied for SUMMA node-local
#:   use (§5.7), outside Table 4's shared-memory scope;
#: * ``merge`` — related-work extension (Gremse et al.), not in the paper's
#:   evaluation at all.
AUTOTUNE_ONLY = frozenset({
    "spa",
    "blocked_spa",
    "esc",
    "merge",
})

#: Table 4(a)'s compression-ratio threshold separating "high" from "low".
HIGH_CR_THRESHOLD = 2.0
#: Table 4(b)'s edge-factor threshold separating "sparse" from "dense".
DENSE_EF_THRESHOLD = 8.0
#: Row-skew (max/mean nnz) above which we classify a matrix as "skewed"
#: (G500-like power-law rather than ER-like uniform).
SKEW_THRESHOLD = 4.0


def _safe_log2(x: np.ndarray) -> np.ndarray:
    """log2 clamped below at 1 (a 1-element heap still costs a comparison)."""
    return np.log2(np.maximum(x, 2.0))


def heap_cost_model(a: CSR, b: CSR) -> float:
    """Eq. (1): ``T_heap = sum_i flop(c_i*) * log2 nnz(a_i*)`` (abstract ops).

    A degenerate product (either operand empty, or no ``a``-column ever
    hitting a populated ``b`` row) performs zero multiplications, so its
    abstract cost is exactly 0.0 — guarded explicitly rather than relying
    on empty-array reductions.
    """
    if a.nnz == 0 or b.nnz == 0:
        return 0.0
    flop = flop_per_row(a, b).astype(np.float64)
    return float((flop * _safe_log2(a.row_nnz().astype(np.float64))).sum())


def hash_cost_model(
    a: CSR,
    b: CSR,
    *,
    sort_output: bool = True,
    collision_factor: float = 1.5,
    nnz_c_rows: np.ndarray | None = None,
) -> float:
    """Eq. (2): ``T_hash = flop * c + sum_i nnz(c_i*) * log2 nnz(c_i*)``.

    The sort term is included only when ``sort_output`` — the paper's
    headline observation is how much skipping it saves.  ``collision_factor``
    is the paper's ``c`` (average probes per table access; 1.0 = no
    collisions).  ``nnz_c_rows`` may be supplied when already computed.

    Degenerate products cost exactly 0.0 (see :func:`heap_cost_model`).
    """
    if a.nnz == 0 or b.nnz == 0:
        return 0.0
    flop = flop_per_row(a, b).astype(np.float64)
    cost = float(flop.sum()) * collision_factor
    if sort_output:
        if nnz_c_rows is None:
            nnz_c_rows = symbolic_row_nnz(a, b)
        nc = nnz_c_rows.astype(np.float64)
        cost += float((nc * _safe_log2(nc)).sum())
    return cost


@dataclass(frozen=True)
class RecipeDecision:
    """The recipe's verdict plus the features it keyed on."""

    algorithm: str
    reason: str
    compression_ratio: float
    edge_factor: float
    skew: float
    sorted_output: bool


def recommend(
    a: CSR,
    b: CSR | None = None,
    *,
    sort_output: bool = True,
    operation: str = "square",
    synthetic: bool = False,
) -> RecipeDecision:
    """Apply Table 4 to pick an algorithm for ``C = A B``.

    Parameters
    ----------
    operation:
        ``"square"`` (A×A), ``"lxu"`` (triangle counting L×U) or
        ``"tallskinny"`` (square × tall-skinny).
    synthetic:
        Use Table 4(b) — the synthetic-data rules keyed on edge factor and
        skew — instead of Table 4(a)'s compression-ratio rules.  Real-world
        callers normally leave this False.
    """
    if b is None:
        b = a
    nnz_c = symbolic_row_nnz(a, b)
    total_nnz_c = int(nnz_c.sum())
    flop = int(flop_per_row(a, b).sum())
    cr = flop / total_nnz_c if total_nnz_c else 0.0
    ef = a.nnz / a.nrows if a.nrows else 0.0
    skew = row_skew(a)

    def decision(algorithm: str, reason: str) -> RecipeDecision:
        return RecipeDecision(
            algorithm=algorithm,
            reason=reason,
            compression_ratio=cr,
            edge_factor=ef,
            skew=skew,
            sorted_output=sort_output,
        )

    # Degenerate product: zero multiplications means the compression ratio
    # flop/nnz(C) is 0/0 and every cost model prices every algorithm at 0.
    # Rather than let a vacuous "low CR" classification steer the table
    # (e.g. LxU would claim Heap on an empty product), name the case: Hash
    # handles every shape — including 0-row/0-column operands — and is what
    # every branch of Table 4(a) falls back to anyway.  The calibrated
    # selector (repro.autotune) delegates degenerate inputs here untouched.
    if flop == 0:
        return decision("hash", "degenerate: zero-flop product (empty C)")

    if operation == "lxu":
        # Table 4(a), L x U row: Heap for low CR, Hash for high CR.
        if cr <= HIGH_CR_THRESHOLD:
            return decision("heap", "Table 4(a): LxU with low compression ratio")
        return decision("hash", "Table 4(a): LxU with high compression ratio")

    if operation == "tallskinny":
        # Table 4(b) TallSkinny rows: Hash everywhere except dense+skewed
        # sorted, where HashVector wins.
        if sort_output and ef > DENSE_EF_THRESHOLD and skew > SKEW_THRESHOLD:
            return decision("hashvec", "Table 4(b): tall-skinny, dense skewed, sorted")
        return decision("hash", "Table 4(b): tall-skinny")

    if synthetic:
        dense = ef > DENSE_EF_THRESHOLD
        skewed = skew > SKEW_THRESHOLD
        if sort_output:
            if dense and skewed:
                return decision("hash", "Table 4(b): AxA sorted, dense skewed")
            return decision("heap", "Table 4(b): AxA sorted, sparse or uniform")
        if dense and skewed:
            return decision("hash", "Table 4(b): AxA unsorted, dense skewed")
        return decision("hashvec", "Table 4(b): AxA unsorted")

    # Table 4(a): real data, keyed on compression ratio.
    if sort_output:
        return decision("hash", "Table 4(a): AxA sorted (Hash for any CR)")
    if cr > HIGH_CR_THRESHOLD:
        return decision(
            "mkl_inspector", "Table 4(a): AxA unsorted, high compression ratio"
        )
    return decision("hash", "Table 4(a): AxA unsorted, low compression ratio")


def recipe_table() -> str:
    """Render Table 4 as text (both halves), for docs and the bench output."""
    lines = [
        "Table 4(a) — real data, by compression ratio (CR)",
        "                      High CR (>2)     Low CR (<=2)",
        "  AxA  sorted         Hash              Hash",
        "       unsorted       MKL-inspector     Hash",
        "  LxU  sorted         Hash              Heap",
        "",
        "Table 4(b) — synthetic data, by edge factor (EF) and pattern",
        "                      Sparse (EF<=8)        Dense (EF>8)",
        "                      Uniform   Skewed      Uniform   Skewed",
        "  AxA        sorted   Heap      Heap        Heap      Hash",
        "             unsorted HashVec   HashVec     HashVec   Hash",
        "  TallSkinny sorted   -         Hash        -         HashVec",
        "             unsorted -         Hash        -         Hash",
    ]
    return "\n".join(lines)
