"""The paper's primary contribution: optimized row-wise SpGEMM kernels.

Executable algorithms (all validated against a dense oracle):

* :mod:`repro.core.hash_spgemm` — two-phase hash-table SpGEMM (§4.2.1);
* :mod:`repro.core.hash_vector` — vector-register (chunked) hash probing
  (§4.2.2);
* :mod:`repro.core.heap_spgemm` — one-phase heap (k-way merge) SpGEMM
  (§4.2.3);
* :mod:`repro.core.spa_spgemm` — Gustavson dense sparse-accumulator SpGEMM;
* :mod:`repro.core.mkl_like` — behavioural proxies for Intel MKL and
  MKL-inspector (closed-source baselines of the paper);
* :mod:`repro.core.kokkos_like` — behavioural proxy for KokkosKernels'
  two-level hashmap (`kkmem`);
* :mod:`repro.core.esc_spgemm` — fully vectorized expand-sort-compress
  SpGEMM used as the fast oracle at scale.

Shared machinery:

* :mod:`repro.core.scheduler` — the paper's light-weight load-balanced
  thread assignment (Fig. 6) plus static/dynamic/guided models;
* :mod:`repro.core.symbolic` — vectorized symbolic phase (exact per-row
  ``nnz(C)``) and expansion helpers;
* :mod:`repro.core.accumulators` — reusable hash-table / heap / SPA
  accumulator objects with operation instrumentation;
* :mod:`repro.core.spgemm` — uniform entry point and algorithm registry
  (Table 1);
* :mod:`repro.core.recipe` — the Table-4 recipe and the Eq. (1)/(2) cost
  formulas behind it.
"""

from .spgemm import (
    ALGORITHMS,
    AlgorithmInfo,
    available_algorithms,
    available_engines,
    spgemm,
)
from .engine import ENGINES, EngineInfo, ScratchArena, get_thread_arena
from .hash_batch import batch_hash_spgemm
from .options import ChainOptions, SpgemmOptions, options_from_wire
from .plan import (
    PLAN_ALGORITHMS,
    PLANLESS_ALGORITHMS,
    MaskedSpgemmPlan,
    PlanCache,
    SpgemmPlan,
    inspect,
    inspect_masked,
    structure_fingerprint,
)
from .scheduler import (
    ThreadPartition,
    rows_to_threads,
    static_partition,
    dynamic_assignment,
    guided_assignment,
    lowbnd,
)
from .symbolic import symbolic_row_nnz, expand_rows
from .chain import ChainPlan, StagePlan, multiply_chain, plan_chain
from .masked import masked_spgemm
from .recipe import recommend, RecipeDecision, heap_cost_model, hash_cost_model
from .instrument import KernelStats

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "available_algorithms",
    "available_engines",
    "ENGINES",
    "EngineInfo",
    "ScratchArena",
    "get_thread_arena",
    "batch_hash_spgemm",
    "spgemm",
    "SpgemmOptions",
    "ChainOptions",
    "options_from_wire",
    "SpgemmPlan",
    "MaskedSpgemmPlan",
    "PlanCache",
    "PLAN_ALGORITHMS",
    "PLANLESS_ALGORITHMS",
    "inspect",
    "inspect_masked",
    "structure_fingerprint",
    "ThreadPartition",
    "rows_to_threads",
    "static_partition",
    "dynamic_assignment",
    "guided_assignment",
    "lowbnd",
    "symbolic_row_nnz",
    "expand_rows",
    "ChainPlan",
    "StagePlan",
    "multiply_chain",
    "plan_chain",
    "masked_spgemm",
    "recommend",
    "RecipeDecision",
    "heap_cost_model",
    "hash_cost_model",
    "KernelStats",
]
