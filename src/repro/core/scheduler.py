"""Thread scheduling: the paper's light-weight load-balanced row assignment.

§4.1 / Fig. 6 of the paper: count flop per row, parallel prefix sum, then
each thread binary-searches (``lowbnd``) the prefix array for its start row,
so every thread owns a contiguous row range with ~equal flop.  This module
implements that ("balanced") partition plus the three OpenMP policies the
paper compares against:

* ``static`` — equal *row counts* per thread (what ``schedule(static)``
  does for a row-parallel loop);
* ``dynamic`` — rows handed out in chunks from a shared queue; we *simulate*
  the assignment deterministically (greedy: next chunk goes to the earliest-
  finishing thread) so the resulting per-thread load can be fed to the
  machine model;
* ``guided`` — like dynamic but with geometrically shrinking chunks.

All partitions are returned as a :class:`ThreadPartition` so downstream code
(kernels, perfmodel) treats them uniformly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row

__all__ = [
    "ThreadPartition",
    "lowbnd",
    "rows_to_threads",
    "static_partition",
    "dynamic_assignment",
    "guided_assignment",
    "partition_for_policy",
]


def lowbnd(vec: np.ndarray, value: float) -> int:
    """Minimum index ``id`` such that ``vec[id] >= value`` (Fig. 6, line 14).

    ``vec`` must be non-decreasing.  Returns ``len(vec)`` when every element
    is smaller than ``value``.
    """
    return int(np.searchsorted(vec, value, side="left"))


@dataclass(frozen=True)
class ThreadPartition:
    """Assignment of output rows to threads.

    Attributes
    ----------
    policy:
        One of ``"balanced"``, ``"static"``, ``"dynamic"``, ``"guided"``.
    nthreads:
        Number of threads.
    offsets:
        For contiguous policies (balanced/static): array of length
        ``nthreads + 1``; thread ``t`` owns rows
        ``[offsets[t], offsets[t+1])``.  ``None`` for chunked policies.
    chunks:
        For dynamic/guided: list of ``(row_start, row_end, thread)`` triples
        in hand-out order.  ``None`` for contiguous policies.
    row_cost:
        The per-row cost array the partition balanced against (flop for
        ``balanced``, implicit 1s otherwise).
    """

    policy: str
    nthreads: int
    offsets: np.ndarray | None = None
    chunks: "list[tuple[int, int, int]] | None" = None
    row_cost: np.ndarray | None = None

    @property
    def nrows(self) -> int:
        if self.offsets is not None:
            return int(self.offsets[-1])
        return max((e for _, e, _ in self.chunks), default=0)

    def rows_of(self, thread: int) -> "list[tuple[int, int]]":
        """Row ranges owned by ``thread`` (a single range for contiguous
        policies, possibly many for chunked ones)."""
        if self.offsets is not None:
            return [(int(self.offsets[thread]), int(self.offsets[thread + 1]))]
        return [(s, e) for s, e, t in self.chunks if t == thread]

    def thread_loads(self, row_cost: np.ndarray) -> np.ndarray:
        """Total ``row_cost`` assigned to each thread.

        This is the quantity the makespan model maximizes over; using the
        *actual* partition makes simulated load imbalance exact rather than
        modeled.
        """
        csum = np.concatenate([[0], np.cumsum(row_cost)])
        loads = np.zeros(self.nthreads, dtype=VALUE_DTYPE)
        if self.offsets is not None:
            loads[:] = csum[self.offsets[1:]] - csum[self.offsets[:-1]]
        else:
            for s, e, t in self.chunks:
                loads[t] += csum[e] - csum[s]
        return loads

    def num_dispatches(self) -> int:
        """How many scheduler hand-offs occurred (1 per thread for contiguous
        policies; one per chunk for dynamic/guided).  Drives the scheduling-
        overhead term of the machine model (Fig. 2)."""
        if self.offsets is not None:
            return self.nthreads
        return len(self.chunks)

    def validate(self, nrows: "int | None" = None) -> None:
        """Check the partition covers rows ``[0, nrows)`` exactly once.

        ``nrows`` defaults to the partition's own row count (so an
        internally consistent partition always validates); pass the
        matrix's row count to additionally assert full coverage — a
        contiguous partition whose last offset stops short of ``nrows``
        silently drops trailing rows, which is exactly the bug this check
        exists to reject.
        """
        n = self.nrows if nrows is None else int(nrows)
        if self.offsets is not None:
            if len(self.offsets) != self.nthreads + 1:
                raise ConfigError(
                    f"partition has {len(self.offsets)} offsets for "
                    f"{self.nthreads} threads; expected nthreads + 1"
                )
            if self.offsets[0] != 0:
                raise ConfigError("partition must start at row 0")
            if (np.diff(self.offsets) < 0).any():
                raise ConfigError("partition offsets must be non-decreasing")
            if (self.offsets < 0).any() or (self.offsets > n).any():
                raise ConfigError(
                    f"partition offsets must lie in [0, {n}]; got "
                    f"[{int(self.offsets.min())}, {int(self.offsets.max())}]"
                )
            if int(self.offsets[-1]) != n:
                raise ConfigError(
                    f"partition covers rows [0, {int(self.offsets[-1])}) of "
                    f"{n}; trailing rows would be dropped"
                )
            return
        covered = np.zeros(n, dtype=INDEX_DTYPE)
        for s, e, t in self.chunks:
            if not (0 <= t < self.nthreads):
                raise ConfigError(f"chunk assigned to invalid thread {t}")
            if not (0 <= s <= e <= n):
                raise ConfigError(
                    f"chunk [{s}, {e}) out of range for {n} rows"
                )
            covered[s:e] += 1
        if (covered != 1).any():
            raise ConfigError("chunked partition does not cover rows exactly once")


def _check_threads(nthreads: int) -> None:
    if nthreads < 1:
        raise ConfigError(f"nthreads must be >= 1, got {nthreads}")


def rows_to_threads(
    a: CSR, b: CSR, nthreads: int, *, row_cost: np.ndarray | None = None
) -> ThreadPartition:
    """The paper's ``RowsToThreads`` (Fig. 6): flop-balanced contiguous split.

    1. compute flop per row (vectorized);
    2. prefix-sum;
    3. thread ``tid`` starts at ``lowbnd(flopps, aveflop * tid)``.

    ``row_cost`` overrides the flop vector (the Heap kernel balances on the
    same flop estimate, §4.2.3).
    """
    _check_threads(nthreads)
    cost = flop_per_row(a, b) if row_cost is None else np.asarray(row_cost)
    flopps = np.cumsum(cost)
    total = int(flopps[-1]) if len(flopps) else 0
    if total == 0:
        # Zero-flop degeneracy (e.g. B has empty rows wherever A is
        # nonzero): ave == 0 would make every lowbnd return 0 and the last
        # thread would own *all* rows.  Fall back to an even row split —
        # with no flop to balance, row count is the only load proxy left.
        offsets = np.linspace(0, a.nrows, nthreads + 1).astype(INDPTR_DTYPE)
        return ThreadPartition(
            policy="balanced",
            nthreads=nthreads,
            offsets=offsets,
            row_cost=cost,
        )
    ave = total / nthreads
    offsets = np.zeros(nthreads + 1, dtype=INDPTR_DTYPE)
    for tid in range(1, nthreads):
        offsets[tid] = lowbnd(flopps, ave * tid)
    offsets[nthreads] = a.nrows
    # Guard against empty middle threads on degenerate inputs: offsets must
    # be monotone, which lowbnd guarantees since flopps is non-decreasing.
    return ThreadPartition(
        policy="balanced",
        nthreads=nthreads,
        offsets=offsets,
        row_cost=cost,
    )


def static_partition(nrows: int, nthreads: int) -> ThreadPartition:
    """OpenMP ``schedule(static)``: equal row counts, contiguous."""
    _check_threads(nthreads)
    offsets = np.linspace(0, nrows, nthreads + 1).astype(INDPTR_DTYPE)
    return ThreadPartition(policy="static", nthreads=nthreads, offsets=offsets)


def dynamic_assignment(
    row_cost: np.ndarray, nthreads: int, *, chunk: int = 1
) -> ThreadPartition:
    """Deterministic simulation of ``schedule(dynamic, chunk)``.

    Chunks of ``chunk`` consecutive rows are handed, in order, to the thread
    that becomes idle first (greedy list scheduling — the behaviour an OpenMP
    dynamic loop converges to when per-chunk costs dominate).
    """
    _check_threads(nthreads)
    if chunk < 1:
        raise ConfigError(f"chunk must be >= 1, got {chunk}")
    n = len(row_cost)
    csum = np.concatenate([[0], np.cumsum(row_cost)])
    heap = [(0.0, t) for t in range(nthreads)]
    heapq.heapify(heap)
    chunks: "list[tuple[int, int, int]]" = []
    for s in range(0, n, chunk):
        e = min(s + chunk, n)
        load, t = heapq.heappop(heap)
        chunks.append((s, e, t))
        heapq.heappush(heap, (load + float(csum[e] - csum[s]), t))
    return ThreadPartition(
        policy="dynamic",
        nthreads=nthreads,
        chunks=chunks,
        row_cost=np.asarray(row_cost),
    )


def guided_assignment(
    row_cost: np.ndarray, nthreads: int, *, min_chunk: int = 1
) -> ThreadPartition:
    """Deterministic simulation of ``schedule(guided)``.

    Each hand-out takes ``max(remaining / nthreads, min_chunk)`` rows — the
    geometric shrink OpenMP's guided schedule uses — and goes to the
    earliest-idle thread.
    """
    _check_threads(nthreads)
    n = len(row_cost)
    csum = np.concatenate([[0], np.cumsum(row_cost)])
    heap = [(0.0, t) for t in range(nthreads)]
    heapq.heapify(heap)
    chunks: "list[tuple[int, int, int]]" = []
    s = 0
    while s < n:
        size = max((n - s) // nthreads, min_chunk)
        e = min(s + size, n)
        load, t = heapq.heappop(heap)
        chunks.append((s, e, t))
        heapq.heappush(heap, (load + float(csum[e] - csum[s]), t))
        s = e
    return ThreadPartition(
        policy="guided",
        nthreads=nthreads,
        chunks=chunks,
        row_cost=np.asarray(row_cost),
    )


def partition_for_policy(
    policy: str,
    a: CSR,
    b: CSR,
    nthreads: int,
    *,
    chunk: int = 1,
) -> ThreadPartition:
    """Build a partition of ``a @ b``'s output rows under any policy."""
    if policy == "balanced":
        return rows_to_threads(a, b, nthreads)
    if policy == "static":
        return static_partition(a.nrows, nthreads)
    if policy == "dynamic":
        return dynamic_assignment(flop_per_row(a, b), nthreads, chunk=chunk)
    if policy == "guided":
        return guided_assignment(flop_per_row(a, b), nthreads, min_chunk=chunk)
    raise ConfigError(
        f"unknown scheduling policy {policy!r}; "
        "expected balanced/static/dynamic/guided"
    )
