"""Heap SpGEMM — one-phase k-way merge with a priority queue (§4.2.3).

For each output row ``c_i*`` a heap of size ``nnz(a_i*)`` is built: for every
nonzero ``a_ik`` the first nonzero of ``b_k*`` enters the heap keyed by its
column index.  The minimum-column entry is repeatedly extracted, accumulated
into the current output entry (equal columns merge), and replaced by the next
nonzero from the same row of B.  Output rows are produced already sorted.

Properties (Table 1): one phase, requires **sorted** inputs, emits **sorted**
output.  Space per row is ``O(nnz(a_i*))`` — the most frugal accumulator —
but every extract costs ``log nnz(a_i*)``, giving the Eq. (1) cost
``T_heap = Σ_i flop(c_i*) · log nnz(a_i*)``.

Being one-phase, the kernel cannot pre-size the output; per-thread result
buffers grow dynamically and are concatenated at the end — the "larger
memory usage for temporally keeping the output" the paper manages with
its thread-private ("parallel") allocation scheme.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row
from ..observability import NULL_TRACER
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["heap_spgemm"]


def heap_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
    tracer=None,
) -> CSR:
    """Multiply two *row-sorted* CSR matrices via per-row k-way heap merge.

    Raises :class:`ConfigError` if ``b`` is unsorted (the algorithm's merge
    invariant needs sorted B rows; ``a``'s order only permutes merge sources
    and is accepted either way).  ``sort_output=False`` is accepted but
    pointless — the output is naturally sorted; the flag only affects the
    reported sortedness metadata cost-wise (no sort is ever performed).
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if not b.sorted_rows:
        raise ConfigError(
            "heap_spgemm requires row-sorted B (Table 1: Sorted/Sorted); "
            "call b.sort_rows() first or use spgemm(..., algorithm='heap')"
        )
    sr = get_semiring(semiring)
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span("partition", phase="partition"):
        if partition is None:
            partition = rows_to_threads(a, b, nthreads)
        elif partition.nrows != a.nrows:
            raise ConfigError(
                f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
            )

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data

    nrows = a.nrows
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    # Thread-private growing output buffers ("parallel" memory management).
    buffers: "list[tuple[list, list]]" = []

    pushes = pops = flops = 0
    # One-phase kernel: the merge loop is its numeric phase (output rows
    # come out sorted for free, so no sort phase ever exists).
    with obs.span("numeric", phase="numeric", rows=nrows):
        for tid in range(partition.nthreads):
            cols_buf: list[int] = []
            vals_buf: list[float] = []
            thread_flop = 0
            thread_ops = 0
            for s, e in partition.rows_of(tid):
                for i in range(s, e):
                    # Build the initial heap: first nonzero of every b_k* row.
                    # The per-row heap *is* the Heap algorithm (Table 1: its
                    # accumulator is a priority queue over the row's runs,
                    # sized nnz(a_i*), not flop) — the sanctioned exception
                    # to the Section 4.3 no-per-row-allocation contract.
                    heap: "list[tuple[int, int, int]]" = []  # repro-lint: disable=hot-loop-alloc
                    ends: list[int] = []  # repro-lint: disable=hot-loop-alloc
                    avals: list[float] = []  # repro-lint: disable=hot-loop-alloc
                    src = 0
                    for j in range(a_indptr[i], a_indptr[i + 1]):
                        k = a_indices[j]
                        lo, hi = int(b_indptr[k]), int(b_indptr[k + 1])
                        if lo < hi:
                            heap.append((int(b_indices[lo]), src, lo))
                            ends.append(hi)
                            avals.append(float(a_data[j]))
                            src += 1
                    heapq.heapify(heap)
                    pushes += len(heap)
                    thread_ops += len(heap)
                    cur_col = -1
                    nnz_i = 0
                    while heap:
                        col, src_id, pos = heapq.heappop(heap)
                        pops += 1
                        thread_ops += 1
                        val = sr.scalar_mul(avals[src_id], float(b_data[pos]))
                        flops += 1
                        thread_flop += 1
                        if col == cur_col:
                            vals_buf[-1] = sr.scalar_add(vals_buf[-1], val)
                        else:
                            cols_buf.append(col)
                            vals_buf.append(val)
                            cur_col = col
                            nnz_i += 1
                        pos += 1
                        if pos < ends[src_id]:
                            heapq.heappush(heap, (int(b_indices[pos]), src_id, pos))
                            pushes += 1
                            thread_ops += 1
                    row_nnz[i] = nnz_i
            buffers.append((cols_buf, vals_buf))
            if stats is not None:
                stats.per_thread.append((thread_ops, thread_flop))

    # Stitch thread buffers into the global arrays.  Buffer order within a
    # thread follows its row ranges in ascending order, matching indptr for
    # contiguous partitions; for chunked partitions we must place each range
    # individually.
    with obs.span("stitch", phase="stitch"):
        indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(row_nnz, out=indptr[1:])
        nnz_total = int(indptr[-1])
        out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
        out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)

        for tid in range(partition.nthreads):
            cols_buf, vals_buf = buffers[tid]
            cursor = 0
            for s, e in partition.rows_of(tid):
                length = int(indptr[e] - indptr[s])
                out_indices[indptr[s] : indptr[e]] = cols_buf[cursor : cursor + length]
                out_data[indptr[s] : indptr[e]] = vals_buf[cursor : cursor + length]
                cursor += length

    if stats is not None:
        stats.flops += flops
        stats.heap_pushes += pushes
        stats.heap_pops += pops
        stats.output_nnz += nnz_total
        stats.rows += nrows

    return CSR((nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=True)
