"""ESC SpGEMM — expand / sort / compress, fully numpy-vectorized.

ESC is the row-by-row *expansion* family from the GPU literature the paper
cites (Dalton/Olson/Bell's cusp, and the binning codes of [21][25] descend
from it): materialize every intermediate product, sort by output coordinate,
and reduce equal coordinates.  We include it for three reasons:

1. it is the only SpGEMM formulation that vectorizes cleanly in numpy, so it
   serves as the **fast oracle** against which the scalar Hash/Heap/SPA
   kernels are validated at non-toy scales;
2. its symbolic half powers :func:`repro.core.symbolic.symbolic_row_nnz`,
   which the performance model needs for exact ``nnz(C)``;
3. it rounds out the algorithm-family comparison in the extended benches.

Memory is ``O(flop)`` per block; row blocks are capped at
``max_block_flop`` intermediate products (default ~8M).
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .instrument import KernelStats
from .symbolic import (
    DEFAULT_MAX_BLOCK_FLOP,
    expand_rows,
    iter_row_blocks,
    segment_mask,
)

__all__ = ["esc_spgemm"]


def esc_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    stats: KernelStats | None = None,
    max_block_flop: int = DEFAULT_MAX_BLOCK_FLOP,
    tracer=None,
) -> CSR:
    """Multiply two CSR matrices by expand-sort-compress.

    The compress step inherently sorts every row, so ``sort_output=False``
    costs nothing extra and merely sets the metadata flag (the flag is kept
    True because the rows really are sorted).

    Accepts sorted or unsorted inputs and any semiring.

    With a ``tracer``, the per-block expand/sort/compress times accumulate
    into three phase spans (numeric / sort / stitch) reported once at the
    end — ESC's phases interleave block-by-block, so scoped spans per block
    would drown the trace in one span triple per block.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    sr = get_semiring(semiring)

    nrows = a.nrows
    block_indices: list[np.ndarray] = []
    block_data: list[np.ndarray] = []
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    total_flop = 0

    traced = tracer is not None
    expand_seconds = sort_seconds = compress_seconds = 0.0
    clock = time.perf_counter
    t0 = clock() if traced else 0.0

    for r0, r1 in iter_row_blocks(a, b, max_block_flop):
        rows, cols, factors = expand_rows(a, b, r0, r1, with_values=True)
        if len(rows) == 0:
            continue
        total_flop += len(rows)
        vals = np.asarray(sr.mul(factors[0], factors[1]), dtype=VALUE_DTYPE)
        if traced:
            t1 = clock()
            expand_seconds += t1 - t0
        order = np.lexsort((cols, rows))
        r = rows[order]
        c = cols[order]
        v = vals[order]
        if traced:
            t2 = clock()
            sort_seconds += t2 - t1
        new_run = segment_mask(r, c)
        starts = np.flatnonzero(new_run)
        block_indices.append(c[starts])
        # The ESC sort boundary itself: this kernel *defines* the pairwise
        # sorted-merge convention the accum-order rule carves out.
        block_data.append(sr.reduce_segments(v, starts))  # repro-lint: disable=accum-order
        row_nnz[r0:r1] += np.bincount(r[starts] - r0, minlength=r1 - r0)
        if traced:
            t0 = clock()
            compress_seconds += t0 - t2

    if traced:
        t3 = clock()
    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    out_indices = (
        np.concatenate(block_indices)
        if block_indices
        else np.empty(0, dtype=INDEX_DTYPE)
    )
    out_data = (
        np.concatenate(block_data) if block_data else np.empty(0, dtype=VALUE_DTYPE)
    )
    if traced:
        stitch_seconds = compress_seconds + (clock() - t3)
        tracer.record("expand", expand_seconds, phase="numeric", what="expand+mul")
        tracer.record("sort", sort_seconds, phase="sort", what="coordinate lexsort")
        tracer.record(
            "compress", stitch_seconds, phase="stitch", what="reduce+assemble"
        )

    if stats is not None:
        stats.flops += total_flop
        stats.sorted_elements += total_flop  # the sort touches every product
        stats.output_nnz += int(indptr[-1])
        stats.rows += nrows

    return CSR(
        (nrows, b.ncols),
        indptr,
        out_indices.astype(INDEX_DTYPE, copy=False),
        out_data,
        sorted_rows=True,
    )
