"""Per-thread accumulator data structures for row-wise SpGEMM.

The accumulator is what distinguishes the SpGEMM families the paper studies
(§1: heap, hash, SPA).  Each accumulator here is a *thread-private* object:
it is allocated once per (simulated) thread, sized for the largest row that
thread owns, and re-initialized cheaply between rows — exactly the paper's
"parallel" memory-management scheme (§4.2.1: "Each thread once allocates the
hash table based on its own upper limit and reuses that hash table throughout
the computation by reinitializing for each row").

The scalar probe loops are intentionally written element-by-element: they are
the *faithful* executable algorithm and the source of instrumented operation
counts.  Bulk performance at large scales comes from the vectorized ESC
kernel and the machine-level performance model instead.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..matrix.csr import INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import Semiring
from .instrument import KernelStats

__all__ = [
    "lowest_p2",
    "HASH_SCALE",
    "HashAccumulator",
    "VectorHashAccumulator",
    "SparseAccumulator",
]

#: Knuth-style multiplicative hashing constant (the paper: "The column index
#: is multiplied by constant number and divided by hash table size").
HASH_SCALE = 107

#: Keys are column indices, which are >= 0, so -1 marks an empty slot
#: (paper: "the hash table is initialized by storing -1").
EMPTY = -1


def lowest_p2(x: int) -> int:
    """Minimum power of two >= x (paper Fig. 7, line 12), at least 1."""
    if x <= 1:
        return 1
    return 1 << (int(x - 1).bit_length())


class HashAccumulator:
    """Linear-probing hash table keyed by column index (§4.2.1).

    The table size is a power of two so the modulus is a bit-mask, mirroring
    the paper ("the hash table size is set as 2^n").
    """

    def __init__(self, capacity: int, ncols: int) -> None:
        """``capacity`` is the upper bound on a row's flop for this thread.

        Sizing follows the paper's Fig. 7 exactly: clip the bound to the
        column count (``size_t = min(Ncol, size_t)``), then take the minimum
        power of two *strictly greater* than it, which guarantees at least
        one empty slot so probing always terminates.
        """
        if capacity < 0:
            raise ConfigError(f"capacity must be >= 0, got {capacity}")
        bound = min(capacity, max(ncols, 1))
        self.size = lowest_p2(bound + 1)
        self.mask = self.size - 1
        self.keys = np.full(self.size, EMPTY, dtype=INDEX_DTYPE)
        self.vals = np.zeros(self.size, dtype=VALUE_DTYPE)
        self.occupied: list[int] = []
        # local counters, flushed into KernelStats by the kernel
        self.probes = 0
        self.inserts = 0
        self.accesses = 0

    def reset(self) -> None:
        """Clear only the slots used by the previous row (O(row nnz))."""
        for slot in self.occupied:
            self.keys[slot] = EMPTY
        self.occupied.clear()

    def insert_symbolic(self, key: int) -> None:
        """Symbolic-phase insert: record the key's presence only."""
        self.accesses += 1
        keys = self.keys
        mask = self.mask
        slot = (key * HASH_SCALE) & mask
        probes = 1
        while True:
            k = keys[slot]
            if k == key:
                break
            if k == EMPTY:
                keys[slot] = key
                self.occupied.append(slot)
                self.inserts += 1
                break
            slot = (slot + 1) & mask
            probes += 1
        self.probes += probes

    def insert_numeric(self, key: int, value: float, semiring: Semiring) -> None:
        """Numeric-phase insert: accumulate ``value`` under ``semiring.add``."""
        self.accesses += 1
        keys = self.keys
        vals = self.vals
        mask = self.mask
        slot = (key * HASH_SCALE) & mask
        probes = 1
        while True:
            k = keys[slot]
            if k == key:
                vals[slot] = semiring.add(vals[slot], value)
                break
            if k == EMPTY:
                keys[slot] = key
                vals[slot] = value
                self.occupied.append(slot)
                self.inserts += 1
                break
            slot = (slot + 1) & mask
            probes += 1
        self.probes += probes

    def extract(self, *, sort: bool) -> "tuple[np.ndarray, np.ndarray]":
        """Harvest the current row as ``(cols, vals)`` arrays.

        ``sort=True`` orders by column index (the paper's optional output
        sort, "if necessary"); otherwise entries come out in slot order,
        i.e. unsorted.
        """
        slots = np.asarray(self.occupied, dtype=INDEX_DTYPE)
        cols = self.keys[slots]
        vals = self.vals[slots]
        if sort and len(cols) > 1:
            order = np.argsort(cols, kind="stable")
            cols = cols[order]
            vals = vals[order]
        return cols, vals

    def flush_stats(self, stats: KernelStats) -> None:
        stats.hash_probes += self.probes
        stats.hash_inserts += self.inserts
        stats.hash_accesses += self.accesses
        self.probes = 0
        self.inserts = 0
        self.accesses = 0


class VectorHashAccumulator:
    """Chunked ("vector register") linear probing (§4.2.2, after Ross).

    The table is divided into chunks of ``lane_width`` entries — 8 on
    Haswell (256-bit AVX2, 32-bit keys), 16 on KNL (AVX-512).  The hash
    selects a *chunk*; all keys in the chunk are compared at once (here: a
    numpy slice comparison standing in for ``vpcmpeqd``), new keys are pushed
    at the first empty position of the chunk ("in order from the beginning"),
    and a full chunk overflows to the next chunk — linear probing on chunks.
    """

    def __init__(self, capacity: int, ncols: int, lane_width: int = 16) -> None:
        if lane_width < 1:
            raise ConfigError(f"lane_width must be >= 1, got {lane_width}")
        self.lane_width = lane_width
        bound = min(max(capacity, 0), max(ncols, 1))
        base = lowest_p2(bound + 1)  # same strictly-greater rule as Hash
        nchunks = lowest_p2((base + lane_width - 1) // lane_width)
        self.nchunks = nchunks
        self.size = nchunks * lane_width
        self.chunk_mask = nchunks - 1
        self.keys = np.full(self.size, EMPTY, dtype=INDEX_DTYPE)
        self.vals = np.zeros(self.size, dtype=VALUE_DTYPE)
        #: entries used in each chunk (push position), reset per row
        self.fill = np.zeros(nchunks, dtype=INDPTR_DTYPE)
        self.touched: list[int] = []
        self.vprobes = 0
        self.inserts = 0
        self.accesses = 0

    def reset(self) -> None:
        lw = self.lane_width
        for ch in self.touched:
            base = ch * lw
            self.keys[base : base + self.fill[ch]] = EMPTY
            self.fill[ch] = 0
        self.touched.clear()

    def _locate(self, key: int) -> "tuple[int, int]":
        """Return ``(chunk, index_within_chunk_or_-1)`` after probing."""
        self.accesses += 1
        lw = self.lane_width
        ch = (key * HASH_SCALE) & self.chunk_mask
        while True:
            base = ch * lw
            used = self.fill[ch]
            self.vprobes += 1
            if used:
                # One vector comparison inspects the whole chunk.
                hit = np.flatnonzero(self.keys[base : base + used] == key)
                if len(hit):
                    return ch, int(hit[0])
            if used < lw:
                return ch, -1  # room in this chunk: key absent
            ch = (ch + 1) & self.chunk_mask

    def insert_symbolic(self, key: int) -> None:
        ch, idx = self._locate(key)
        if idx < 0:
            base = ch * self.lane_width
            used = int(self.fill[ch])
            self.keys[base + used] = key
            if used == 0:
                self.touched.append(ch)
            self.fill[ch] = used + 1
            self.inserts += 1

    def insert_numeric(self, key: int, value: float, semiring: Semiring) -> None:
        ch, idx = self._locate(key)
        base = ch * self.lane_width
        if idx >= 0:
            self.vals[base + idx] = semiring.add(self.vals[base + idx], value)
            return
        used = int(self.fill[ch])
        self.keys[base + used] = key
        self.vals[base + used] = value
        if used == 0:
            self.touched.append(ch)
        self.fill[ch] = used + 1
        self.inserts += 1

    def extract(self, *, sort: bool) -> "tuple[np.ndarray, np.ndarray]":
        lw = self.lane_width
        parts_c = []
        parts_v = []
        for ch in self.touched:
            base = ch * lw
            used = self.fill[ch]
            parts_c.append(self.keys[base : base + used])
            parts_v.append(self.vals[base : base + used])
        if not parts_c:
            return np.empty(0, dtype=INDEX_DTYPE), np.empty(0, dtype=VALUE_DTYPE)
        cols = np.concatenate(parts_c)
        vals = np.concatenate(parts_v)
        if sort and len(cols) > 1:
            order = np.argsort(cols, kind="stable")
            cols = cols[order]
            vals = vals[order]
        return cols, vals

    def flush_stats(self, stats: KernelStats) -> None:
        stats.vector_probes += self.vprobes
        stats.hash_inserts += self.inserts
        stats.hash_accesses += self.accesses
        self.vprobes = 0
        self.inserts = 0
        self.accesses = 0


class SparseAccumulator:
    """Gustavson's dense sparse accumulator (SPA) [Gilbert et al. 1992].

    A dense value array of width ``ncols`` plus a stamp array marking which
    columns are live for the current row; the stamp trick makes per-row reset
    O(1).  The per-(a_ik) scatter is numpy-vectorized — B rows contain unique
    columns, so ``vals[cols] op= ...`` has no intra-operation aliasing for
    the ufuncs we use via explicit gather/combine/scatter.
    """

    def __init__(self, ncols: int) -> None:
        self.ncols = ncols
        self.vals = np.zeros(ncols, dtype=VALUE_DTYPE)
        self.stamp = np.full(ncols, -1, dtype=INDEX_DTYPE)
        self.row_id = -1
        self.cols_buffer: list[np.ndarray] = []
        self.touches = 0

    def start_row(self, row_id: int) -> None:
        self.row_id = row_id
        self.cols_buffer.clear()

    def scatter(self, cols: np.ndarray, contrib: np.ndarray, semiring: Semiring) -> None:
        """Accumulate one B-row's contribution: ``spa[cols] += contrib``."""
        live = self.stamp[cols] == self.row_id
        fresh = ~live
        fresh_cols = cols[fresh]
        if len(fresh_cols):
            self.stamp[fresh_cols] = self.row_id
            self.vals[fresh_cols] = contrib[fresh]
            self.cols_buffer.append(fresh_cols)
        live_cols = cols[live]
        if len(live_cols):
            self.vals[live_cols] = semiring.add(self.vals[live_cols], contrib[live])
        self.touches += len(cols)

    def harvest(self, *, sort: bool) -> "tuple[np.ndarray, np.ndarray]":
        """Collect the row's ``(cols, vals)``, first-touch order by default."""
        if not self.cols_buffer:
            return np.empty(0, dtype=INDEX_DTYPE), np.empty(0, dtype=VALUE_DTYPE)
        cols = np.concatenate(self.cols_buffer)
        if sort and len(cols) > 1:
            cols = np.sort(cols)
        return cols, self.vals[cols].copy()

    def flush_stats(self, stats: KernelStats) -> None:
        stats.spa_touches += self.touches
        self.touches = 0
