"""Masked SpGEMM — compute only the output entries a mask allows.

Triangle counting (§5.6, after Azad/Buluç/Gilbert) really wants
``A .* (L·U)``: every wedge that does not close into an existing edge is
computed and then immediately discarded by the elementwise mask.  A *masked*
multiplication pushes the mask inside the kernel: intermediate products
whose output column is not in the mask row are dropped at accumulation
time, so the accumulator only ever holds maskable entries and the full
wedge matrix is never materialized.  This is the fused primitive of the
GraphBLAS ecosystem (the paper's CombBLAS lineage).

The accumulator here is a mask-gated SPA: the mask row is splatted into a
stamp array once per row (O(nnz(mask_i*))), and scatters are filtered
against it — an ``O(1)`` membership test per product.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .instrument import KernelStats
from .scheduler import ThreadPartition, rows_to_threads

__all__ = ["masked_spgemm"]

#: Shared zero-length placeholders for rows the mask empties out — hoisted
#: to module level so the per-row hot loop never allocates (they are only
#: ever read by ``np.concatenate``, never written).
_EMPTY_COLS = np.empty(0, dtype=INDEX_DTYPE)
_EMPTY_VALS = np.empty(0, dtype=VALUE_DTYPE)


# Deliberately NOT in the spgemm() dispatch: the mask is a third operand, so
# this is a different surface (GraphBLAS mxm-with-mask), exported directly.
def masked_spgemm(  # repro-lint: disable=kernel-dispatch
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    complement: bool = False,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
) -> CSR:
    """Compute ``(A (x) B) .* pattern(mask)`` without materializing the rest.

    Parameters
    ----------
    mask:
        Matrix whose *pattern* gates the output: entry ``(i, j)`` of the
        product is kept iff ``mask[i, j]`` is stored (values ignored).
        Must have the output shape ``(a.nrows, b.ncols)``.
    complement:
        Keep entries *not* in the mask instead (GraphBLAS ``!M`` semantics).
    stats:
        ``stats.spa_touches`` counts products evaluated; the difference
        from an unmasked run measures what fusion saves downstream (the
        products themselves must still be formed — masking saves
        accumulator growth, sorting and materialization, not flops).

    Returns
    -------
    CSR
        The masked product; pattern is a subset of ``mask``'s pattern
        (or its complement).
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if mask.shape != (a.nrows, b.ncols):
        raise ShapeError(
            f"mask shape {mask.shape} != output shape {(a.nrows, b.ncols)}"
        )
    sr = get_semiring(semiring)
    if partition is None:
        partition = rows_to_threads(a, b, nthreads)
    elif partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    m_indptr, m_indices = mask.indptr, mask.indices

    nrows, ncols = a.nrows, b.ncols
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    pieces: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
    touches = 0

    for tid in range(partition.nthreads):
        vals = np.zeros(ncols, dtype=VALUE_DTYPE)
        live_stamp = np.full(ncols, -1, dtype=np.int64)  # accumulated cols
        mask_stamp = np.full(ncols, -1, dtype=np.int64)  # allowed cols
        for s, e in partition.rows_of(tid):
            row_cols: "list[np.ndarray]" = []
            row_vals: "list[np.ndarray]" = []
            for i in range(s, e):
                mask_cols = m_indices[m_indptr[i] : m_indptr[i + 1]]
                mask_stamp[mask_cols] = i
                # First-touch runs are discovered per row by the mask/live
                # stamping; the list holds views (no copies) and is bounded
                # by the row's mask population, not by flop — the masked
                # kernel's sanctioned exception to the Section 4.3 contract.
                first_touch: "list[np.ndarray]" = []  # repro-lint: disable=hot-loop-alloc
                for j in range(a_indptr[i], a_indptr[i + 1]):
                    k = a_indices[j]
                    lo, hi = b_indptr[k], b_indptr[k + 1]
                    if lo == hi:
                        continue
                    cols = b_indices[lo:hi]
                    allowed = (mask_stamp[cols] == i) != complement
                    touches += hi - lo
                    if not allowed.any():
                        continue
                    cols = cols[allowed]
                    contrib = np.atleast_1d(
                        sr.mul(a_data[j], b_data[lo:hi])
                    )[allowed]
                    fresh = live_stamp[cols] != i
                    fresh_cols = cols[fresh]
                    if len(fresh_cols):
                        live_stamp[fresh_cols] = i
                        vals[fresh_cols] = contrib[fresh]
                        first_touch.append(fresh_cols)
                    live_cols = cols[~fresh]
                    if len(live_cols):
                        vals[live_cols] = sr.add(vals[live_cols], contrib[~fresh])
                if first_touch:
                    # One output-sized gather per *emitted* row (<= mask
                    # population elements), assembling the row's column set —
                    # not the flop-sized churn the rule targets.
                    out_cols = np.concatenate(first_touch)  # repro-lint: disable=hot-loop-alloc
                    if sort_output and len(out_cols) > 1:
                        out_cols = np.sort(out_cols)
                    row_cols.append(out_cols)
                    row_vals.append(vals[out_cols].copy())
                    row_nnz[i] = len(out_cols)
                else:
                    row_cols.append(_EMPTY_COLS)
                    row_vals.append(_EMPTY_VALS)
            pieces[s] = (
                np.concatenate(row_cols) if row_cols else np.empty(0, INDEX_DTYPE),
                np.concatenate(row_vals) if row_vals else np.empty(0, VALUE_DTYPE),
            )

    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    out_indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
    out_data = np.empty(int(indptr[-1]), dtype=VALUE_DTYPE)
    for s, (ccols, cvals) in pieces.items():
        out_indices[indptr[s] : indptr[s] + len(ccols)] = ccols
        out_data[indptr[s] : indptr[s] + len(cvals)] = cvals

    if stats is not None:
        stats.flops += touches
        stats.spa_touches += touches
        stats.output_nnz += int(indptr[-1])
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += int(indptr[-1])

    return CSR(
        (nrows, ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )
