"""Masked SpGEMM — compute only the output entries a mask allows.

Triangle counting (§5.6, after Azad/Buluç/Gilbert) really wants
``A .* (L·U)``: every wedge that does not close into an existing edge is
computed and then immediately discarded by the elementwise mask.  A *masked*
multiplication pushes the mask inside the kernel: intermediate products
whose output column is not in the mask row are dropped at accumulation
time, so the accumulator only ever holds maskable entries and the full
wedge matrix is never materialized.  This is the fused primitive of the
GraphBLAS ecosystem (the paper's CombBLAS lineage).

Two executable engines, bit-for-bit identical:

* ``engine="faithful"`` — a mask-gated SPA: the mask row is splatted into a
  stamp array once per row (O(nnz(mask_i*))), and scatters are filtered
  against it — an ``O(1)`` membership test per product;
* ``engine="fast"`` — the batched expansion pipeline of
  :mod:`repro.core.hash_batch` with the mask filter applied to the product
  stream *before* the stable coordinate sort.  Filtering a stream preserves
  relative order, so every surviving output entry receives its products in
  exactly the faithful kernel's arrival sequence — same folds, same bits —
  while the sort/accumulate volume collapses from ``flop`` to the kept
  count.

The mask gates by *output coordinate*: a kept entry accumulates **all** of
its intermediate products, so its value equals the unmasked product's entry
exactly (not approximately) under every registered semiring.

Repeated-structure traffic can skip the symbolic work entirely: pass
``plan=`` (a :class:`repro.core.plan.MaskedSpgemmPlan` from
:func:`repro.core.plan.inspect_masked`) or ``plan_cache=`` (a
:class:`repro.core.plan.PlanCache`) and the call replays numeric-only.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..observability import tracer_from_env
from ..semiring import Semiring
from .engine import ENGINES, ScratchArena, get_thread_arena
from .hash_batch import _stable_coordinate_order
from .instrument import KernelStats
from .options import ChainOptions
from .scheduler import ThreadPartition, rows_to_threads
from .symbolic import (
    DEFAULT_MAX_BLOCK_FLOP,
    expand_rows,
    iter_row_blocks,
    mask_membership,
    segment_mask,
)

__all__ = ["masked_spgemm"]

#: Shared zero-length placeholders for rows the mask empties out — hoisted
#: to module level so the per-row hot loop never allocates (they are only
#: ever read by ``np.concatenate``, never written).
_EMPTY_COLS = np.empty(0, dtype=INDEX_DTYPE)
_EMPTY_VALS = np.empty(0, dtype=VALUE_DTYPE)


def _check_shapes(a: CSR, b: CSR, mask: CSR) -> None:
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if mask.shape != (a.nrows, b.ncols):
        raise ShapeError(
            f"mask shape {mask.shape} != output shape {(a.nrows, b.ncols)}"
        )


# Deliberately NOT in the spgemm() dispatch: the mask is a third operand, so
# this is a different surface (GraphBLAS mxm-with-mask), exported directly.
def masked_spgemm(  # repro-lint: disable=kernel-dispatch
    a: CSR,
    b: CSR,
    mask: CSR,
    opts: ChainOptions | None = None,
    *,
    max_block_flop: int = DEFAULT_MAX_BLOCK_FLOP,
    **kwargs,
) -> CSR:
    """Compute ``(A (x) B) .* pattern(mask)`` without materializing the rest.

    Configuration arrives the same way as :func:`repro.spgemm`'s: a frozen
    :class:`~repro.core.options.ChainOptions` (a plain
    :class:`~repro.core.options.SpgemmOptions` is promoted), loose keywords
    (``semiring``, ``complement``, ``sort_output``, ``engine``,
    ``nthreads``, ``partition``, ``stats``, ``plan``, ``plan_cache``,
    ``tracer``), or both — keywords override the options object's fields,
    validated in one place by :meth:`ChainOptions.from_kwargs`.  The
    ``algorithm`` and ``fuse`` fields are ignored here (the masked kernel
    is its own algorithm and nothing streams); ``max_block_flop`` is a
    kernel tuning knob, not configuration, and stays a direct keyword.

    Parameters
    ----------
    mask:
        Matrix whose *pattern* gates the output: entry ``(i, j)`` of the
        product is kept iff ``mask[i, j]`` is stored (values ignored).
        Must have the output shape ``(a.nrows, b.ncols)``.
    complement:
        Keep entries *not* in the mask instead (GraphBLAS ``!M`` semantics).
    engine:
        ``"faithful"`` runs the scalar mask-gated SPA; ``"fast"`` runs the
        batched mask-gated scatter — identical output at the float64 bit
        level.  ``"auto"`` resolves to ``"fast"`` (the engines are
        bit-identical; the batched one wins on volume).
    plan, plan_cache:
        Inspector–executor replay: ``plan`` must be a
        :class:`~repro.core.plan.MaskedSpgemmPlan` (its options win);
        ``plan_cache`` a :class:`~repro.core.plan.PlanCache`, keyed on the
        three structure fingerprints.
    stats:
        ``stats.flops``/``spa_touches`` count products *evaluated* (masking
        saves accumulator growth, sorting and materialization, not flops);
        ``stats.masked_kept`` counts the products that survived the mask —
        the gap between the two is the fused saving.

    Returns
    -------
    CSR
        The masked product; pattern is a subset of ``mask``'s pattern
        (or its complement).
    """
    options = ChainOptions.from_kwargs(opts, **kwargs)
    complement = options.complement
    sort_output = options.sort_output
    nthreads = options.nthreads
    partition = options.partition
    stats = options.stats
    plan = options.plan
    plan_cache = options.plan_cache
    tracer = options.tracer
    engine = "fast" if options.engine == "auto" else options.engine
    _check_shapes(a, b, mask)
    sr = options.semiring
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; available: {list(ENGINES)}"
        )
    if plan is not None and not hasattr(plan, "execute"):
        raise ConfigError(
            f"masked_spgemm's plan must provide .execute(a, b, mask), "
            f"got {type(plan).__name__}"
        )
    if tracer is None:
        tracer = tracer_from_env()
    if plan is not None:
        return plan.execute(a, b, mask, semiring=sr, stats=stats, tracer=tracer)
    if plan_cache is not None:
        return plan_cache.execute_masked(
            a, b, mask, semiring=sr, complement=complement,
            sort_output=sort_output, engine=engine, nthreads=nthreads,
            stats=stats, tracer=tracer,
        )
    if tracer is None:
        return _dispatch_masked(
            a, b, mask, sr=sr, complement=complement, sort_output=sort_output,
            engine=engine, nthreads=nthreads, partition=partition,
            stats=stats, tracer=None, max_block_flop=max_block_flop,
        )
    with tracer.span(
        "masked_spgemm", phase="other",
        engine=engine, complement=complement,
        nrows=a.nrows, ncols=b.ncols, mask_nnz=mask.nnz, nthreads=nthreads,
    ) as root:
        before = stats.scalar_snapshot() if stats is not None else None
        c = _dispatch_masked(
            a, b, mask, sr=sr, complement=complement, sort_output=sort_output,
            engine=engine, nthreads=nthreads, partition=partition,
            stats=stats, tracer=tracer, max_block_flop=max_block_flop,
        )
        root.add_counter("nnz", float(c.nnz))
        if stats is not None:
            for key, value in stats.scalar_snapshot().items():
                delta = value - before[key]
                if delta:
                    root.add_counter(key, delta)
            from .spgemm import _phase_seconds_into_stats

            _phase_seconds_into_stats(root, stats)
    return c


def _dispatch_masked(
    a, b, mask, *, sr, complement, sort_output, engine, nthreads,
    partition, stats, tracer, max_block_flop,
):
    if engine == "fast":
        return _batch_masked(
            a, b, mask, sr=sr, complement=complement, sort_output=sort_output,
            stats=stats, tracer=tracer, max_block_flop=max_block_flop,
        )
    return _faithful_masked(
        a, b, mask, sr=sr, complement=complement, sort_output=sort_output,
        nthreads=nthreads, partition=partition, stats=stats, tracer=tracer,
    )


def _batch_masked(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    sr: Semiring,
    complement: bool,
    sort_output: bool,
    stats: KernelStats | None,
    tracer,
    max_block_flop: int,
    arena: ScratchArena | None = None,
) -> CSR:
    """Batched mask-gated scatter — the ``engine="fast"`` implementation.

    The product stream is filtered by mask membership *before* the stable
    coordinate sort.  Filtering preserves relative arrival order, so each
    surviving segment folds exactly the faithful kernel's value sequence
    through :meth:`~repro.semiring.Semiring.accumulate_segments` — the fast
    masked path is bit-identical to the faithful one while sorting only the
    kept products.
    """
    if arena is None:
        arena = get_thread_arena()
    nrows, ncols = a.nrows, b.ncols
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    block_cols: "list[np.ndarray]" = []
    block_vals: "list[np.ndarray]" = []
    total_flop = 0
    kept_total = 0

    traced = tracer is not None
    numeric_seconds = mask_seconds = sort_seconds = 0.0
    clock = time.perf_counter
    t0 = clock() if traced else 0.0

    for r0, r1 in iter_row_blocks(a, b, max_block_flop):
        rows, cols, factors = expand_rows(a, b, r0, r1, with_values=True)
        n = len(rows)
        if n == 0:
            continue
        total_flop += n
        vals = np.asarray(sr.mul(factors[0], factors[1]), dtype=VALUE_DTYPE)
        if traced:
            t1 = clock()
            numeric_seconds += t1 - t0

        # Mask gate: drop disallowed products from the stream before any
        # sorting — the fused saving happens here.
        allowed = mask_membership(rows, cols, mask, r0, r1)
        if complement:
            np.logical_not(allowed, out=allowed)
        rows = rows[allowed]
        cols = cols[allowed]
        vals = vals[allowed]
        k = len(rows)
        kept_total += k
        if traced:
            t2 = clock()
            mask_seconds += t2 - t1
            t0 = t2
        if k == 0:
            continue

        span = r1 - r0
        order = _stable_coordinate_order(rows, cols, r0, span, ncols, arena)
        r_s = np.take(rows, order, out=arena.take("rows_s", k, rows.dtype))
        c_s = np.take(cols, order, out=arena.take("cols_s", k, cols.dtype))
        v_s = np.take(vals, order, out=arena.take("vals_s", k, VALUE_DTYPE))
        if traced:
            t3 = clock()
            sort_seconds += t3 - t2

        new_run = segment_mask(r_s, c_s, out=arena.take("new_run", k, bool))
        starts = np.flatnonzero(new_run)
        seg_vals = sr.accumulate_segments(v_s, new_run, starts)
        seg_cols = c_s[starts]
        seg_rows = r_s[starts]
        first_idx = order[starts]
        row_nnz[r0:r1] += np.bincount(seg_rows - r0, minlength=span)
        if traced:
            t4 = clock()
            numeric_seconds += t4 - t3

        if not sort_output:
            # First-occurrence order over the *kept* stream — the same order
            # the faithful kernel's first-touch list records.
            reorder = np.argsort(first_idx)
            seg_cols = seg_cols[reorder]
            seg_vals = seg_vals[reorder]

        block_cols.append(np.ascontiguousarray(seg_cols, dtype=INDEX_DTYPE))
        block_vals.append(np.ascontiguousarray(seg_vals, dtype=VALUE_DTYPE))
        if traced:
            t0 = clock()
            sort_seconds += t0 - t4

    if traced:
        t5 = clock()
    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    nnz_total = int(indptr[-1])
    out_indices = np.empty(nnz_total, dtype=INDEX_DTYPE)
    out_data = np.empty(nnz_total, dtype=VALUE_DTYPE)
    cursor = 0
    for bc, bv in zip(block_cols, block_vals):
        out_indices[cursor : cursor + len(bc)] = bc
        out_data[cursor : cursor + len(bv)] = bv
        cursor += len(bc)
    if traced:
        tracer.record(
            "expand+reduce", numeric_seconds, phase="numeric",
            what="expand/mul/reduce",
        )
        tracer.record(
            "mask-gate", mask_seconds, phase="mask", what="mask membership filter"
        )
        tracer.record(
            "bucket", sort_seconds, phase="sort", what="stable coordinate order"
        )
        tracer.record("assemble", clock() - t5, phase="stitch", what="block assembly")

    if stats is not None:
        stats.flops += total_flop
        stats.spa_touches += total_flop
        stats.masked_kept += kept_total
        stats.output_nnz += nnz_total
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += nnz_total

    return CSR(
        (nrows, ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )


def _faithful_masked(
    a: CSR,
    b: CSR,
    mask: CSR,
    *,
    sr: Semiring,
    complement: bool,
    sort_output: bool,
    nthreads: int,
    partition: ThreadPartition | None,
    stats: KernelStats | None,
    tracer,
) -> CSR:
    """The scalar mask-gated SPA — the paper-faithful operation stream."""
    if partition is None:
        partition = rows_to_threads(a, b, nthreads)
    elif partition.nrows != a.nrows:
        raise ConfigError(
            f"partition covers {partition.nrows} rows, matrix has {a.nrows}"
        )

    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    b_indptr, b_indices, b_data = b.indptr, b.indices, b.data
    m_indptr, m_indices = mask.indptr, mask.indices

    nrows, ncols = a.nrows, b.ncols
    row_nnz = np.zeros(nrows, dtype=INDPTR_DTYPE)
    pieces: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
    touches = 0
    kept = 0

    traced = tracer is not None
    numeric_seconds = mask_seconds = sort_seconds = 0.0
    clock = time.perf_counter

    for tid in range(partition.nthreads):
        vals = np.zeros(ncols, dtype=VALUE_DTYPE)
        live_stamp = np.full(ncols, -1, dtype=INDEX_DTYPE)  # accumulated cols
        mask_stamp = np.full(ncols, -1, dtype=INDEX_DTYPE)  # allowed cols
        for s, e in partition.rows_of(tid):
            row_cols: "list[np.ndarray]" = []
            row_vals: "list[np.ndarray]" = []
            for i in range(s, e):
                if traced:
                    t0 = clock()
                mask_cols = m_indices[m_indptr[i] : m_indptr[i + 1]]
                mask_stamp[mask_cols] = i
                if traced:
                    t1 = clock()
                    mask_seconds += t1 - t0
                # First-touch runs are discovered per row by the mask/live
                # stamping; the list holds views (no copies) and is bounded
                # by the row's mask population, not by flop — the masked
                # kernel's sanctioned exception to the Section 4.3 contract.
                first_touch: "list[np.ndarray]" = []  # repro-lint: disable=hot-loop-alloc
                for j in range(a_indptr[i], a_indptr[i + 1]):
                    k = a_indices[j]
                    lo, hi = b_indptr[k], b_indptr[k + 1]
                    if lo == hi:
                        continue
                    cols = b_indices[lo:hi]
                    allowed = (mask_stamp[cols] == i) != complement
                    touches += hi - lo
                    nkept = int(allowed.sum())
                    kept += nkept
                    if not nkept:
                        continue
                    cols = cols[allowed]
                    contrib = np.atleast_1d(
                        sr.mul(a_data[j], b_data[lo:hi])
                    )[allowed]
                    fresh = live_stamp[cols] != i
                    fresh_cols = cols[fresh]
                    if len(fresh_cols):
                        live_stamp[fresh_cols] = i
                        vals[fresh_cols] = contrib[fresh]
                        first_touch.append(fresh_cols)
                    live_cols = cols[~fresh]
                    if len(live_cols):
                        vals[live_cols] = sr.add(vals[live_cols], contrib[~fresh])
                if traced:
                    t2 = clock()
                    numeric_seconds += t2 - t1
                if first_touch:
                    # One output-sized gather per *emitted* row (<= mask
                    # population elements), assembling the row's column set —
                    # not the flop-sized churn the rule targets.
                    out_cols = np.concatenate(first_touch)  # repro-lint: disable=hot-loop-alloc
                    if sort_output and len(out_cols) > 1:
                        out_cols = np.sort(out_cols)
                    row_cols.append(out_cols)
                    row_vals.append(vals[out_cols].copy())
                    row_nnz[i] = len(out_cols)
                else:
                    row_cols.append(_EMPTY_COLS)
                    row_vals.append(_EMPTY_VALS)
                if traced:
                    sort_seconds += clock() - t2
            pieces[s] = (
                np.concatenate(row_cols) if row_cols else np.empty(0, INDEX_DTYPE),
                np.concatenate(row_vals) if row_vals else np.empty(0, VALUE_DTYPE),
            )

    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_nnz, out=indptr[1:])
    out_indices = np.empty(int(indptr[-1]), dtype=INDEX_DTYPE)
    out_data = np.empty(int(indptr[-1]), dtype=VALUE_DTYPE)
    for s, (ccols, cvals) in pieces.items():
        out_indices[indptr[s] : indptr[s] + len(ccols)] = ccols
        out_data[indptr[s] : indptr[s] + len(cvals)] = cvals

    if traced:
        tracer.record(
            "spa-accumulate", numeric_seconds, phase="numeric",
            what="mask-gated scatter",
        )
        tracer.record(
            "mask-stamp", mask_seconds, phase="mask", what="mask row stamping"
        )
        tracer.record(
            "extract+sort", sort_seconds, phase="sort", what="row harvest"
        )

    if stats is not None:
        stats.flops += touches
        stats.spa_touches += touches
        stats.masked_kept += kept
        stats.output_nnz += int(indptr[-1])
        stats.rows += nrows
        if sort_output:
            stats.sorted_elements += int(indptr[-1])

    return CSR(
        (nrows, ncols), indptr, out_indices, out_data, sorted_rows=sort_output
    )
