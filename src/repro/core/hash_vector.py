"""HashVector SpGEMM — vector-register hash probing (§4.2.2).

Identical to Hash SpGEMM except that probing inspects a whole
vector-register-wide *chunk* of the table per step (after Ross, "Efficient
Hash Probes on Modern Processors"): 8 lanes with 256-bit AVX2 (Haswell),
16 lanes with AVX-512 (KNL), for 32-bit keys.

The paper's trade-off, which the machine model reproduces: chunked probing
cuts the number of probe steps when collisions are common, but each step
costs a few more instructions, so it can *lose* when collisions are rare
(§4.2.2, last paragraph).
"""

from __future__ import annotations

from ..matrix.csr import CSR
from ..semiring import PLUS_TIMES, Semiring
from .hash_spgemm import hash_spgemm
from .instrument import KernelStats
from .scheduler import ThreadPartition

__all__ = ["hash_vector_spgemm", "lanes_for_vector_bits"]


def lanes_for_vector_bits(vector_bits: int, key_bits: int = 32) -> int:
    """Number of keys one vector register holds (keys are 32-bit in the
    paper's evaluation): 256-bit AVX2 → 8, 512-bit AVX-512 → 16."""
    return max(1, vector_bits // key_bits)


def hash_vector_spgemm(
    a: CSR,
    b: CSR,
    *,
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nthreads: int = 1,
    partition: ThreadPartition | None = None,
    stats: KernelStats | None = None,
    vector_bits: int = 512,
    tracer=None,
) -> CSR:
    """Multiply with chunked (vector-register) hash probing.

    ``vector_bits`` selects the simulated register width — 512 (KNL,
    default) or 256 (Haswell).  All other parameters are as in
    :func:`repro.core.hash_spgemm.hash_spgemm`.
    """
    return hash_spgemm(
        a,
        b,
        semiring=semiring,
        sort_output=sort_output,
        nthreads=nthreads,
        partition=partition,
        stats=stats,
        vector_width=lanes_for_vector_bits(vector_bits),
        tracer=tracer,
    )
