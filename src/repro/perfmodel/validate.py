"""Cross-validation of the performance model against the real kernels.

The figures this library regenerates rest on the claim that the model's
closed-form operation counts track the *instrumented executable kernels*.
This module makes that claim checkable as a first-class API (and the test
suite pins it): run both on the same product and compare, count by count.

Exact-by-construction quantities (flop, output nnz, heap pops, sort
volumes) must match to the digit; statistical quantities (hash collision
factor) must agree within a stated tolerance band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hash_spgemm import hash_spgemm
from ..core.heap_spgemm import heap_spgemm
from ..core.instrument import KernelStats
from ..core.spa_spgemm import spa_spgemm
from ..matrix.csr import CSR
from .quantities import ProblemQuantities

__all__ = ["CountCheck", "ValidationReport", "validate_counts"]


@dataclass(frozen=True)
class CountCheck:
    """One predicted-vs-measured comparison."""

    name: str
    predicted: float
    measured: float
    #: acceptable |predicted/measured - 1| (0.0 = must be exact)
    tolerance: float
    #: upper-bound semantics: the prediction only promises
    #: ``measured <= predicted * (1 + tolerance)`` (used for the collision
    #: factor, whose analytic estimate is an upper bound in the bijective
    #: small-matrix regime)
    upper_bound: bool = False

    @property
    def ratio(self) -> float:
        if self.measured == 0:
            return 1.0 if self.predicted == 0 else float("inf")
        return self.predicted / self.measured

    @property
    def ok(self) -> bool:
        if self.upper_bound:
            return self.measured <= self.predicted * (1.0 + self.tolerance)
        if self.tolerance == 0.0:
            return self.predicted == self.measured
        return abs(self.ratio - 1.0) <= self.tolerance

    def render(self) -> str:
        flag = "ok " if self.ok else "FAIL"
        return (
            f"  [{flag}] {self.name:<28s} predicted {self.predicted:>14,.1f}  "
            f"measured {self.measured:>14,.1f}  (ratio {self.ratio:.3f})"
        )


@dataclass(frozen=True)
class ValidationReport:
    """All checks of one validation run."""

    checks: "tuple[CountCheck, ...]"

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        lines = ["model-vs-kernel count validation:"]
        lines += [c.render() for c in self.checks]
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def validate_counts(
    a: CSR,
    b: CSR,
    *,
    nthreads: int = 4,
    collision_tolerance: float = 0.15,
) -> ValidationReport:
    """Run the hash/heap/SPA kernels instrumented and compare every count
    the model predicts in closed form.

    The collision-factor check uses upper-bound semantics: the analytic
    linear-probing estimate assumes random probe targets, while structured
    column sets (and any table covering the column space — the bijectivity
    note on
    :meth:`~repro.perfmodel.quantities.ProblemQuantities.collision_factor`)
    probe strictly better, so the model promises
    ``measured <= predicted * (1 + collision_tolerance)``.
    """
    q = ProblemQuantities.compute(a, b)
    checks: "list[CountCheck]" = []

    # --- hash kernel -------------------------------------------------------
    hs = KernelStats()
    c_hash = hash_spgemm(a, b, sort_output=True, nthreads=nthreads, stats=hs)
    checks.append(CountCheck("flop (hash)", q.total_flop, hs.flops, 0.0))
    checks.append(CountCheck("nnz(C) (hash)", q.total_nnz_c, c_hash.nnz, 0.0))
    checks.append(
        CountCheck(
            "hash accesses (2 phases)", 2.0 * q.total_flop, hs.hash_accesses, 0.0
        )
    )
    checks.append(
        CountCheck(
            "hash inserts (2 phases)", 2.0 * q.total_nnz_c, hs.hash_inserts, 0.0
        )
    )
    checks.append(
        CountCheck(
            "sorted elements (hash)", q.total_nnz_c, hs.sorted_elements, 0.0
        )
    )
    # collision factor: statistical. The model's load-based estimate must
    # bound the measurement from above-ish within the tolerance band.
    measured_c = hs.collision_factor()
    predicted_c = q.mean_collision_factor()
    checks.append(
        CountCheck(
            "collision factor (hash)", predicted_c, measured_c,
            collision_tolerance, upper_bound=True,
        )
    )

    # --- heap kernel ---------------------------------------------------
    hp = KernelStats()
    b_sorted = b if b.sorted_rows else b.sort_rows()
    c_heap = heap_spgemm(a, b_sorted, nthreads=nthreads, stats=hp)
    checks.append(CountCheck("flop (heap)", q.total_flop, hp.flops, 0.0))
    checks.append(
        CountCheck("heap pops = flop", q.total_flop, hp.heap_pops, 0.0)
    )
    checks.append(CountCheck("nnz(C) (heap)", q.total_nnz_c, c_heap.nnz, 0.0))

    # --- spa kernel ------------------------------------------------------
    sp = KernelStats()
    c_spa = spa_spgemm(a, b, nthreads=nthreads, stats=sp)
    checks.append(
        CountCheck("SPA touches = flop", q.total_flop, sp.spa_touches, 0.0)
    )
    checks.append(CountCheck("nnz(C) (spa)", q.total_nnz_c, c_spa.nnz, 0.0))

    return ValidationReport(checks=tuple(checks))
