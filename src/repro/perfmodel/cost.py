"""Per-algorithm cost builders: exact counts -> cycles, traffic, memory.

Each builder turns the :class:`~repro.perfmodel.quantities.ProblemQuantities`
of a concrete multiplication into a :class:`CostParts`:

* a per-row cycle count, summed per thread using the *actual* scheduler
  partition (load imbalance is therefore exact);
* DRAM traffic items, each with the stanza length that determines its
  effective bandwidth (§3.3);
* thread-private temporary memory (drives the allocator model and the
  MCDRAM-capacity working set);
* the scheduling iteration count and phase count.

The cycle constants live per-machine in
:class:`repro.machine.spec.KernelCostSpec`.  Structures that exceed the
per-core L2 add random-access DRAM traffic — the mechanism behind MKL's
smallness advantage (a SPA fits in cache only for small matrices) and the
hub-row penalties on G500 inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..core.scheduler import (
    ThreadPartition,
    dynamic_assignment,
    guided_assignment,
    static_partition,
)
from ..machine.spec import MachineSpec
from .quantities import ENTRY_BYTES, INDEX_BYTES, ProblemQuantities

__all__ = [
    "TrafficItem",
    "CostParts",
    "FusionGain",
    "build_cost",
    "cost_features",
    "fusion_gain",
    "CALIBRATION_TERMS",
    "MODELED_ALGORITHMS",
]

#: streaming accesses (input row pointers, packed output) use long runs
STREAM_STANZA = 4096.0
#: DRAM transaction granularity: sub-line stanzas still move whole lines
CACHE_LINE = 64.0
#: fraction of out-of-cache accumulator touches that actually reach DRAM
#: (each miss fills a whole cache line).  Hash tables store only live output
#: columns and are probed flop/nnz(C) times per slot, so hot slots stay
#: cached and few touches miss; the dense SPA spans the full column
#: dimension with long reuse distances, so most of its out-of-cache touches
#: really miss.  Kokkos' chained pool sits in between.
HASH_SPILL_LOCALITY = 0.1
SPA_SPILL_LOCALITY = 0.6
KOKKOS_SPILL_LOCALITY = 0.15
#: chunk-clustering penalty of vectorized probing at high load factors —
#: the mechanism that lets scalar Hash overtake HashVector on skewed (G500)
#: inputs on KNL while HashVector keeps its edge on uniform ones (§5.4.1)
VEC_CLUSTER_GAMMA = 2.0
VEC_CLUSTER_ONSET = 0.6

MODELED_ALGORITHMS = (
    "hash",
    "hashvec",
    "heap",
    "spa",
    "mkl",
    "mkl_inspector",
    "kokkos",
    "esc",
    "blocked_spa",
    "merge",
)


@dataclass(frozen=True)
class TrafficItem:
    """One DRAM traffic component."""

    label: str
    nbytes: float
    stanza_bytes: float


@dataclass
class CostParts:
    """Everything the simulator needs to price one SpGEMM execution."""

    algorithm: str
    #: per-thread compute cycle totals (length = nthreads)
    per_thread_cycles: np.ndarray
    #: cycles that do not parallelize (Amdahl component)
    serial_cycles: float
    traffic: "list[TrafficItem]" = field(default_factory=list)
    #: thread-private scratch allocated/released once per run
    temp_bytes: float = 0.0
    #: iterations handed out by the runtime scheduler
    sched_iterations: int = 0
    #: symbolic+numeric phase count (fork/joins)
    phases: int = 1
    partition: ThreadPartition | None = None

    @property
    def total_traffic_bytes(self) -> float:
        return sum(t.nbytes for t in self.traffic)


def _balanced_partition(row_cost: np.ndarray, nthreads: int) -> ThreadPartition:
    """Contiguous flop-balanced split (RowsToThreads on a cost vector)."""
    csum = np.cumsum(row_cost)
    total = float(csum[-1]) if len(csum) else 0.0
    ave = total / nthreads
    offsets = np.zeros(nthreads + 1, dtype=np.int64)
    for tid in range(1, nthreads):
        offsets[tid] = int(np.searchsorted(csum, ave * tid, side="left"))
    offsets[nthreads] = len(row_cost)
    return ThreadPartition(
        policy="balanced", nthreads=nthreads, offsets=offsets, row_cost=row_cost
    )


def _make_partition(
    policy: str, q: ProblemQuantities, nthreads: int
) -> ThreadPartition:
    if policy == "balanced":
        return _balanced_partition(q.flop, nthreads)
    if policy == "static":
        return static_partition(q.nrows, nthreads)
    if policy == "dynamic":
        return dynamic_assignment(q.flop, nthreads, chunk=1)
    if policy == "guided":
        return guided_assignment(q.flop, nthreads)
    raise ConfigError(f"unknown scheduling policy {policy!r}")


def _miss_fraction(struct_bytes: "np.ndarray | float", l2_bytes: float):
    """Fraction of accesses to a structure of given size that miss L2."""
    return np.clip(1.0 - l2_bytes / np.maximum(struct_bytes, 1.0), 0.0, 1.0)


def _thread_table_sizes(
    partition: ThreadPartition, flop: np.ndarray, ncols: int
) -> "tuple[np.ndarray, float]":
    """Per-row hash-table size under the kernel's actual sizing rule.

    Each thread allocates ONE table sized by the maximum flop of the rows it
    owns (Fig. 7), so every row *in that thread* probes a table of that
    size.  Returns ``(per_row_size, total_table_entries)``; the latter sums
    one table per thread (the scratch footprint).
    """
    sizes = np.ones(len(flop), dtype=np.float64)
    total_entries = 0.0
    for tid in range(partition.nthreads):
        cap = 0.0
        for s, e in partition.rows_of(tid):
            if e > s:
                cap = max(cap, float(flop[s:e].max(initial=0.0)))
        bound = min(cap, float(max(ncols, 1)))
        size = float(1 << int(np.ceil(np.log2(bound + 1.0 + 1e-12)))) if bound > 0 else 1.0
        if size <= bound:  # exact powers of two: strictly-greater rule
            size *= 2.0
        total_entries += size
        for s, e in partition.rows_of(tid):
            sizes[s:e] = size
    return sizes, total_entries


def _log2c(x: np.ndarray) -> np.ndarray:
    return np.log2(np.maximum(x, 2.0))


def _finalize(
    algorithm: str,
    q: ProblemQuantities,
    machine: MachineSpec,
    partition: ThreadPartition,
    cycles_row: np.ndarray,
    serial_cycles: float,
    traffic: "list[TrafficItem]",
    temp_bytes: float,
    phases: int,
) -> CostParts:
    per_thread = partition.thread_loads(cycles_row / machine.kernel.ipc)
    return CostParts(
        algorithm=algorithm,
        per_thread_cycles=per_thread,
        serial_cycles=serial_cycles / machine.kernel.ipc,
        traffic=traffic,
        temp_bytes=temp_bytes,
        sched_iterations=q.nrows,
        phases=phases,
        partition=partition,
    )


# ---------------------------------------------------------------------------
# Individual algorithm models
# ---------------------------------------------------------------------------

def _hash_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    sort_output: bool,
    scheduling: str,
    vectorized: bool,
) -> CostParts:
    k = machine.kernel
    partition = _make_partition(scheduling, q, nthreads)
    # Load factors against the table each row *actually* probes: one table
    # per thread, sized by the thread's max flop (Fig. 7).
    table_size_row, total_table_entries = _thread_table_sizes(
        partition, q.flop, q.ncols
    )
    load = np.minimum(
        np.divide(q.nnz_c, table_size_row, out=np.zeros_like(q.nnz_c),
                  where=table_size_row > 0),
        0.95,
    )
    c = 0.5 * (1.0 + 1.0 / (1.0 - load))
    if vectorized:
        lanes = max(1, machine.vector_bits // 32)
        cluster = VEC_CLUSTER_GAMMA * np.maximum(load - VEC_CLUSTER_ONSET, 0.0) ** 2 * lanes
        probes = 1.0 + (c - 1.0) / lanes + cluster
        probe_cycles = probes * k.vector_probe
    else:
        probe_cycles = c * k.hash_probe
    sym = q.flop * probe_cycles
    num = q.flop * (probe_cycles + k.hash_accumulate)
    write = q.nnz_c * k.write_entry
    cycles_row = sym + num + write
    if sort_output:
        cycles_row = cycles_row + q.nnz_c * _log2c(q.nnz_c) * k.sort_cmp

    # Tables larger than the cache push probe traffic to DRAM (G500 hub
    # rows on KNL; Haswell's L3 absorbs all but the largest).
    table_bytes_row = table_size_row * ENTRY_BYTES
    miss = _miss_fraction(table_bytes_row, machine.accumulator_capacity_bytes)
    spill_bytes = (
        float((miss * q.flop).sum()) * 2.0 * CACHE_LINE * HASH_SPILL_LOCALITY
    )

    traffic = [
        TrafficItem("read A (2 phases)", 2.0 * q.nnz_a * ENTRY_BYTES, STREAM_STANZA),
        TrafficItem(
            "read B symbolic", q.total_flop * INDEX_BYTES,
            max(INDEX_BYTES, q.mean_b_row * INDEX_BYTES),
        ),
        TrafficItem(
            "read B numeric", q.total_flop * ENTRY_BYTES, q.b_row_stanza_bytes()
        ),
        TrafficItem("write C", q.output_bytes(), STREAM_STANZA),
        TrafficItem("hash-table spill", spill_bytes, CACHE_LINE),
    ]
    temp = total_table_entries * ENTRY_BYTES
    return _finalize(
        "hashvec" if vectorized else "hash",
        q, machine, partition, cycles_row, 0.0, traffic, temp, phases=2,
    )


def _heap_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    scheduling: str,
) -> CostParts:
    k = machine.kernel
    partition = _make_partition(scheduling, q, nthreads)
    # Eq. (1): every extracted product pays a log(heap size) heap operation.
    cycles_row = q.flop * _log2c(q.nnz_a_row) * k.heap_op
    cycles_row = cycles_row + q.nnz_c * k.write_entry

    heap_bytes_row = q.nnz_a_row * 16.0  # (col, src, pos) nodes
    miss = _miss_fraction(heap_bytes_row, machine.accumulator_capacity_bytes)
    spill_bytes = float((miss * q.flop).sum()) * 16.0

    traffic = [
        TrafficItem("read A", q.nnz_a * ENTRY_BYTES, STREAM_STANZA),
        # The k-way merge consumes B one element at a time from nnz(a_i*)
        # interleaved rows: line-granular, fine-grained access.  This is the
        # §5.3.2 observation that Heap cannot exploit MCDRAM bandwidth.
        TrafficItem(
            "read B (fine-grained merge)",
            q.total_flop * ENTRY_BYTES,
            min(CACHE_LINE, q.b_row_stanza_bytes()),
        ),
        # One-phase: rows land in a thread buffer, then are copied into the
        # final CSR once sizes are known.
        TrafficItem("write C (buffer+copy)", 2.0 * q.output_bytes(), STREAM_STANZA),
        TrafficItem("heap spill", spill_bytes, CACHE_LINE),
    ]
    # One-phase temp output buffers are flop-bounded — the "larger memory
    # usage" of §4.2.3 that (a) needs parallel deallocation (Fig. 9) and
    # (b) overflows MCDRAM at edge factor 64 (Fig. 10).
    temp = q.total_flop * ENTRY_BYTES
    return _finalize(
        "heap", q, machine, partition, cycles_row, 0.0, traffic, temp, phases=1
    )


def _spa_family_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    sort_output: bool,
    scheduling: str,
    algorithm: str,
) -> CostParts:
    k = machine.kernel
    if algorithm == "mkl":
        phases, row_overhead, serial_per_row = 2, k.mkl_row_overhead, 80.0
    elif algorithm == "mkl_inspector":
        phases, row_overhead, serial_per_row = 1, 0.35 * k.mkl_row_overhead, 40.0
    else:  # plain spa
        phases, row_overhead, serial_per_row = 1, 60.0, 0.0
    partition = _make_partition(scheduling, q, nthreads)

    spa_resident_bytes = float(q.ncols) * 12.0
    touch_scale = 1.0 if spa_resident_bytes <= 32 * 1024 else 2.5
    touch = q.flop * k.spa_touch * touch_scale * (1.6 if phases == 2 else 1.0)
    write = q.nnz_c * k.write_entry
    cycles_row = touch + write + row_overhead
    if sort_output:
        cycles_row = cycles_row + q.nnz_c * _log2c(q.nnz_c) * k.sort_cmp

    # The SPA is a dense array of the full column dimension: it stays fast
    # only while it fits in cache — MKL's small-matrix sweet spot.
    spa_bytes = float(q.ncols) * 12.0
    miss = float(_miss_fraction(spa_bytes, machine.accumulator_capacity_bytes))
    spill_bytes = miss * q.total_flop * CACHE_LINE * phases * SPA_SPILL_LOCALITY

    traffic = [
        TrafficItem(
            f"read A ({phases} phases)", phases * q.nnz_a * ENTRY_BYTES, STREAM_STANZA
        ),
        TrafficItem(
            f"read B ({phases} phases)",
            phases * q.total_flop * ENTRY_BYTES,
            q.b_row_stanza_bytes(),
        ),
        TrafficItem("write C", q.output_bytes(), STREAM_STANZA),
        TrafficItem("SPA spill", spill_bytes, CACHE_LINE),
    ]
    temp = spa_bytes * nthreads
    return _finalize(
        algorithm, q, machine, partition, cycles_row,
        serial_per_row * q.nrows, traffic, temp, phases=phases,
    )


def _kokkos_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    scheduling: str,
) -> CostParts:
    k = machine.kernel
    partition = _make_partition(scheduling, q, nthreads)
    # First level sized from the mean row: heavy rows chain.
    mean_flop = max(q.total_flop / max(q.nrows, 1), 1.0)
    l1_size = float(1 << int(np.ceil(np.log2(mean_flop + 1.0))))
    chain = 1.0 + q.nnz_c / l1_size
    cycles_row = q.flop * chain * k.kokkos_step * 1.8  # ~two passes
    cycles_row = cycles_row + q.nnz_c * k.write_entry + 150.0  # per-row pool mgmt

    pool_bytes_row = np.maximum(q.nnz_c, l1_size) * 20.0
    miss = _miss_fraction(pool_bytes_row, machine.accumulator_capacity_bytes)
    spill_bytes = (
        float((miss * q.flop).sum()) * 2.0 * CACHE_LINE * KOKKOS_SPILL_LOCALITY
    )

    traffic = [
        TrafficItem("read A (2 phases)", 2.0 * q.nnz_a * ENTRY_BYTES, STREAM_STANZA),
        TrafficItem(
            "read B (2 phases)", 2.0 * q.total_flop * ENTRY_BYTES,
            q.b_row_stanza_bytes(),
        ),
        TrafficItem("write C", q.output_bytes(), STREAM_STANZA),
        TrafficItem("hashmap spill", spill_bytes, CACHE_LINE),
    ]
    temp = (l1_size * 20.0 + float(1 << 20)) * nthreads
    return _finalize(
        "kokkos", q, machine, partition, cycles_row, 0.0, traffic, temp, phases=2
    )


def _esc_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    scheduling: str,
) -> CostParts:
    k = machine.kernel
    partition = _make_partition(scheduling, q, nthreads)
    # Expansion write + sort of all intermediate products + reduce.
    cycles_row = q.flop * (_log2c(q.flop) * k.sort_cmp * 0.6 + 2.0)
    cycles_row = cycles_row + q.nnz_c * k.write_entry
    traffic = [
        TrafficItem("read A", q.nnz_a * ENTRY_BYTES, STREAM_STANZA),
        TrafficItem("read B", q.total_flop * ENTRY_BYTES, q.b_row_stanza_bytes()),
        TrafficItem(
            "expanded products (write+sort r/w)",
            3.0 * q.total_flop * ENTRY_BYTES,
            STREAM_STANZA,
        ),
        TrafficItem("write C", q.output_bytes(), STREAM_STANZA),
    ]
    temp = q.total_flop * ENTRY_BYTES
    return _finalize(
        "esc", q, machine, partition, cycles_row, 0.0, traffic, temp, phases=2
    )


def _blocked_spa_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    scheduling: str,
    block_cols: int | None = None,
) -> CostParts:
    """Column-blocked SPA (Patwary et al.): the accumulator always fits in
    cache, paid for by one streaming pass over A per column block."""
    k = machine.kernel
    partition = _make_partition(scheduling, q, nthreads)
    if block_cols is None:
        # size the block so the SPA occupies ~half of L2
        block_cols = max(int(machine.l2_per_core_bytes // 24), 256)
    nblocks = max(1, -(-q.ncols // block_cols))
    # a blocked SPA is L2-resident (that is the point) but NOT L1-resident:
    # random touches pay L2 latency, ~2.5x the L1-resident cost the plain
    # spa_touch constant assumes
    touch = k.spa_touch * (1.0 if block_cols * 12.0 <= 32 * 1024 else 2.5)
    cycles_row = (
        q.flop * touch
        + q.nnz_c * k.write_entry
        # each block's harvest sorts its slice of the row
        + q.nnz_c * _log2c(q.nnz_c / nblocks) * k.sort_cmp * 0.6
        + 120.0 * nblocks  # per-(row, block) loop restart
    )
    traffic = [
        # A is re-streamed once per column block
        TrafficItem(
            f"read A x{nblocks} blocks",
            nblocks * q.nnz_a * ENTRY_BYTES,
            STREAM_STANZA,
        ),
        # each intermediate product is read once, but the per-visit run is
        # the block-local slice of the B row
        TrafficItem(
            "read B (block slices)",
            q.total_flop * ENTRY_BYTES,
            max(ENTRY_BYTES, q.b_row_stanza_bytes() / nblocks),
        ),
        # one preprocessing pass partitions B by column block
        TrafficItem("partition B", 2.0 * q.nnz_b * ENTRY_BYTES, STREAM_STANZA),
        TrafficItem("write C", q.output_bytes(), STREAM_STANZA),
        # the point of blocking: no SPA spill term at all
    ]
    temp = float(block_cols) * 12.0 * nthreads
    return _finalize(
        "blocked_spa", q, machine, partition, cycles_row, 0.0, traffic, temp,
        phases=nblocks,
    )


def _merge_cost(
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    scheduling: str,
) -> CostParts:
    """Iterative row merging (ViennaCL-style): every product is touched
    ceil(log2 nnz(a_i*)) times, but in fully streaming order — cheap per
    touch and bandwidth-friendly (unlike Heap's pointer chasing)."""
    k = machine.kernel
    partition = _make_partition(scheduling, q, nthreads)
    rounds = np.ceil(_log2c(q.nnz_a_row))
    # streaming compare/select/advance with ~50% branch mispredict on the
    # take-from-which-run decision: cheaper than a heap sift, but not free
    merge_op = 0.7 * k.heap_op
    cycles_row = q.flop * rounds * merge_op + q.nnz_c * k.write_entry
    # intermediate merge buffers stream through cache; rows whose working
    # set exceeds it spill sequentially (long stanzas — still cheap)
    buf_bytes_row = q.flop * ENTRY_BYTES * 2.0
    miss = _miss_fraction(buf_bytes_row, machine.accumulator_capacity_bytes)
    spill = float((miss * q.flop * rounds).sum()) * 2.0 * ENTRY_BYTES
    traffic = [
        TrafficItem("read A", q.nnz_a * ENTRY_BYTES, STREAM_STANZA),
        TrafficItem("read B", q.total_flop * ENTRY_BYTES, q.b_row_stanza_bytes()),
        TrafficItem("merge buffer spill", spill, STREAM_STANZA),
        TrafficItem("write C (buffer+copy)", 2.0 * q.output_bytes(), STREAM_STANZA),
    ]
    temp = q.total_flop * ENTRY_BYTES
    return _finalize(
        "merge", q, machine, partition, cycles_row, 0.0, traffic, temp, phases=1
    )


@dataclass(frozen=True)
class FusionGain:
    """Predicted traffic benefit of fusing a trailing elementwise mask.

    Compares ``masked_spgemm(a, b, mask)`` against the unfused pipeline
    ``C = a @ b; C .* mask``: the product flop is identical (the mask gates
    by output coordinate, so every surviving entry still receives all its
    products), but the unfused pipeline writes the full product, then
    re-reads it and the mask to filter, while the fused kernel only ever
    writes the survivors.
    """

    #: bytes the unfused pipeline moves on the output path: write full C,
    #: re-read C and the mask for the filter, write the masked result
    unfused_bytes: float
    #: bytes the fused kernel moves: read the mask structure once while
    #: gating, write only the survivors
    fused_bytes: float
    #: output entries that never exist under fusion (dropped pre-sort)
    saved_output_elements: float
    #: comparison elements the output sort never sees under fusion
    saved_sort_elements: float

    @property
    def saved_bytes(self) -> float:
        return self.unfused_bytes - self.fused_bytes

    @property
    def traffic_ratio(self) -> float:
        """Unfused over fused output-path bytes (>= 1 when fusion helps)."""
        return self.unfused_bytes / self.fused_bytes if self.fused_bytes else 1.0


def fusion_gain(q: ProblemQuantities, mask_nnz: int) -> FusionGain:
    """Price the mask-fusion saving from exact symbolic quantities.

    ``q`` must have been computed with ``mask=`` (so the exact masked
    output size is known).  Only the *output-path* traffic is compared —
    operand reads and the expansion itself are common to both pipelines.
    """
    full = q.output_bytes()
    kept = q.masked_output_bytes()
    unfused = (
        full                         # write the full product
        + full                       # re-read it for the filter step
        + mask_nnz * INDEX_BYTES     # read the mask structure
        + kept                       # write the filtered result
    )
    fused = mask_nnz * INDEX_BYTES + kept
    saved_elems = q.masked_saved_output_elements
    return FusionGain(
        unfused_bytes=float(unfused),
        fused_bytes=float(fused),
        saved_output_elements=float(saved_elems),
        saved_sort_elements=float(saved_elems),
    )


#: Feature names of the calibration decomposition, in coefficient order.
#: Each cost curve is priced as a non-negative linear combination of these
#: terms; :mod:`repro.autotune` fits the per-machine coefficients.
CALIBRATION_TERMS = ("cycles", "traffic_bytes", "rows", "base")


def cost_features(
    algorithm: str,
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int = 1,
    *,
    sort_output: bool = True,
) -> "dict[str, float]":
    """Calibration feature vector of one algorithm execution.

    Collapses :func:`build_cost`'s exact decomposition into the terms whose
    free per-machine coefficients the :mod:`repro.autotune` calibration pass
    fits against measured wall time:

    * ``cycles`` — critical-path compute cycles (slowest thread + serial);
    * ``traffic_bytes`` — total modeled DRAM traffic;
    * ``rows`` — scheduler iterations (per-row dispatch overhead, the term
      that dominates interpreted faithful kernels);
    * ``base`` — constant 1.0 (per-call overhead).

    The absolute scale of each term is machine-model units; calibration
    owns the mapping to seconds, so only the *relative* shape across
    problems matters here.
    """
    parts = build_cost(
        algorithm, q, machine, nthreads, sort_output=sort_output
    )
    per_thread = parts.per_thread_cycles
    critical = float(per_thread.max()) if per_thread.size else 0.0
    return {
        "cycles": critical + float(parts.serial_cycles),
        "traffic_bytes": float(parts.total_traffic_bytes),
        "rows": float(parts.sched_iterations),
        "base": 1.0,
    }


def build_cost(
    algorithm: str,
    q: ProblemQuantities,
    machine: MachineSpec,
    nthreads: int,
    *,
    sort_output: bool = True,
    scheduling: str | None = None,
) -> CostParts:
    """Build the :class:`CostParts` of one algorithm execution.

    ``scheduling=None`` selects each algorithm's native policy: the paper's
    flop-balanced static split for hash/hashvec/heap/kokkos/esc, plain
    row-static for the MKL family (the proxy for its observed load-imbalance
    behaviour).  Figure-9-style experiments override it explicitly.
    """
    if nthreads < 1:
        raise ConfigError(f"nthreads must be >= 1, got {nthreads}")
    if algorithm in ("hash", "hashvec"):
        return _hash_cost(
            q, machine, nthreads,
            sort_output=sort_output,
            scheduling=scheduling or "balanced",
            vectorized=(algorithm == "hashvec"),
        )
    if algorithm == "heap":
        return _heap_cost(q, machine, nthreads, scheduling=scheduling or "balanced")
    if algorithm in ("spa", "mkl", "mkl_inspector"):
        return _spa_family_cost(
            q, machine, nthreads,
            sort_output=sort_output and algorithm != "mkl_inspector",
            scheduling=scheduling or "static",
            algorithm=algorithm,
        )
    if algorithm == "kokkos":
        return _kokkos_cost(q, machine, nthreads, scheduling=scheduling or "balanced")
    if algorithm == "esc":
        return _esc_cost(q, machine, nthreads, scheduling=scheduling or "balanced")
    if algorithm == "blocked_spa":
        return _blocked_spa_cost(
            q, machine, nthreads, scheduling=scheduling or "balanced"
        )
    if algorithm == "merge":
        return _merge_cost(q, machine, nthreads, scheduling=scheduling or "balanced")
    raise ConfigError(
        f"no cost model for algorithm {algorithm!r}; modeled: {MODELED_ALGORITHMS}"
    )
