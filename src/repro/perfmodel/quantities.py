"""Exact per-row algorithmic quantities of a multiplication ``C = A B``.

Everything the cost models need is computed **from the actual matrices**,
vectorized, and cached in one object so a benchmark sweep over nine
algorithms pays the (symbolic) analysis once:

* ``flop`` — per-row multiplication counts (Fig. 6's FLOPS vector);
* ``nnz_c`` — exact per-row output sizes (vectorized ESC symbolic phase);
* ``hash_table_size`` — per-row ``lowest_p2`` table sizes per Fig. 7;
* ``hash_load`` / ``collision_factor`` — per-row load factors and the
  expected linear-probing probe counts (Knuth's classic
  ``(1 + 1/(1-alpha))/2`` for successful search), the paper's ``c`` in
  Eq. (2);
* stanza statistics of the B-row accesses that drive the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.stats import flop_per_row
from ..core.symbolic import masked_row_nnz, symbolic_row_nnz

__all__ = [
    "ProblemQuantities",
    "ENTRY_BYTES",
    "INDEX_BYTES",
    "INDPTR_BYTES",
    "VALUE_BYTES",
    "PAPER_ENTRY_BYTES",
]

# Byte widths derived from the canonical numeric contract (matrix/csr.py),
# so the traffic model tracks the declared dtypes instead of restating
# them: change the contract and every modeled volume follows.
#: bytes of one row-pointer entry.
INDPTR_BYTES = int(np.dtype(INDPTR_DTYPE).itemsize)
#: bytes of a bare column index (symbolic phase traffic).
INDEX_BYTES = int(np.dtype(INDEX_DTYPE).itemsize)
#: bytes of one stored value.
VALUE_BYTES = int(np.dtype(VALUE_DTYPE).itemsize)
#: bytes of one stored entry (column index + value) under the contract.
ENTRY_BYTES = INDEX_BYTES + VALUE_BYTES

#: bytes of one stored entry as the *paper's* codes lay it out (32-bit
#: column index + 64-bit value) — kept for reporting modeled volumes in
#: the paper's layout alongside ours, never used by the live model.
PAPER_ENTRY_BYTES = 12  # repro-lint: disable=numeric-bytes-model

#: cap on the load factor fed to the probing formula — a table one slot
#: short of full would otherwise produce an unbounded probe estimate.
LOAD_CAP = 0.95


def _lowest_p2_array(x: np.ndarray) -> np.ndarray:
    """Vectorized minimum power of two *strictly greater* than x (>=1)."""
    x = np.maximum(np.asarray(x, dtype=np.int64), 0)
    # ceil(log2(x+1)) bits; 2**bits > x.
    bits = np.ceil(np.log2(x + 1.0 + 1e-12)).astype(np.int64)
    out = np.int64(1) << np.maximum(bits, 0)
    # Enforce strictness for exact powers of two (log2 exact).
    out = np.where(out <= x, out * 2, out)
    return np.maximum(out, 1)


@dataclass
class ProblemQuantities:
    """Cached exact quantities of one multiplication ``C = A B``."""

    nrows: int
    ncols: int
    nnz_a: int
    nnz_b: int
    #: per-row multiplication counts
    flop: np.ndarray
    #: per-row exact output sizes
    nnz_c: np.ndarray
    #: per-row nnz of A (heap sizes, Eq. 1 log factor)
    nnz_a_row: np.ndarray
    #: mean nnz of the B rows actually referenced (stanza length driver)
    mean_b_row: float
    #: per-row exact output sizes under a fused mask (None when unmasked)
    nnz_c_masked: np.ndarray | None = None

    # Derived, computed lazily -------------------------------------------------
    _table_size: np.ndarray | None = field(default=None, repr=False)
    _collision: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def compute(
        cls,
        a: CSR,
        b: CSR,
        *,
        mask: CSR | None = None,
        complement: bool = False,
    ) -> "ProblemQuantities":
        """Analyze ``a @ b`` (exact; cost ~ one ESC symbolic pass).

        With ``mask=``, also computes the exact per-row output sizes of the
        fused masked product ``(a b)⟨mask⟩`` — the flop stays that of the
        full product (the mask gates by output coordinate, every surviving
        entry still receives all its products), but the output and sort
        volumes shrink to ``nnz_c_masked``.
        """
        flop = flop_per_row(a, b).astype(np.float64)
        nnz_c = symbolic_row_nnz(a, b).astype(np.float64)
        total_flop = float(flop.sum())
        mean_b_row = total_flop / a.nnz if a.nnz else 0.0
        nnz_c_masked = None
        if mask is not None:
            nnz_c_masked = masked_row_nnz(
                a, b, mask, complement=complement
            ).astype(np.float64)
        return cls(
            nrows=a.nrows,
            ncols=b.ncols,
            nnz_a=a.nnz,
            nnz_b=b.nnz,
            flop=flop,
            nnz_c=nnz_c,
            nnz_a_row=a.row_nnz().astype(np.float64),
            mean_b_row=mean_b_row,
            nnz_c_masked=nnz_c_masked,
        )

    # ------------------------------------------------------------------
    @property
    def total_flop(self) -> float:
        return float(self.flop.sum())

    @property
    def total_nnz_c(self) -> float:
        return float(self.nnz_c.sum())

    @property
    def compression_ratio(self) -> float:
        """``flop / nnz(C)`` — the x-axis of Figs. 14/15/17."""
        t = self.total_nnz_c
        return self.total_flop / t if t else 0.0

    def hash_table_size(self) -> np.ndarray:
        """Per-row hash table sizes per Fig. 7 (clipped to ncols, next p2).

        The executable kernel sizes one table per *thread* (max over its
        rows); per-row sizes are the per-row view of the same rule and what
        the load-factor statistics need.
        """
        if self._table_size is None:
            bound = np.minimum(self.flop, float(max(self.ncols, 1)))
            self._table_size = _lowest_p2_array(bound).astype(np.float64)
        return self._table_size

    def hash_load(self) -> np.ndarray:
        """Per-row hash load factor ``alpha_i = nnz(c_i*) / table_size_i``."""
        size = self.hash_table_size()
        return np.minimum(np.divide(
            self.nnz_c, size, out=np.zeros_like(self.nnz_c), where=size > 0
        ), LOAD_CAP)

    def collision_factor(self) -> np.ndarray:
        """Per-row expected probes per access — the paper's ``c`` (Eq. 2).

        Linear-probing successful-search estimate ``(1 + 1/(1-alpha)) / 2``
        with the load capped at :data:`LOAD_CAP`; equals 1.0 for an empty
        table (no collisions).

        Note (measured in ``bench_ablation_table_sizing``): this textbook
        estimate assumes random slot targets.  The kernels' odd
        multiplicative hash is a *bijection* mod the table size, so when the
        table covers the whole column space (small matrices after the
        Fig. 7 clip) the real collision count is exactly zero — the
        estimate is an upper bound there.  For the paper-scale regime
        (tables far smaller than the column count) the estimate applies.
        """
        if self._collision is None:
            alpha = self.hash_load()
            self._collision = 0.5 * (1.0 + 1.0 / (1.0 - alpha))
        return self._collision

    def mean_collision_factor(self) -> float:
        """Flop-weighted mean of the per-row collision factors."""
        if self.total_flop == 0:
            return 1.0
        return float((self.collision_factor() * self.flop).sum() / self.total_flop)

    def b_row_stanza_bytes(self, entry_bytes: int = ENTRY_BYTES) -> float:
        """Average contiguous run length (bytes) of the B-row accesses."""
        return max(float(entry_bytes), self.mean_b_row * entry_bytes)

    def input_bytes(self) -> float:
        """Resident size of both operands."""
        return (
            (self.nnz_a + self.nnz_b) * ENTRY_BYTES
            + (self.nrows + 1) * INDPTR_BYTES * 2
        )

    def output_bytes(self) -> float:
        """Resident size of the output."""
        return self.total_nnz_c * ENTRY_BYTES + (self.nrows + 1) * INDPTR_BYTES

    # Masked-product accounting ----------------------------------------------
    @property
    def total_nnz_c_masked(self) -> float:
        """Exact output size of the fused masked product (requires mask)."""
        if self.nnz_c_masked is None:
            raise ValueError("quantities were computed without a mask")
        return float(self.nnz_c_masked.sum())

    def masked_output_bytes(self) -> float:
        """Resident size of the masked output."""
        return (
            self.total_nnz_c_masked * ENTRY_BYTES
            + (self.nrows + 1) * INDPTR_BYTES
        )

    @property
    def masked_saved_output_elements(self) -> float:
        """Entries fusion keeps off the output (and sort) path."""
        return self.total_nnz_c - self.total_nnz_c_masked

    def masked_saved_output_bytes(self) -> float:
        """Output bytes fusion never writes (the dropped entries)."""
        return self.masked_saved_output_elements * ENTRY_BYTES
