"""Operation-level SpGEMM performance simulator.

This package converts **exact algorithmic quantities** of a concrete
multiplication (per-row flop, per-row output nnz, hash-table load factors,
heap sizes, sort volumes, bytes moved per phase) into simulated execution
times on a :class:`repro.machine.MachineSpec`, regenerating the paper's
MFLOPS figures at thread counts and memory configurations that pure Python
cannot exercise directly.

Pipeline::

    ProblemQuantities.compute(A, B)          # exact, vectorized, cached
        -> algorithm cost builder            # perfmodel.cost
        -> CostParts (cycles/thread, traffic, temp memory, dispatches)
        -> simulate_spgemm(...)              # perfmodel.simulate
        -> SimReport (seconds, MFLOPS, breakdown)

The per-thread cycle sums use the *actual* partitions produced by
:mod:`repro.core.scheduler`, so load imbalance is exact, not modeled.  The
closed-form operation counts are cross-validated against the instrumented
executable kernels in ``tests/test_perfmodel.py``.
"""

from .quantities import ProblemQuantities
from .cost import CostParts, FusionGain, TrafficItem, build_cost, fusion_gain
from .simulate import SimConfig, SimReport, simulate_spgemm, mflops_series
from .validate import CountCheck, ValidationReport, validate_counts

__all__ = [
    "ProblemQuantities",
    "CostParts",
    "FusionGain",
    "TrafficItem",
    "build_cost",
    "fusion_gain",
    "SimConfig",
    "SimReport",
    "simulate_spgemm",
    "mflops_series",
    "CountCheck",
    "ValidationReport",
    "validate_counts",
]
