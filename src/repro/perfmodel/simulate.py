"""The simulator: CostParts + machine + configuration -> time and MFLOPS.

Time composition (per run)::

    T = T_compute + T_memory + T_schedule + T_alloc + phases * fork_join

* ``T_compute`` — makespan of the per-thread cycle sums (exact partition
  loads) at the machine clock, inflated by the SMT slowdown when threads
  oversubscribe cores, plus the Amdahl serial component;
* ``T_memory`` — each traffic item priced at the aggregate stanza bandwidth
  of its access pattern under the configured memory mode, with the working
  set (inputs + output + temporaries) determining MCDRAM-cache residency;
* ``T_schedule`` — the Fig. 2 loop-scheduling model over the row loop;
* ``T_alloc`` — the Fig. 4 allocator model for thread-private scratch
  (single or parallel scheme) and the output allocation.

Compute and memory are summed rather than overlapped: SpGEMM's dependent
loads give little overlap in practice, and the sum reproduces the paper's
sorted-vs-unsorted gaps where a pure roofline max would hide them.

MFLOPS follows the paper's convention: ``2 * flop / time`` (each
intermediate product is one multiply plus one add).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ConfigError
from ..machine.allocator import allocation_cost, deallocation_cost
from ..machine.memory import MemoryMode, aggregate_bandwidth
from ..machine.scheduling import loop_scheduling_cost
from ..machine.spec import KNL, MachineSpec
from ..matrix.csr import CSR
from .cost import CostParts, build_cost
from .quantities import ProblemQuantities

__all__ = ["SimConfig", "SimReport", "simulate_spgemm", "mflops_series"]


@dataclass(frozen=True)
class SimConfig:
    """One simulated execution environment."""

    machine: MachineSpec = KNL
    #: thread count; None = all hardware threads
    nthreads: int | None = None
    memory_mode: "MemoryMode | str" = MemoryMode.CACHE
    sort_output: bool = True
    #: None = the algorithm's native policy (see build_cost)
    scheduling: str | None = None
    #: allocator scheme for thread-private scratch: "parallel" (the paper's
    #: optimization) or "single"
    memory_scheme: str = "parallel"
    allocator: str = "tbb"

    @property
    def threads(self) -> int:
        return self.machine.max_threads if self.nthreads is None else self.nthreads

    def with_(self, **kwargs) -> "SimConfig":
        """Functional update, e.g. ``cfg.with_(nthreads=64)``."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SimReport:
    """Simulated outcome of one SpGEMM execution."""

    algorithm: str
    seconds: float
    mflops: float
    breakdown: "dict[str, float]" = field(default_factory=dict)
    config: SimConfig | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v * 1e3:.3f}ms" for k, v in self.breakdown.items())
        return (
            f"{self.algorithm}: {self.seconds * 1e3:.3f} ms "
            f"({self.mflops:.0f} MFLOPS; {parts})"
        )


def simulate_spgemm(
    algorithm: str,
    a: "CSR | None" = None,
    b: "CSR | None" = None,
    config: SimConfig = SimConfig(),
    *,
    quantities: ProblemQuantities | None = None,
) -> SimReport:
    """Simulate one SpGEMM execution and return time + MFLOPS.

    Either pass the operand matrices, or pass a pre-computed
    ``quantities`` (recommended in sweeps — the symbolic analysis is the
    expensive part and is identical across algorithms and configs).
    """
    if quantities is None:
        if a is None or b is None:
            raise ConfigError("need operand matrices or precomputed quantities")
        quantities = ProblemQuantities.compute(a, b)
    q = quantities
    machine = config.machine
    t = config.threads
    if t < 1 or t > machine.max_threads:
        raise ConfigError(
            f"nthreads={t} outside [1, {machine.max_threads}] for {machine.name}"
        )

    parts = build_cost(
        algorithm, q, machine, t,
        sort_output=config.sort_output,
        scheduling=config.scheduling,
    )

    # --- compute ----------------------------------------------------------
    spc = machine.seconds_per_cycle()
    slowdown = machine.smt_slowdown(t)
    t_compute = float(parts.per_thread_cycles.max(initial=0.0)) * spc * slowdown
    t_serial = parts.serial_cycles * spc

    # --- memory -----------------------------------------------------------
    working_set = q.input_bytes() + q.output_bytes() + parts.temp_bytes
    t_memory = 0.0
    for item in parts.traffic:
        if item.nbytes <= 0:
            continue
        bw = aggregate_bandwidth(
            machine, item.stanza_bytes, t, config.memory_mode,
            working_set_bytes=working_set,
        )
        t_memory += item.nbytes / bw

    # --- scheduling (per phase, the row loop is re-dispatched) ------------
    policy = config.scheduling or parts.partition.policy
    t_sched = parts.phases * loop_scheduling_cost(
        machine, policy, parts.sched_iterations, t
    )
    if parts.partition is not None and parts.partition.chunks is not None:
        # Chunked policies (dynamic/guided) dequeue inside the kernel loop:
        # every dispatch bounces the contended chunk counter (see
        # SchedulingSpec.dispatch_stall_s) — the overhead Fig. 9 shows.
        t_sched += (
            parts.phases
            * parts.partition.num_dispatches()
            * machine.sched.dispatch_stall_s
        )

    # --- allocation / deallocation ----------------------------------------
    t_alloc = (
        allocation_cost(
            machine, parts.temp_bytes,
            allocator=config.allocator, scheme=config.memory_scheme, nthreads=t,
        )
        + deallocation_cost(
            machine, parts.temp_bytes,
            allocator=config.allocator, scheme=config.memory_scheme, nthreads=t,
        )
        + allocation_cost(
            machine, q.output_bytes(), allocator=config.allocator, scheme="single"
        )
    )

    total = t_compute + t_serial + t_memory + t_sched + t_alloc
    flops = 2.0 * q.total_flop
    return SimReport(
        algorithm=algorithm,
        seconds=total,
        mflops=flops / total / 1e6 if total > 0 else 0.0,
        breakdown={
            "compute": t_compute,
            "serial": t_serial,
            "memory": t_memory,
            "sched": t_sched,
            "alloc": t_alloc,
        },
        config=config,
    )


def mflops_series(
    algorithms: "list[str]",
    a: CSR,
    b: CSR,
    config: SimConfig = SimConfig(),
) -> "dict[str, float]":
    """Simulate several algorithms on one product (shared analysis pass)."""
    q = ProblemQuantities.compute(a, b)
    return {
        alg: simulate_spgemm(alg, config=config, quantities=q).mflops
        for alg in algorithms
    }
