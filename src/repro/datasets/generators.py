"""Parametric structure-class generators behind the SuiteSparse proxies.

Each generator produces a CSR matrix in one of the structural families the
paper's 26-matrix suite spans:

* :func:`banded_fem` — clustered band matrices (structural/FEM problems:
  cant, consph, hood, pwtk, shipsec1, pdb1HYS, ...): high nnz/row, entries
  concentrated near the diagonal in small dense blocks, high compression
  ratio when squared;
* :func:`mesh2d` / :func:`mesh3d` — 5-point/7-point stencils (mc2depi,
  poisson3Da-like): low uniform nnz/row, low compression ratio;
* :func:`powerlaw_graph` — R-MAT G500 graphs (webbase-1M, wb-edu): heavy
  row skew, low compression ratio;
* :func:`cage_like` — banded + random mixture (cage12/cage15 DNA models):
  uniform moderate nnz/row;
* :func:`econ_like` — block-random economics/circuit style (mac_econ,
  scircuit, patents_main): mild skew, very sparse;
* :func:`quasi_random` — uniform random (m133-b3 style regular patterns).
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..matrix.coo import COO
from ..matrix.csr import CSR
from ..rmat.generator import G500_PARAMS, rmat
from ..semiring import PLUS_TIMES

__all__ = [
    "banded_fem",
    "mesh2d",
    "mesh3d",
    "powerlaw_graph",
    "cage_like",
    "econ_like",
    "quasi_random",
]


def _to_csr(n: int, rows, cols, vals) -> CSR:
    return COO(n, n, np.asarray(rows), np.asarray(cols), np.asarray(vals)).to_csr(
        PLUS_TIMES
    )


def _check_n(n: int) -> None:
    if n < 1:
        raise DatasetError(f"matrix dimension must be >= 1, got {n}")


def banded_fem(
    n: int,
    nnz_per_row: int,
    *,
    bandwidth: int | None = None,
    block: int = 6,
    seed: int = 0,
) -> CSR:
    """Block-structured band matrix: FEM-style structure.

    The matrix is built on a *block graph*: rows come in groups of ``block``
    consecutive rows (the degrees of freedom of one mesh node) that all
    connect to the same set of block-columns, drawn near the diagonal with a
    normal spread of ``bandwidth`` blocks and symmetrized.  Every connection
    expands to a dense ``block x block`` sub-block.

    Sharing column sets across a block's rows is what gives real FEM
    matrices their high compression ratio when squared — two-hop
    neighborhoods revisit the same blocks — which Figures 14/15 sort by.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    block = max(1, block)
    nblk = max(1, n // block)
    n = nblk * block  # trim to whole blocks
    # Out-degree in block-columns: the self block plus deg_out symmetrized
    # neighbors gives ~(1 + 2*deg_out) blocks per block-row.
    deg_out = max(1, int(round((nnz_per_row / block - 1) / 2)))
    if bandwidth is None:
        bandwidth = max(2 * deg_out * block, 8)
    band_blocks = max(1, bandwidth // block)
    bi = np.repeat(np.arange(nblk), deg_out)
    bj = bi + rng.normal(0.0, band_blocks, size=len(bi)).astype(np.int64)
    bj += (bj == bi)  # avoid duplicating the self block
    bj = np.clip(bj, 0, nblk - 1)
    brow = np.concatenate([np.arange(nblk), bi, bj])
    bcol = np.concatenate([np.arange(nblk), bj, bi])
    # Expand each block connection to a dense block x block tile.
    ii = np.tile(np.repeat(np.arange(block), block), len(brow))
    jj = np.tile(np.tile(np.arange(block), block), len(brow))
    rows = np.repeat(brow * block, block * block) + ii
    cols = np.repeat(bcol * block, block * block) + jj
    vals = rng.random(len(rows)) + 0.1
    return _to_csr(n, rows, cols, vals)


def mesh2d(nx: int, ny: int | None = None) -> CSR:
    """5-point Laplacian stencil on an ``nx x ny`` grid (n = nx*ny)."""
    _check_n(nx)
    if ny is None:
        ny = nx
    idx = np.arange(nx * ny).reshape(nx, ny)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    vals = [np.full(nx * ny, 4.0)]
    for src, dst in (
        (idx[:-1, :], idx[1:, :]),
        (idx[1:, :], idx[:-1, :]),
        (idx[:, :-1], idx[:, 1:]),
        (idx[:, 1:], idx[:, :-1]),
    ):
        rows.append(src.ravel())
        cols.append(dst.ravel())
        vals.append(np.full(src.size, -1.0))
    return _to_csr(nx * ny, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals))


def mesh3d(nx: int, ny: int | None = None, nz: int | None = None) -> CSR:
    """7-point Laplacian stencil on an ``nx x ny x nz`` grid."""
    _check_n(nx)
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    vals = [np.full(idx.size, 6.0)]
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        src, dst = idx[tuple(lo)], idx[tuple(hi)]
        for s, d in ((src, dst), (dst, src)):
            rows.append(s.ravel())
            cols.append(d.ravel())
            vals.append(np.full(s.size, -1.0))
    return _to_csr(
        nx * ny * nz, np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def powerlaw_graph(scale: int, edge_factor: int, *, seed: int = 0) -> CSR:
    """Power-law (G500 R-MAT) graph adjacency — web/citation proxies."""
    return rmat(scale, edge_factor, G500_PARAMS, seed=seed, drop_diagonal=True)


def cage_like(n: int, nnz_per_row: int, *, seed: int = 0) -> CSR:
    """Banded-plus-random mixture with uniform row occupancy (cage DNA
    matrices: every row has nearly the same count, moderate locality)."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    k_near = max(1, (5 * nnz_per_row) // 6)
    k_far = max(1, nnz_per_row - k_near)
    rows = np.repeat(np.arange(n), k_near + k_far)
    near = (
        np.repeat(np.arange(n), k_near)
        + rng.integers(-nnz_per_row, nnz_per_row + 1, size=n * k_near)
    )
    far = rng.integers(0, n, size=n * k_far)
    cols = np.concatenate(
        [near.reshape(n, k_near), far.reshape(n, k_far)], axis=1
    ).ravel()
    cols = np.clip(cols, 0, n - 1)
    vals = rng.random(len(cols)) + 0.1
    return _to_csr(n, rows, cols, vals)


def econ_like(n: int, nnz_per_row: float, *, skew: float = 1.0, seed: int = 0) -> CSR:
    """Very sparse quasi-random matrix with mildly skewed (lognormal) row
    counts (economic models, circuits, citation graphs); ``skew`` is the
    lognormal sigma of the row/column weight distributions."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    weights = rng.lognormal(0.0, skew, size=n)
    weights *= nnz_per_row * n / weights.sum()
    row_counts = np.maximum(rng.poisson(weights), 0)
    rows = np.repeat(np.arange(n), row_counts)
    # Column popularity also mildly skewed (suppliers/hub nodes).
    pop = rng.lognormal(0.0, skew, size=n)
    cols = rng.choice(n, size=len(rows), p=pop / pop.sum())
    vals = rng.random(len(rows)) + 0.1
    return _to_csr(n, rows, cols, vals)


def quasi_random(n: int, nnz_per_row: int, *, seed: int = 0) -> CSR:
    """Uniform random pattern with fixed nnz/row (regular combinatorial
    matrices such as m133-b3)."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nnz_per_row)
    cols = rng.integers(0, n, size=n * nnz_per_row)
    vals = np.ones(len(cols))
    return _to_csr(n, rows, cols, vals)
