"""Synthetic proxies for the paper's 26-matrix SuiteSparse suite (Table 2).

The SuiteSparse collection cannot be downloaded in this environment, so each
matrix is replaced by a *structural proxy*: a parametric generator tuned to
match the original's dimension class, nonzeros-per-row, and sparsity
structure (banded FEM, 2D/3D mesh stencil, power-law graph, quasi-random).
Figures 14/15/17 and Table 2 depend on exactly those properties — size,
density, compression ratio, and row skew — so the proxies preserve the
trends even though they are not the original matrices (see DESIGN.md,
"Substitutions").

By default proxies are generated at a reduced dimension (``max_n``) to keep
the full 26-matrix sweep laptop-friendly; pass ``max_n=None`` for
paper-scale sizes where feasible.

Users with network access can instead load the real matrices with
:func:`repro.matrix.io.read_matrix_market`.
"""

from .generators import (
    banded_fem,
    cage_like,
    econ_like,
    mesh2d,
    mesh3d,
    powerlaw_graph,
    quasi_random,
)
from .registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    load_suite,
)

__all__ = [
    "banded_fem",
    "cage_like",
    "econ_like",
    "mesh2d",
    "mesh3d",
    "powerlaw_graph",
    "quasi_random",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "load_suite",
]
