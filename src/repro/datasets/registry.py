"""The 26-matrix proxy suite mirroring Table 2 of the paper.

Each :class:`DatasetSpec` records the original matrix's published statistics
(n, nnz(A), flop(A²), nnz(A²) — Table 2, in raw counts) and a builder that
generates a structural proxy.  ``max_n`` caps the generated dimension (the
nnz/row density and structure class are preserved), because squaring e.g. a
16.7M-row delaunay proxy is not laptop-friendly; ``benchmarks/`` defaults to
``max_n=60_000`` and prints paper-vs-proxy statistics side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import DatasetError
from ..matrix.csr import CSR
from . import generators as g

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "load_suite"]

DEFAULT_MAX_N = 60_000


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-2 row plus its proxy generator."""

    name: str
    #: structure class: fem / mesh2d / mesh3d / cage / econ / web / random
    kind: str
    #: Table 2 statistics of the *original* matrix (raw counts)
    paper_n: int
    paper_nnz: int
    paper_flop: int
    paper_nnz_c: int
    #: builds the proxy at dimension ~min(paper_n, max_n)
    build: Callable[[int], CSR]

    @property
    def paper_nnz_per_row(self) -> float:
        return self.paper_nnz / self.paper_n

    @property
    def paper_compression_ratio(self) -> float:
        return self.paper_flop / self.paper_nnz_c


def _fem(name: str, n: int, nnz: int, flop: int, nnz_c: int, *, block: int = 6,
         band_scale: float = 2.0, seed_off: int = 0) -> DatasetSpec:
    per_row = max(1, round(nnz / n))

    def build(max_n: int) -> CSR:
        nn = min(n, max_n)
        return g.banded_fem(
            nn, per_row,
            bandwidth=max(int(band_scale * per_row), 16),
            block=block, seed=hash(name) % 65536 + seed_off,
        )

    return DatasetSpec(name, "fem", n, nnz, flop, nnz_c, build)


def _mesh2(name: str, n: int, nnz: int, flop: int, nnz_c: int) -> DatasetSpec:
    def build(max_n: int) -> CSR:
        side = int(np.sqrt(min(n, max_n)))
        return g.mesh2d(side, side)

    return DatasetSpec(name, "mesh2d", n, nnz, flop, nnz_c, build)


def _cage(name: str, n: int, nnz: int, flop: int, nnz_c: int) -> DatasetSpec:
    per_row = max(1, round(nnz / n))

    def build(max_n: int) -> CSR:
        return g.cage_like(min(n, max_n), per_row, seed=hash(name) % 65536)

    return DatasetSpec(name, "cage", n, nnz, flop, nnz_c, build)


def _econ(name: str, n: int, nnz: int, flop: int, nnz_c: int, *, skew: float = 1.5) -> DatasetSpec:
    per_row = nnz / n

    def build(max_n: int) -> CSR:
        return g.econ_like(min(n, max_n), per_row, skew=skew, seed=hash(name) % 65536)

    return DatasetSpec(name, "econ", n, nnz, flop, nnz_c, build)


def _web(name: str, n: int, nnz: int, flop: int, nnz_c: int) -> DatasetSpec:
    ef = max(1, round(nnz / n))

    def build(max_n: int) -> CSR:
        scale = int(np.log2(min(n, max_n)))
        return g.powerlaw_graph(scale, ef, seed=hash(name) % 65536)

    return DatasetSpec(name, "web", n, nnz, flop, nnz_c, build)


def _random(name: str, n: int, nnz: int, flop: int, nnz_c: int) -> DatasetSpec:
    per_row = max(1, round(nnz / n))

    def build(max_n: int) -> CSR:
        return g.quasi_random(min(n, max_n), per_row, seed=hash(name) % 65536)

    return DatasetSpec(name, "random", n, nnz, flop, nnz_c, build)


_M = 1_000_000


def _mk(spec_fn, name, n_m, nnz_m, flop_m, nnzc_m, **kw) -> DatasetSpec:
    return spec_fn(
        name,
        int(n_m * _M),
        int(nnz_m * _M),
        int(flop_m * _M),
        int(nnzc_m * _M),
        **kw,
    )


#: Table 2 of the paper, in row order, with a structure-matched proxy each.
DATASETS: "dict[str, DatasetSpec]" = {
    s.name: s
    for s in (
        _mk(_fem, "2cubes_sphere", 0.101, 1.65, 27.45, 8.97, band_scale=14.0),
        _mk(_cage, "cage12", 0.130, 2.03, 34.61, 15.23),
        _mk(_cage, "cage15", 5.155, 99.20, 2078.63, 929.02),
        _mk(_fem, "cant", 0.062, 4.01, 269.49, 17.44),
        _mk(_fem, "conf5_4-8x8-05", 0.049, 1.92, 74.76, 10.91, block=8, band_scale=8.0),
        _mk(_fem, "consph", 0.083, 6.01, 463.85, 26.54),
        _mk(_fem, "cop20k_A", 0.121, 2.62, 79.88, 18.71, band_scale=20.0),
        _mk(_mesh2, "delaunay_n24", 16.777, 100.66, 633.91, 347.32),
        _mk(_fem, "filter3D", 0.106, 2.71, 85.96, 20.16, band_scale=16.0),
        _mk(_fem, "hood", 0.221, 10.77, 562.03, 34.24),
        _mk(_random, "m133-b3", 0.200, 0.80, 3.20, 3.18),
        _mk(_econ, "mac_econ_fwd500", 0.207, 1.27, 7.56, 6.70, skew=0.8),
        _mk(_fem, "majorbasis", 0.160, 1.75, 19.18, 8.24, block=4, band_scale=12.0),
        _mk(_mesh2, "mario002", 0.390, 2.10, 12.83, 6.45),
        _mk(_mesh2, "mc2depi", 0.526, 2.10, 8.39, 5.25),
        _mk(_fem, "mono_500Hz", 0.169, 5.04, 204.03, 41.38, band_scale=16.0),
        _mk(_fem, "offshore", 0.260, 4.24, 71.34, 23.36, band_scale=14.0),
        _mk(_econ, "patents_main", 0.241, 0.56, 2.60, 2.28, skew=1.0),
        _mk(_fem, "pdb1HYS", 0.036, 4.34, 555.32, 19.59, block=8),
        _mk(_fem, "poisson3Da", 0.014, 0.35, 11.77, 2.96, band_scale=14.0),
        _mk(_fem, "pwtk", 0.218, 11.63, 626.05, 32.77),
        _mk(_fem, "rma10", 0.047, 2.37, 156.48, 7.90),
        _mk(_econ, "scircuit", 0.171, 0.96, 8.68, 5.22, skew=0.6),
        _mk(_fem, "shipsec1", 0.141, 7.81, 450.64, 24.09),
        _mk(_web, "wb-edu", 9.846, 57.16, 1559.58, 630.08),
        _mk(_web, "webbase-1M", 1.000, 3.11, 69.52, 51.11),
    )
}


def dataset_names() -> "list[str]":
    """The 26 proxy names in Table-2 order."""
    return list(DATASETS)


def load_dataset(name: str, *, max_n: int = DEFAULT_MAX_N) -> CSR:
    """Build one proxy matrix (dimension capped at ``max_n``)."""
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(f"unknown dataset {name!r}; see dataset_names()")
    return spec.build(max_n)


def load_suite(
    *, max_n: int = DEFAULT_MAX_N, subset: "list[str] | None" = None
) -> "dict[str, CSR]":
    """Build the whole proxy suite (or a named subset)."""
    names = dataset_names() if subset is None else subset
    return {name: load_dataset(name, max_n=max_n) for name in names}
