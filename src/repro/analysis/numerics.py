"""Dtype/width abstract interpretation over the project's numpy sites.

The canonical numeric contract lives in ``matrix/csr.py`` — three
module-level constants (``INDPTR_DTYPE``, ``INDEX_DTYPE``, ``VALUE_DTYPE``)
that every kernel, wire decoder and traffic model is supposed to inherit.
The contract is enforced at :class:`~repro.matrix.csr.CSR` construction
and nowhere else: a kernel that allocates an ``np.int32`` scratch index
array, or a helper that ``astype``-narrows a value array, is invisible to
the bit-identity tests until a matrix crosses 2^31 nnz.

This module makes the contract statically checkable.  It interprets each
analyzed file over a small dtype lattice::

    BOTTOM < {i8 .. i64, u8 .. u64, f16 f32 f64, bool, operand} < TOP

``operand`` is the sanctioned "whatever dtype the operand already has"
value (``x.dtype``, ``np.result_type(...)``); it is *concrete* for
coverage purposes — the interpreter knows exactly what the code meant.
``TOP`` is genuine ignorance.  Atoms name bit widths (``i32`` is a 32-bit
signed integer), not numpy character codes.

For every numpy allocation (``np.empty/zeros/ones/full/arange/asarray/
array/ascontiguousarray/frombuffer/fromiter/*_like``) and every
``.astype`` call the interpreter records a :class:`DtypeSite` carrying the
resolved lattice value, how it was resolved (literal, canonical constant,
environment, numpy default...), the assigned target names and the astype
receiver.  Resolution sources, in decreasing precision:

* ``dtype=np.int64`` / ``dtype="int64"`` — literal tables;
* ``dtype=INDEX_DTYPE`` — sanctioned constants, resolved through the
  module's import bindings back to the contract module (``matrix/csr.py``)
  or to ``semiring.py``'s declared accumulator dtype;
* ``dtype=x.dtype`` — the per-function environment if ``x`` is a tracked
  allocation, else ``operand``;
* numpy defaults — ``zeros()`` with no dtype is ``f64``, ``arange`` over
  integer bounds is ``i64``, ``full`` infers from its fill value,
  ``asarray`` propagates its argument;
* one-hop positional flow — a dtype literal or canonical constant passed
  positionally to a local helper seeds that helper's parameter
  environment, the same tier structure as the race model's taint
  propagation (``_alloc(n, INDEX_DTYPE)`` resolves inside ``_alloc``).

The model **arms** only when the analyzed tree declares the contract: a
unique file whose relpath ends with ``matrix/csr.py`` assigning all three
``*_DTYPE`` constants from numpy dtype literals.  Fixture trees without a
contract produce no model and the ``numeric-*`` checker family built on
top (:mod:`repro.analysis.checkers.numerics`) stays silent on them.

Like every module in this package, no numpy import and no execution: the
lattice knows numpy's defaulting rules as tables, not by calling numpy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .context import FileContext, ProjectContext

__all__ = [
    "BOTTOM",
    "TOP",
    "OPERAND",
    "join",
    "is_concrete",
    "DtypeSite",
    "NumericsModel",
]

# --------------------------------------------------------------------------
# the lattice
# --------------------------------------------------------------------------

BOTTOM = "bottom"
TOP = "top"
#: "the operand's own dtype" — sanctioned and concrete, but not a width.
OPERAND = "operand"

#: numpy attribute name -> lattice atom (``np.<attr>`` dtype literals).
NP_ATTR_ATOMS = {
    "int8": "i8", "int16": "i16", "int32": "i32", "int64": "i64",
    "intc": "i32", "intp": "i64", "int_": "i64", "longlong": "i64",
    "uint8": "u8", "uint16": "u16", "uint32": "u32", "uint64": "u64",
    "float16": "f16", "float32": "f32", "float64": "f64",
    "half": "f16", "single": "f32", "double": "f64",
    "bool_": "bool",
}

#: dtype *string* spellings (numpy character codes size in bytes: "i8" is
#: a 64-bit integer) -> lattice atom.
STRING_ATOMS = {
    "int8": "i8", "i1": "i8",
    "int16": "i16", "i2": "i16", "<i2": "i16",
    "int32": "i32", "i4": "i32", "<i4": "i32",
    "int64": "i64", "i8": "i64", "<i8": "i64", "long": "i64",
    "uint32": "u32", "u4": "u32", "<u4": "u32",
    "uint64": "u64", "u8": "u64", "<u8": "u64",
    "float16": "f16", "f2": "f16", "<f2": "f16",
    "float32": "f32", "f4": "f32", "<f4": "f32",
    "float64": "f64", "f8": "f64", "<f8": "f64", "d": "f64",
    "bool": "bool", "?": "bool",
}

#: integer atoms narrower than (or incompatible with) the 64-bit signed
#: canonical index, keyed by why they are unsafe in an index role.
_INT_ATOMS = frozenset({"i8", "i16", "i32", "i64"})
_UINT_ATOMS = frozenset({"u8", "u16", "u32", "u64"})
_FLOAT_ATOMS = frozenset({"f16", "f32", "f64"})


def is_concrete(value: str) -> bool:
    """Whether the interpreter resolved an actual lattice atom (not ⊤/⊥)."""
    return value not in (TOP, BOTTOM)


def join(a: str, b: str) -> str:
    """Least upper bound of two lattice values."""
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if a == b:
        return a
    return TOP


# --------------------------------------------------------------------------
# numpy allocation knowledge (tables, not execution)
# --------------------------------------------------------------------------

#: allocation function name -> positional index of its dtype argument
#: (None: keyword-only for our purposes).
_ALLOC_DTYPE_POS = {
    "empty": 1, "zeros": 1, "ones": 1,
    "full": 2,
    "frombuffer": 1, "fromiter": 1,
    "arange": None, "asarray": None, "array": None,
    "ascontiguousarray": None, "asfortranarray": None,
    "empty_like": 1, "zeros_like": 1, "ones_like": 1, "full_like": 2,
}

#: allocations whose no-dtype default is float64.
_F64_DEFAULT = frozenset({"empty", "zeros", "ones", "frombuffer"})

#: allocations that propagate their first argument's dtype.
_PROPAGATING = frozenset(
    {"asarray", "array", "ascontiguousarray", "asfortranarray",
     "empty_like", "zeros_like", "ones_like", "full_like"}
)


def _dotted(node: ast.AST) -> "str | None":
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _const_atom(value) -> "str | None":
    """Lattice atom for a python constant used as a fill value."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "i64"
    if isinstance(value, float):
        return "f64"
    return None


# --------------------------------------------------------------------------
# sites
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DtypeSite:
    """One numpy allocation or ``astype`` call, abstractly interpreted.

    ``kind`` is ``"alloc"`` or ``"astype"``; ``value`` the lattice value of
    the produced array's dtype; ``source`` how it was resolved —
    ``"np-literal"`` (``np.int32``), ``"string"`` (``"float64"``),
    ``"constant"`` (a sanctioned ``*_DTYPE`` constant), ``"env"`` (tracked
    local), ``"operand"`` (``x.dtype`` / ``result_type``), ``"default"``
    (numpy's defaulting rules) or ``"unknown"`` (⊤).  ``targets`` are the
    dotted names the result is assigned to (empty for expression-position
    calls); ``receiver`` is the astype receiver's dotted name.
    """

    relpath: str
    lineno: int
    col: int
    func: str
    kind: str
    value: str
    source: str
    const_name: str = ""
    targets: "tuple[str, ...]" = ()
    receiver: str = ""
    has_casting: bool = False
    scope: str = "<module>"


# --------------------------------------------------------------------------
# the model
# --------------------------------------------------------------------------

#: The three names whose module-level assignment in ``matrix/csr.py``
#: constitutes the contract.
CONTRACT_NAMES = ("INDPTR_DTYPE", "INDEX_DTYPE", "VALUE_DTYPE")


@dataclass
class _FileBindings:
    """Per-file resolution state shared by both interpreter passes."""

    ctx: FileContext
    module: "str | None"
    np_aliases: "frozenset[str]"
    #: local name -> lattice atom, for sanctioned constants visible here
    #: (defined in this file, or imported from a sanctioned module).
    const_atoms: "dict[str, str]" = field(default_factory=dict)
    #: bare local-def / imported-def name -> project qualname.
    def_targets: "dict[str, str]" = field(default_factory=dict)


class NumericsModel:
    """Abstractly interpreted dtype sites for one analyzed project."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.armed = False
        #: constant name -> atom, from the contract module.
        self.canonical: "dict[str, str]" = {}
        self.contract_relpath = ""
        #: relpaths allowed to *define* dtype constants (csr + semiring).
        self.sanctioned_relpaths: "set[str]" = set()
        self.sites: "list[DtypeSite]" = []
        self._by_relpath: "dict[str, FileContext]" = {
            f.relpath: f for f in project.files
        }
        self._find_contract()
        if self.armed:
            self._interpret()

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, project: ProjectContext) -> "NumericsModel":
        """The project's model, built once per run and cached."""
        model = getattr(project, "_numerics_model", None)
        if model is None:
            model = cls(project)
            project._numerics_model = model  # type: ignore[attr-defined]
        return model

    def file(self, relpath: str) -> "FileContext | None":
        return self._by_relpath.get(relpath)

    # -- contract detection ------------------------------------------------

    @staticmethod
    def _module_dtype_consts(ctx: FileContext) -> "dict[str, str]":
        """``NAME -> atom`` for module-level ``NAME = np.<dtype>`` assigns."""
        out: "dict[str, str]" = {}
        if ctx.tree is None:
            return out
        np_aliases = _np_aliases(ctx.tree)
        for node in ctx.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            dotted = _dotted(node.value)
            if dotted is None or "." not in dotted:
                continue
            head, _, attr = dotted.rpartition(".")
            if head in np_aliases and attr in NP_ATTR_ATOMS:
                out[target.id] = NP_ATTR_ATOMS[attr]
        return out

    def _find_contract(self) -> None:
        contract = self.project.by_suffix("matrix/csr.py")
        if contract is None:
            return
        consts = self._module_dtype_consts(contract)
        if not all(name in consts for name in CONTRACT_NAMES):
            return
        self.armed = True
        self.contract_relpath = contract.relpath
        self.canonical = {n: consts[n] for n in consts if n.endswith("_DTYPE")}
        self.sanctioned_relpaths.add(contract.relpath)
        for f in self.project.files:
            if f.relpath.endswith("semiring.py"):
                extra = self._module_dtype_consts(f)
                if extra:
                    self.sanctioned_relpaths.add(f.relpath)
                    for name, atom in extra.items():
                        if name.endswith("_DTYPE"):
                            self.canonical.setdefault(name, atom)

    # -- interpretation ----------------------------------------------------

    def _interpret(self) -> None:
        graph = self.project.graph()
        calls = graph.calls
        bindings: "list[_FileBindings]" = []
        for ctx in self.project.files:
            if ctx.tree is None:
                continue
            bindings.append(self._bind_file(ctx, graph))

        # Pass 1: one-hop positional flow — dtype literals / sanctioned
        # constants passed to project defs seed the callee's parameters.
        param_atoms: "dict[str, dict[str, str]]" = {}
        for fb in bindings:
            for node in ast.walk(fb.ctx.tree):  # type: ignore[arg-type]
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                    continue
                qual = fb.def_targets.get(node.func.id)
                d = calls.defs.get(qual) if qual else None
                if d is None:
                    continue
                params = [a.arg for a in d.node.args.args]
                for i, arg in enumerate(node.args):
                    if i >= len(params):
                        break
                    value, _, _ = self._resolve_static(arg, fb)
                    if is_concrete(value):
                        slot = param_atoms.setdefault(qual, {})
                        slot[params[i]] = join(slot.get(params[i], BOTTOM), value)

        # Pass 2: interpret every scope with parameter environments seeded.
        for fb in bindings:
            module = fb.module or fb.ctx.relpath
            self._scan_body(
                fb, fb.ctx.tree.body, "<module>", {}, module, param_atoms
            )

    def _bind_file(self, ctx: FileContext, graph) -> _FileBindings:
        from .graph import module_bindings

        module = graph.imports.module_names.get(ctx.relpath)
        np_aliases = _np_aliases(ctx.tree)
        fb = _FileBindings(ctx=ctx, module=module, np_aliases=np_aliases)

        # Sanctioned constants defined in this very file.
        if ctx.relpath in self.sanctioned_relpaths:
            for name, atom in self._module_dtype_consts(ctx).items():
                fb.const_atoms[name] = atom

        name_map: "dict[str, str]" = {}
        if module is not None:
            name_map, _ = module_bindings(module, ctx, graph.imports)
            sanctioned_modules = {
                graph.imports.module_names.get(rel)
                for rel in self.sanctioned_relpaths
            }
            for bound, target in name_map.items():
                mod, _, attr = target.rpartition(".")
                if mod in sanctioned_modules and attr in self.canonical:
                    fb.const_atoms.setdefault(bound, self.canonical[attr])
            # Call-target table: module-local defs shadow import bindings.
            for bound, target in name_map.items():
                if target in graph.calls.defs:
                    fb.def_targets[bound] = target
            for qual, d in graph.calls.defs.items():
                if d.ctx is ctx and d.cls is None:
                    fb.def_targets[qual.rsplit(".", 1)[-1]] = qual
        return fb

    # -- dtype-expression resolution ---------------------------------------

    def _resolve_static(
        self, node: "ast.expr | None", fb: _FileBindings
    ) -> "tuple[str, str, str]":
        """Environment-free resolution (used for call-argument seeding)."""
        return self._resolve(node, fb, {})

    def _resolve(
        self, node: "ast.expr | None", fb: _FileBindings, env: "dict[str, str]"
    ) -> "tuple[str, str, str]":
        """(lattice value, source, constant name) for a dtype expression."""
        if node is None:
            return TOP, "unknown", ""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                atom = STRING_ATOMS.get(node.value)
                return (atom or TOP), "string", node.value
            return TOP, "unknown", ""
        if isinstance(node, ast.Name):
            if node.id in fb.const_atoms:
                return fb.const_atoms[node.id], "constant", node.id
            if node.id == "float":
                return "f64", "np-literal", "float"
            if node.id == "int":
                return "i64", "np-literal", "int"
            if node.id == "bool":
                return "bool", "np-literal", "bool"
            if node.id in env:
                return env[node.id], "env", node.id
            return TOP, "unknown", ""
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                head, _, attr = dotted.rpartition(".")
                if head in fb.np_aliases and attr in NP_ATTR_ATOMS:
                    return NP_ATTR_ATOMS[attr], "np-literal", dotted
                if attr == "dtype":
                    if head in env:
                        return env[head], "env", head
                    return OPERAND, "operand", dotted
            return TOP, "unknown", ""
        if isinstance(node, ast.Call):
            func = _dotted(node.func) or ""
            head, _, attr = func.rpartition(".")
            if attr == "result_type":
                return OPERAND, "operand", func
            if attr == "dtype" and head in fb.np_aliases and node.args:
                # np.dtype(X) wraps without changing the abstract value.
                return self._resolve(node.args[0], fb, env)
        return TOP, "unknown", ""

    # -- scope interpretation ----------------------------------------------

    def _scan_body(
        self,
        fb: _FileBindings,
        body: "list[ast.stmt]",
        scope: str,
        env: "dict[str, str]",
        module: str,
        param_atoms: "dict[str, dict[str, str]]",
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{stmt.name}" if scope == "<module>" else scope + "." + stmt.name
                fn_env = dict(param_atoms.get(qual, {}))
                self._scan_body(fb, stmt.body, qual, fn_env, module, param_atoms)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{module}.{stmt.name}.{item.name}"
                        fn_env = dict(param_atoms.get(qual, {}))
                        self._scan_body(
                            fb, item.body, qual, fn_env, module, param_atoms
                        )
                    else:
                        self._scan_stmt(fb, item, scope, env)
            else:
                self._scan_stmt(fb, stmt, scope, env)

    def _scan_stmt(
        self, fb: _FileBindings, stmt: ast.stmt, scope: str, env: "dict[str, str]"
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._scan_assign(fb, stmt.targets, stmt.value, scope, env)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._scan_assign(fb, [stmt.target], stmt.value, scope, env)
            return
        # Compound statements: interpret nested bodies in order with the
        # same (flow-insensitive at joins, which is fine for a linter) env.
        for attr in ("value", "test", "iter", "exc"):
            sub = getattr(stmt, attr, None)
            if isinstance(sub, ast.expr):
                self._scan_expr(fb, sub, scope, env)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_expr(fb, item.context_expr, scope, env)
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(fb, stmt.value, scope, env)
        for attr in ("body", "orelse", "finalbody"):
            sub_body = getattr(stmt, attr, None)
            if isinstance(sub_body, list) and sub_body and isinstance(sub_body[0], ast.stmt):
                self._scan_body(fb, sub_body, scope, env, "", {})
        for handler in getattr(stmt, "handlers", []):
            self._scan_body(fb, handler.body, scope, env, "", {})

    def _scan_assign(
        self,
        fb: _FileBindings,
        targets: "list[ast.expr]",
        value: ast.expr,
        scope: str,
        env: "dict[str, str]",
    ) -> None:
        dotted_targets = tuple(
            t for t in (_dotted(target) for target in targets) if t is not None
        )
        top_site = self._maybe_site(fb, value, scope, env, dotted_targets)
        for sub in ast.walk(value):
            if sub is not value and isinstance(sub, ast.Call):
                self._maybe_site(fb, sub, scope, env, ())

        # Environment update for the bound names.
        bound: "str | None" = None
        if top_site is not None:
            bound = top_site.value
        else:
            v, source, _ = self._resolve(value, fb, env)
            if source != "unknown":
                bound = v
            elif isinstance(value, ast.Name) and value.id in env:
                bound = env[value.id]
            elif isinstance(value, ast.Subscript):
                base = _dotted(value.value)
                if base in env:
                    bound = env[base]
            elif isinstance(value, ast.Call):
                func = _dotted(value.func) or ""
                head, _, attr = func.rpartition(".")
                if attr == "copy" and head in env:
                    bound = env[head]
        for name in dotted_targets:
            if bound is not None:
                env[name] = bound
            else:
                env.pop(name, None)

    def _scan_expr(
        self, fb: _FileBindings, expr: ast.expr, scope: str, env: "dict[str, str]"
    ) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._maybe_site(fb, sub, scope, env, ())

    def _maybe_site(
        self,
        fb: _FileBindings,
        node: ast.expr,
        scope: str,
        env: "dict[str, str]",
        targets: "tuple[str, ...]",
    ) -> "DtypeSite | None":
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        site: "DtypeSite | None" = None
        if func.attr == "astype":
            site = self._astype_site(fb, node, func, scope, env, targets)
        elif isinstance(func.value, ast.Name) and func.value.id in fb.np_aliases:
            if func.attr in _ALLOC_DTYPE_POS:
                site = self._alloc_site(fb, node, func.attr, scope, env, targets)
        if site is not None:
            self.sites.append(site)
        return site

    def _dtype_arg(
        self, node: ast.Call, fname: str
    ) -> "ast.expr | None":
        for kw in node.keywords:
            if kw.arg == "dtype":
                return kw.value
        pos = _ALLOC_DTYPE_POS.get(fname)
        if pos is not None and len(node.args) > pos:
            return node.args[pos]
        return None

    def _alloc_site(
        self,
        fb: _FileBindings,
        node: ast.Call,
        fname: str,
        scope: str,
        env: "dict[str, str]",
        targets: "tuple[str, ...]",
    ) -> DtypeSite:
        arg = self._dtype_arg(node, fname)
        if arg is not None:
            value, source, const_name = self._resolve(arg, fb, env)
        else:
            value, source, const_name = self._default_dtype(fb, node, fname, env)
        return DtypeSite(
            relpath=fb.ctx.relpath,
            lineno=node.lineno,
            col=node.col_offset,
            func=fname,
            kind="alloc",
            value=value,
            source=source,
            const_name=const_name,
            targets=targets,
            scope=scope,
        )

    def _default_dtype(
        self, fb: _FileBindings, node: ast.Call, fname: str, env: "dict[str, str]"
    ) -> "tuple[str, str, str]":
        if fname in _F64_DEFAULT:
            return "f64", "default", ""
        if fname == "full" and len(node.args) >= 2:
            fill = node.args[1]
            if isinstance(fill, ast.Constant):
                atom = _const_atom(fill.value)
                if atom is not None:
                    return atom, "default", ""
            if isinstance(fill, ast.UnaryOp) and isinstance(fill.operand, ast.Constant):
                atom = _const_atom(fill.operand.value)
                if atom is not None:
                    return atom, "default", ""
            dotted = _dotted(fill)
            if dotted in env:
                return env[dotted], "env", dotted
            return TOP, "unknown", ""
        if fname == "arange":
            atoms = [
                _const_atom(a.value)
                for a in node.args
                if isinstance(a, ast.Constant)
            ]
            if any(a == "f64" for a in atoms):
                return "f64", "default", ""
            return "i64", "default", ""
        if fname in _PROPAGATING and node.args:
            first = node.args[0]
            dotted = _dotted(first)
            if dotted is not None and dotted in env:
                return env[dotted], "env", dotted
            if isinstance(first, (ast.List, ast.Tuple)):
                atoms = {
                    _const_atom(e.value)
                    for e in first.elts
                    if isinstance(e, ast.Constant)
                }
                atoms.discard(None)
                if atoms == {"i64"}:
                    return "i64", "default", ""
                if atoms and atoms <= {"i64", "f64"}:
                    return "f64", "default", ""
            return OPERAND, "operand", ""
        return TOP, "unknown", ""

    def _astype_site(
        self,
        fb: _FileBindings,
        node: ast.Call,
        func: ast.Attribute,
        scope: str,
        env: "dict[str, str]",
        targets: "tuple[str, ...]",
    ) -> "DtypeSite | None":
        receiver = _dotted(func.value) or ""
        arg = None
        if node.args:
            arg = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    arg = kw.value
        if arg is None:
            return None
        value, source, const_name = self._resolve(arg, fb, env)
        has_casting = any(kw.arg == "casting" for kw in node.keywords)
        return DtypeSite(
            relpath=fb.ctx.relpath,
            lineno=node.lineno,
            col=node.col_offset,
            func="astype",
            kind="astype",
            value=value,
            source=source,
            const_name=const_name,
            targets=targets,
            receiver=receiver,
            has_casting=has_casting,
            scope=scope,
        )

    # -- queries -----------------------------------------------------------

    def sites_in_dir(self, dirname: str) -> "list[DtypeSite]":
        """Sites in files that have ``dirname`` as a path component."""
        rels = {f.relpath for f in self.project.in_dir(dirname)}
        return [s for s in self.sites if s.relpath in rels]

    def alloc_stats(self, dirname: "str | None" = None) -> "dict[str, int]":
        """Coverage stats: how many allocation sites resolved concretely.

        The acceptance bar for the engine — ≥ 90% of kernel allocation
        sites must resolve to a non-⊤ lattice value — is asserted against
        exactly this dictionary by the coverage test.
        """
        sites = self.sites if dirname is None else self.sites_in_dir(dirname)
        allocs = [s for s in sites if s.kind == "alloc"]
        resolved = [s for s in allocs if is_concrete(s.value)]
        return {"alloc_sites": len(allocs), "resolved": len(resolved)}


def _np_aliases(tree: "ast.Module | None") -> "frozenset[str]":
    """Every local name bound to the numpy module (``np``, ``numpy``...)."""
    out: "set[str]" = set()
    if tree is None:
        return frozenset()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    out.add(alias.asname or "numpy")
    return frozenset(out)


def index_narrow_reason(value: str) -> "str | None":
    """Why ``value`` is unsafe for an index/indptr role, or None if safe.

    The canonical index is a 64-bit signed integer; anything concretely
    narrower, unsigned (no -1 sentinel), floating or boolean is flagged.
    ``operand``/⊤ are not flagged — the interpreter does not know enough.
    """
    if value in (TOP, BOTTOM, OPERAND):
        return None
    if value == "i64":
        return None
    if value in _INT_ATOMS:
        return f"{value} narrows the 64-bit canonical index"
    if value in _UINT_ATOMS:
        return f"unsigned {value} cannot hold the -1 sentinel"
    if value in _FLOAT_ATOMS:
        return f"floating {value} cannot index exactly at scale"
    if value == "bool":
        return "bool cannot serve as an index dtype"
    return f"{value} is not the canonical 64-bit index"
