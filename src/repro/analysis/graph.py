"""Project-wide import and call graphs, resolved purely from AST.

The per-file checkers of PR 2 see one module at a time; the cross-cutting
contracts this package now enforces (layering, numeric-phase purity, span
discipline) are properties of *edges between* modules.  This module builds
two graphs over one :class:`~repro.analysis.context.ProjectContext`:

* :class:`ModuleGraph` — module-level **import edges**.  Module names are
  derived from the file set itself (walking up directories that contain an
  ``__init__.py``), so the graph is correct whether the tree is linted as
  ``src/repro`` or as a fixture tree rooted elsewhere.  Relative imports
  are resolved against the importing module's package; every edge records
  the names it binds and whether it is *lazy* (inside a function body —
  the sanctioned way to break an import cycle or keep a dependency
  optional).

* :class:`CallGraph` — an **intra-project call graph** over top-level
  functions and methods.  Calls are resolved through four mechanisms, in
  decreasing precision: module-local definitions, ``from``-import
  bindings, ``self.method()`` within a class, and module-alias attribute
  calls (``mod.func()``).  A final *by-name* tier conservatively links
  ``obj.method()`` to every *method* definition of that name in the
  project (module-level functions are reached through the precise tiers);
  it over-approximates, which is the safe direction for the purity checker
  that consumes it (a false edge can only make *more* code subject to the
  contract, never hide a violation).

The concurrency tier (PR 7) adds two further views over the same parse:

* **write events** — :meth:`CallGraph.writes_of` lazily extracts every
  mutation a function performs (subscript stores, attribute stores,
  ``global``-declared rebinds, mutating method calls, ``del``,
  ``inplace=True`` calls), each annotated with the dotted receiver, the
  kind of subscript index (slice vs. key), the names appearing in the
  index expression, and the ``with``-statement context managers enclosing
  the site.  The ``race`` checker family does interprocedural write-set
  inference by combining these per-def events with
  :meth:`CallGraph.reachable_from`.

* **dispatch points** — call sites that hand a function to another
  process (``pool.map(f, ...)``, ``executor.submit(f, ...)``,
  ``Process(target=f)``): :attr:`CallGraph.dispatches` records the caller,
  the resolved target (when it is a project def) and whether the callable
  is a lambda or nested function (which cannot survive spawn pickling).
  Worker *entry points* for the race checkers are exactly the resolved
  dispatch targets.

Both graphs are pure functions of the parsed file set — no imports are
executed.  Checkers obtain them memoized via ``ProjectContext.graph()``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from .context import FileContext, ProjectContext

__all__ = [
    "ImportEdge",
    "ModuleGraph",
    "CallGraph",
    "ProjectGraph",
    "WriteEvent",
    "Dispatch",
    "build_project_graph",
    "module_bindings",
]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to dotted module names."""

    src: str  # importing module
    dst: str  # imported module (dotted, best-effort resolved)
    names: "tuple[str, ...]"  # names bound by a from-import (empty for `import X`)
    lineno: int
    lazy: bool  # True when the import lives inside a function body


def _init_dirs(files: "list[FileContext]") -> "set[str]":
    """Relative directories that are packages (contain an ``__init__.py``)."""
    dirs: "set[str]" = set()
    for f in files:
        if f.relpath.endswith("__init__.py"):
            head, _, _ = f.relpath.rpartition("/")
            dirs.add(head)  # "" for a root-level __init__.py
    return dirs


def _module_name(relpath: str, init_dirs: "set[str]") -> "str | None":
    """Dotted module name for ``relpath``, derived from the file set.

    Walks up the directory chain for as long as each directory is a
    package; path components above the outermost package (``src/``) are
    dropped.  Returns None for a file that is neither a package member nor
    a root-level module with a meaningful name.
    """
    if not relpath.endswith(".py"):
        return None
    parts = relpath.split("/")
    stem = parts[-1][: -len(".py")]
    dir_parts = parts[:-1]
    pkg: "list[str]" = []
    while dir_parts and "/".join(dir_parts) in init_dirs:
        pkg.insert(0, dir_parts[-1])
        dir_parts = dir_parts[:-1]
    if stem == "__init__":
        return ".".join(pkg) if pkg else None
    return ".".join(pkg + [stem])


@dataclass
class ModuleGraph:
    """Module-level import edges over the analyzed file set."""

    #: dotted module name -> its FileContext
    modules: "dict[str, FileContext]" = field(default_factory=dict)
    #: relpath -> dotted module name (inverse of ``modules`` plus duplicates)
    module_names: "dict[str, str]" = field(default_factory=dict)
    edges: "list[ImportEdge]" = field(default_factory=list)

    def imports_of(self, module: str) -> "list[ImportEdge]":
        """Every edge whose importer is ``module``."""
        return [e for e in self.edges if e.src == module]

    def module_of(self, ctx: FileContext) -> "str | None":
        return self.module_names.get(ctx.relpath)


def _resolve_from(module: str, is_pkg: bool, node: ast.ImportFrom) -> "str | None":
    """Dotted target of a ``from ... import`` statement, or None."""
    if node.level == 0:
        return node.module
    package = module.split(".") if is_pkg else module.split(".")[:-1]
    if node.level - 1 > len(package):
        return None  # escapes the analyzed tree
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        return ".".join(base + [node.module])
    return ".".join(base) or None


class _ImportVisitor(ast.NodeVisitor):
    """Collect import edges, tagging imports inside function bodies lazy."""

    def __init__(self, module: str, is_pkg: bool) -> None:
        self.module = module
        self.is_pkg = is_pkg
        self.depth = 0
        self.edges: "list[ImportEdge]" = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.edges.append(
                ImportEdge(
                    src=self.module,
                    dst=alias.name,
                    names=(),
                    lineno=node.lineno,
                    lazy=self.depth > 0,
                )
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        dst = _resolve_from(self.module, self.is_pkg, node)
        if dst is None:
            return
        self.edges.append(
            ImportEdge(
                src=self.module,
                dst=dst,
                names=tuple(alias.name for alias in node.names),
                lineno=node.lineno,
                lazy=self.depth > 0,
            )
        )


@dataclass(frozen=True)
class _Def:
    """One top-level function or method definition."""

    qualname: str  # "module.func" or "module.Class.method"
    node: ast.AST  # the FunctionDef
    ctx: FileContext
    cls: "str | None"  # enclosing class name for methods


# --------------------------------------------------------------------------
# write events (per-def mutation summaries for the race checkers)
# --------------------------------------------------------------------------

#: Method names that mutate their receiver in place (dict/list/set/ndarray).
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "sort", "reverse", "fill",
    }
)


@dataclass(frozen=True)
class WriteEvent:
    """One mutation site inside one function.

    ``kind`` is one of ``"subscript-store"`` (``base[i] = ...``, including
    augmented stores), ``"attr-store"`` (``base.attr = ...``),
    ``"global-rebind"`` (a store to a ``global``-declared name),
    ``"mutating-call"`` (``base.append(...)`` and friends),
    ``"del-subscript"`` (``del base[i]``) or ``"inplace-call"`` (any call
    carrying ``inplace=True``).  ``base`` is the dotted receiver as written
    (``"a.data"``, ``"_SHM_HANDLES"``); ``root`` its leftmost name.  For
    subscript events ``index_kind`` distinguishes ``"slice"`` writes (array
    ranges) from ``"index"`` writes (dict keys / single elements) and
    ``index_names`` lists the plain names referenced by the index
    expression.  ``locks`` holds the dotted context-manager expressions of
    every enclosing ``with`` statement — how the unlocked-shared checker
    recognises a sanctioned, lock-guarded mutation.
    """

    kind: str
    base: str
    root: str
    lineno: int
    col: int
    index_kind: str = ""
    index_names: "tuple[str, ...]" = ()
    value_is_true: bool = False
    locks: "tuple[str, ...]" = ()


def _dotted(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _strip_subscripts(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _index_info(sl: ast.AST) -> "tuple[str, tuple[str, ...]]":
    """(index kind, names referenced) for a subscript's slice expression."""
    is_slice = isinstance(sl, ast.Slice) or (
        isinstance(sl, ast.Tuple) and any(isinstance(e, ast.Slice) for e in sl.elts)
    )
    names = tuple(
        sorted({n.id for n in ast.walk(sl) if isinstance(n, ast.Name)})
    )
    return ("slice" if is_slice else "index"), names


class _WriteVisitor(ast.NodeVisitor):
    """Collect :class:`WriteEvent` for one function body.

    Tracks the enclosing ``with``-statement stack (for lock detection) and
    the function's ``global`` declarations.  Nested function definitions
    are descended into — a closure's writes happen when the enclosing
    function runs it, which is the conservative direction.
    """

    def __init__(self) -> None:
        self.events: "list[WriteEvent]" = []
        self.globals: "set[str]" = set()
        self._locks: "list[str]" = []

    def _emit(self, **kw) -> None:
        kw.setdefault("locks", tuple(self._locks))
        self.events.append(WriteEvent(**kw))

    def visit_Global(self, node: ast.Global) -> None:
        self.globals.update(node.names)

    def visit_With(self, node: ast.With) -> None:
        added = 0
        for item in node.items:
            dotted = _dotted(item.context_expr)
            if dotted is None and isinstance(item.context_expr, ast.Call):
                dotted = _dotted(item.context_expr.func)
            if dotted is not None:
                self._locks.append(dotted)
                added += 1
        self.generic_visit(node)
        if added:
            del self._locks[-added:]

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def _store_target(self, target: ast.AST, lineno: int, col: int) -> None:
        if isinstance(target, ast.Subscript):
            base = _dotted(_strip_subscripts(target.value))
            if base is not None:
                index_kind, index_names = _index_info(target.slice)
                self._emit(
                    kind="subscript-store", base=base, root=base.split(".")[0],
                    lineno=lineno, col=col,
                    index_kind=index_kind, index_names=index_names,
                )
        elif isinstance(target, ast.Attribute):
            dotted = _dotted(target)
            if dotted is not None:
                self._emit(
                    kind="attr-store", base=dotted, root=dotted.split(".")[0],
                    lineno=lineno, col=col,
                )
        elif isinstance(target, ast.Name) and target.id in self.globals:
            self._emit(
                kind="global-rebind", base=target.id, root=target.id,
                lineno=lineno, col=col,
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt, lineno, col)

    def visit_Assign(self, node: ast.Assign) -> None:
        truthy = isinstance(node.value, ast.Constant) and node.value.value is True
        for target in node.targets:
            before = len(self.events)
            self._store_target(target, node.lineno, node.col_offset)
            if truthy:
                for i in range(before, len(self.events)):
                    self.events[i] = _replace_event(self.events[i], value_is_true=True)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._store_target(node.target, node.lineno, node.col_offset)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._store_target(node.target, node.lineno, node.col_offset)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                base = _dotted(_strip_subscripts(target.value))
                if base is not None:
                    index_kind, index_names = _index_info(target.slice)
                    self._emit(
                        kind="del-subscript", base=base, root=base.split(".")[0],
                        lineno=node.lineno, col=node.col_offset,
                        index_kind=index_kind, index_names=index_names,
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            base = _dotted(_strip_subscripts(func.value))
            if base is not None:
                self._emit(
                    kind="mutating-call", base=base, root=base.split(".")[0],
                    lineno=node.lineno, col=node.col_offset,
                )
        for kw in node.keywords:
            if (
                kw.arg == "inplace"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                and isinstance(func, ast.Attribute)
            ):
                base = _dotted(_strip_subscripts(func.value))
                if base is not None:
                    self._emit(
                        kind="inplace-call", base=base, root=base.split(".")[0],
                        lineno=node.lineno, col=node.col_offset,
                        value_is_true=True,
                    )
        self.generic_visit(node)


def _replace_event(event: WriteEvent, **changes) -> WriteEvent:
    return replace(event, **changes)


# --------------------------------------------------------------------------
# dispatch points (function handed to another process)
# --------------------------------------------------------------------------

#: ``receiver.<method>(fn, ...)`` forms that run ``fn`` in another process
#: (or thread — the write-ownership contract is the same either way).
DISPATCH_METHODS = frozenset({"map", "submit", "apply_async", "map_async", "starmap"})


@dataclass(frozen=True)
class Dispatch:
    """One call site that hands a callable to a pool/process.

    ``target`` is the resolved project qualname when the callable is a
    module-level def (the precise case); ``callable_kind`` is ``"def"``
    then, ``"lambda"`` / ``"nested"`` for captures that cannot survive
    spawn pickling, and ``"unknown"`` for anything unresolvable.
    """

    caller: str  # qualname of the def containing the call
    target: "str | None"
    callable_kind: str  # "def" | "lambda" | "nested" | "unknown"
    method: str  # "map", "submit", ... or "target="
    lineno: int
    col: int


class CallGraph:
    """Intra-project call graph over top-level functions and methods.

    ``edges`` holds the precisely-resolved calls (local name, import
    binding, ``self.``, module alias); ``attr_edges`` holds the
    conservative by-name tier for attribute calls on unknown receivers.
    """

    def __init__(self) -> None:
        self.defs: "dict[str, _Def]" = {}
        self.edges: "dict[str, set[str]]" = {}
        self.attr_edges: "dict[str, set[str]]" = {}
        #: call sites that hand a callable to a pool/process (PR 7)
        self.dispatches: "list[Dispatch]" = []
        #: bare method/function name -> every qualname defining it
        self._by_name: "dict[str, set[str]]" = {}
        #: qualname -> lazily computed write events (see :meth:`writes_of`)
        self._writes: "dict[str, tuple[WriteEvent, ...]]" = {}

    def writes_of(self, qual: str) -> "tuple[WriteEvent, ...]":
        """Every mutation site inside ``qual``'s body (memoized)."""
        cached = self._writes.get(qual)
        if cached is None:
            d = self.defs.get(qual)
            if d is None:
                cached = ()
            else:
                visitor = _WriteVisitor()
                for stmt in d.node.body:  # skip the def line itself
                    visitor.visit(stmt)
                cached = tuple(visitor.events)
            self._writes[qual] = cached
        return cached

    def worker_entries(self) -> "set[str]":
        """Resolved targets of every dispatch point — the worker entry set."""
        return {d.target for d in self.dispatches if d.target is not None}

    def add_def(self, d: _Def) -> None:
        self.defs[d.qualname] = d
        bare = d.qualname.rsplit(".", 1)[-1]
        self._by_name.setdefault(bare, set()).add(d.qualname)

    def defs_named(self, bare: str) -> "set[str]":
        """Every qualname whose final component is ``bare``."""
        return set(self._by_name.get(bare, ()))

    def methods_named(self, bare: str) -> "set[str]":
        """Every *method* qualname whose final component is ``bare``.

        The by-name attribute tier resolves only to methods: a
        module-level function is called through a name or module alias
        (both precisely resolved), so linking ``obj.add(...)`` to a
        module-level ``add`` would mostly manufacture false edges (ufunc
        ``.add``, dict ``.get``, ...).
        """
        return {q for q in self._by_name.get(bare, ()) if self.defs[q].cls is not None}

    def entries_matching(self, *suffixes: str) -> "set[str]":
        """Qualnames ending in any of ``suffixes`` (dot-boundary aware)."""
        out: "set[str]" = set()
        for qual in self.defs:
            for suffix in suffixes:
                if qual == suffix or qual.endswith("." + suffix):
                    out.add(qual)
        return out

    def reachable_from(
        self, entries: "set[str]", *, by_name: bool = True
    ) -> "set[str]":
        """Transitive closure of call edges from ``entries``.

        With ``by_name`` (the default) the conservative attribute tier is
        followed too — the over-approximating but sound choice for purity
        checks.
        """
        seen: "set[str]" = set()
        stack = [q for q in entries if q in self.defs]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            nxt = set(self.edges.get(qual, ()))
            if by_name:
                nxt |= self.attr_edges.get(qual, set())
            stack.extend(n for n in nxt if n in self.defs and n not in seen)
        return seen


def _collect_defs(graph: CallGraph, module: str, ctx: FileContext) -> None:
    for node in ctx.tree.body:  # type: ignore[union-attr]
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            graph.add_def(_Def(f"{module}.{node.name}", node, ctx, None))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    graph.add_def(
                        _Def(f"{module}.{node.name}.{item.name}", item, ctx, node.name)
                    )


def module_bindings(
    module: str, ctx: FileContext, imports: ModuleGraph
) -> "tuple[dict[str, str], dict[str, str]]":
    """(name -> candidate qualname, alias -> module) binding tables.

    Covers both module-level and lazy (function-body) imports: a lazy
    ``from .x import f`` still creates a call edge when ``f(...)`` appears
    in the same module.  Public because the race checkers re-use the same
    resolution to map tainted arguments onto callee parameters.
    """
    name_map: "dict[str, str]" = {}
    alias_map: "dict[str, str]" = {}
    for node in ast.walk(ctx.tree):  # type: ignore[arg-type]
        if isinstance(node, ast.Import):
            for alias in node.names:
                alias_map[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            is_pkg = imports.modules.get(module) is ctx and ctx.relpath.endswith(
                "__init__.py"
            )
            dst = _resolve_from(module, is_pkg, node)
            if dst is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                target = f"{dst}.{alias.name}"
                if target in imports.modules:
                    # ``from . import submodule`` binds a module alias.
                    alias_map[bound] = target
                else:
                    name_map[bound] = target
    return name_map, alias_map


def _callable_ref(
    node: "ast.expr | None",
    d: _Def,
    local: "dict[str, str]",
    name_map: "dict[str, str]",
    graph: CallGraph,
) -> "tuple[str | None, str]":
    """Resolve a callable expression handed to a dispatch point.

    Returns ``(target qualname or None, kind)`` where kind is ``"def"``,
    ``"lambda"``, ``"nested"`` or ``"unknown"``; ``functools.partial`` is
    unwrapped to its first argument first.
    """
    if node is None:
        return None, "unknown"
    if (
        isinstance(node, ast.Call)
        and (_dotted(node.func) or "").rsplit(".", 1)[-1] == "partial"
        and node.args
    ):
        return _callable_ref(node.args[0], d, local, name_map, graph)
    if isinstance(node, ast.Lambda):
        return None, "lambda"
    if isinstance(node, ast.Name):
        target = local.get(node.id) or name_map.get(node.id)
        if target and target in graph.defs:
            return target, "def"
        # a def nested inside the dispatching function cannot be imported
        # by a spawned child; detect it by scanning the enclosing body
        for sub in ast.walk(d.node):
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub is not d.node
                and sub.name == node.id
            ):
                return None, "nested"
    return None, "unknown"


def _collect_dispatches(
    graph: CallGraph,
    qual: str,
    d: _Def,
    node: ast.Call,
    local: "dict[str, str]",
    name_map: "dict[str, str]",
) -> None:
    """Record ``pool.map(f, ...)`` / ``Process(target=f)`` dispatch points."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in DISPATCH_METHODS:
        target, kind = _callable_ref(
            node.args[0] if node.args else None, d, local, name_map, graph
        )
        if target is not None or kind in ("lambda", "nested"):
            graph.dispatches.append(
                Dispatch(
                    caller=qual, target=target, callable_kind=kind,
                    method=func.attr, lineno=node.lineno, col=node.col_offset,
                )
            )
        return
    for kw in node.keywords:
        if kw.arg == "target":
            target, kind = _callable_ref(kw.value, d, local, name_map, graph)
            if target is not None or kind in ("lambda", "nested"):
                graph.dispatches.append(
                    Dispatch(
                        caller=qual, target=target, callable_kind=kind,
                        method="target=", lineno=node.lineno, col=node.col_offset,
                    )
                )


def _collect_edges(
    graph: CallGraph, module: str, ctx: FileContext, imports: ModuleGraph
) -> None:
    name_map, alias_map = module_bindings(module, ctx, imports)
    local = {
        qual.rsplit(".", 1)[-1]: qual
        for qual, d in graph.defs.items()
        if d.ctx is ctx and d.cls is None
    }
    for qual, d in list(graph.defs.items()):
        if d.ctx is not ctx:
            continue
        resolved: "set[str]" = set()
        by_name: "set[str]" = set()
        for node in ast.walk(d.node):
            if not isinstance(node, ast.Call):
                continue
            _collect_dispatches(graph, qual, d, node, local, name_map)
            func = node.func
            if isinstance(func, ast.Name):
                target = local.get(func.id) or name_map.get(func.id)
                if target and target in graph.defs:
                    resolved.add(target)
            elif isinstance(func, ast.Attribute):
                attr = func.attr
                base = func.value
                if isinstance(base, ast.Name):
                    if base.id == "self" and d.cls is not None:
                        self_target = f"{module}.{d.cls}.{attr}"
                        if self_target in graph.defs:
                            resolved.add(self_target)
                            continue
                    mod = alias_map.get(base.id)
                    if mod is not None:
                        mod_target = f"{mod}.{attr}"
                        if mod_target in graph.defs:
                            resolved.add(mod_target)
                        continue  # a module receiver is never duck-typed
                by_name |= graph.methods_named(attr)
        if resolved:
            graph.edges[qual] = resolved
        if by_name:
            graph.attr_edges[qual] = by_name


@dataclass
class ProjectGraph:
    """The pair of graphs checkers consume, built once per run."""

    imports: ModuleGraph
    calls: CallGraph


def build_project_graph(project: ProjectContext) -> ProjectGraph:
    """Build both graphs for ``project`` (parse-error files are skipped)."""
    files = [f for f in project.files if f.tree is not None]
    init_dirs = _init_dirs(files)

    imports = ModuleGraph()
    for ctx in files:
        module = _module_name(ctx.relpath, init_dirs)
        if module is None:
            continue
        imports.module_names[ctx.relpath] = module
        imports.modules.setdefault(module, ctx)

    for ctx in files:
        module = imports.module_names.get(ctx.relpath)
        if module is None:
            continue
        visitor = _ImportVisitor(module, ctx.relpath.endswith("__init__.py"))
        visitor.visit(ctx.tree)  # type: ignore[arg-type]
        imports.edges.extend(visitor.edges)

    calls = CallGraph()
    for ctx in files:
        module = imports.module_names.get(ctx.relpath)
        if module is None:
            continue
        _collect_defs(calls, module, ctx)
    for ctx in files:
        module = imports.module_names.get(ctx.relpath)
        if module is None:
            continue
        _collect_edges(calls, module, ctx, imports)

    return ProjectGraph(imports=imports, calls=calls)
