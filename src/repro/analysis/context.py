"""Parsed-source contexts handed to checkers, including suppression state.

A :class:`FileContext` owns everything a file-scope checker needs: source
text, the parsed AST, and the suppression table extracted from
``# repro-lint:`` comments.  A :class:`ProjectContext` wraps the whole file
set of one analysis run so cross-module checkers (the kernel-dispatch rule)
can correlate registration tables that live in different files.

Suppression comments
--------------------
Three forms, mirroring the conventions of pylint/ruff:

* ``# repro-lint: disable=rule1,rule2`` — trailing comment on the offending
  line (the line of the AST node the checker anchored the finding to);
* ``# repro-lint: disable-next-line=rule`` — standalone comment covering the
  following line (for lines too long to carry a trailing comment);
* ``# repro-lint: disable-file=rule`` — anywhere in the file, covers the
  whole file (used sparingly; prefer line-level comments with a
  justification in prose next to them).

``disable=all`` suppresses every rule at that scope.  Comments are located
with :mod:`tokenize`, so a ``# repro-lint:`` inside a string literal is
never mistaken for a directive.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["FileContext", "ProjectContext", "build_file_context"]

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-next-line|-file)?)\s*=\s*"
    r"([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def _parse_rules(raw: str) -> "frozenset[str]":
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


@dataclass
class FileContext:
    """One parsed source file plus its suppression table."""

    path: str  # absolute path on disk
    relpath: str  # analysis-root-relative, forward slashes
    source: str
    lines: "list[str]"
    tree: "ast.Module | None"
    parse_error: "SyntaxError | None" = None
    line_disables: "dict[int, frozenset[str]]" = field(default_factory=dict)
    file_disables: "frozenset[str]" = frozenset()

    def snippet(self, line: int) -> str:
        """The stripped source line at 1-based ``line`` (or empty)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is disabled by comment."""
        for scope in (self.file_disables, self.line_disables.get(line, frozenset())):
            if rule in scope or "all" in scope:
                return True
        return False


def _collect_directives(source: str) -> "tuple[dict[int, frozenset[str]], frozenset[str]]":
    """Extract (per-line disables, file-wide disables) from comments."""
    line_disables: "dict[int, set[str]]" = {}
    file_disables: "set[str]" = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, frozenset()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(tok.string)
        if not match:
            continue
        kind, raw_rules = match.groups()
        rules = _parse_rules(raw_rules)
        lineno = tok.start[0]
        if kind == "disable":
            line_disables.setdefault(lineno, set()).update(rules)
        elif kind == "disable-next-line":
            line_disables.setdefault(lineno + 1, set()).update(rules)
        else:  # disable-file
            file_disables.update(rules)
    return (
        {line: frozenset(rules) for line, rules in line_disables.items()},
        frozenset(file_disables),
    )


def build_file_context(path: str, relpath: str, source: str) -> FileContext:
    """Parse ``source`` into a :class:`FileContext` (never raises on bad code)."""
    tree: "ast.Module | None" = None
    parse_error: "SyntaxError | None" = None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_error = exc
    line_disables, file_disables = _collect_directives(source)
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        parse_error=parse_error,
        line_disables=line_disables,
        file_disables=file_disables,
    )


@dataclass
class ProjectContext:
    """The whole file set of one analysis run, for cross-module checkers."""

    root: str
    files: "list[FileContext]"
    _graph: "object | None" = field(default=None, repr=False, compare=False)

    def graph(self):
        """The project's import/call graphs, built lazily and memoized.

        Returns a :class:`repro.analysis.graph.ProjectGraph`; every
        project-scope checker that calls this in the same run shares one
        build (the graphs are pure functions of the parsed file set).
        """
        if self._graph is None:
            from .graph import build_project_graph

            self._graph = build_project_graph(self)
        return self._graph

    def by_suffix(self, suffix: str) -> "FileContext | None":
        """The unique file whose relpath ends with ``suffix`` (or None)."""
        matches = [f for f in self.files if f.relpath.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def in_dir(self, dirname: str) -> "list[FileContext]":
        """Every file with ``dirname`` as a path component (e.g. ``"core"``)."""
        out = []
        for f in self.files:
            parts = f.relpath.split("/")
            if dirname in parts[:-1]:
                out.append(f)
        return out

    def is_suppressed(self, relpath: str, rule: str, line: int) -> bool:
        """Suppression lookup for findings anchored in another file."""
        for f in self.files:
            if f.relpath == relpath:
                return f.is_suppressed(rule, line)
        return False
