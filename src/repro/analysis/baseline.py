"""Baseline files: adopt a linter on a tree with pre-existing findings.

A baseline is a JSON file of finding fingerprints (see
:attr:`repro.analysis.findings.Finding.fingerprint`).  Findings whose
fingerprint appears in the baseline are reported separately and do **not**
fail the run — so the linter can gate *new* findings in CI from day one
while the backlog is burned down.  Fingerprints hash the rule, path,
source line and message (not the line number), so baselined findings keep
matching across unrelated edits to the same file.

This repository's own tree lints clean, so no baseline file is committed;
the mechanism exists for downstream forks and for future rules that land
with a backlog.
"""

from __future__ import annotations

import json
from typing import Iterable

from .findings import Finding

__all__ = ["load_baseline", "write_baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


def load_baseline(path: str) -> "frozenset[str]":
    """Read a baseline file and return its fingerprint set.

    Raises :class:`ValueError` on a malformed file (CI should fail loudly
    rather than silently gate nothing).
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"baseline {path!r} has no 'fingerprints' key")
    fingerprints = payload["fingerprints"]
    if not isinstance(fingerprints, list) or not all(
        isinstance(fp, str) for fp in fingerprints
    ):
        raise ValueError(f"baseline {path!r}: 'fingerprints' must be a string list")
    return frozenset(fingerprints)


def write_baseline(path: str, findings: "Iterable[Finding]") -> int:
    """Write the fingerprints of ``findings`` to ``path``; return the count.

    Entries are sorted and annotated with their location so the file reviews
    well in a diff, but only ``fingerprints`` is consulted when loading.
    """
    items = sorted(
        {(f.fingerprint, f"{f.path}:{f.line} [{f.rule}] {f.message}") for f in findings}
    )
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": [fp for fp, _ in items],
        "annotations": {fp: note for fp, note in items},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(items)
