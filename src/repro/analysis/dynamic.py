"""Bridge from the dynamic shm sanitizer into the static reporting pipeline.

The concurrency-safety tier has two halves: the ``race-*`` checkers prove
the pool's write-ownership model over the AST, and the runtime sanitizer
(:mod:`repro.parallel.sanitizer`, ``REPRO_SANITIZE=shm``) enforces it over
actual executions, appending any violations as JSON lines to
``REPRO_SANITIZE_REPORT``.  This module is the seam that merges the second
half into the first: :func:`load_dynamic_findings` converts each recorded
violation into the same :class:`~repro.analysis.findings.Finding` value
object the checkers yield, so ``python -m repro.analysis --dynamic
report.jsonl`` produces one report — and one SARIF run — covering both.

Layering: ``parallel`` must never depend on this dev-tool layer, so the
rule table lives with the sanitizer and is imported *from here*, lazily
(the sanctioned direction and mechanism; see the layering rule).  A test
asserts the SARIF metadata and the sanitizer's table stay in lockstep.

Runtime findings have no source location.  They are anchored at the
synthetic artifact :data:`DYNAMIC_URI` with the violating pool call's
share mode as the snippet, which keeps SARIF structurally valid and —
since fingerprints hash rule, path, snippet and message but not line
numbers — gives repeated identical violations a stable identity.
"""

from __future__ import annotations

import json

from .findings import Finding

__all__ = ["DYNAMIC_URI", "load_dynamic_findings", "sanitizer_rules"]

#: Synthetic artifact URI carried by runtime findings (there is no file to
#: point at; the event happened inside a ``parallel_spgemm`` call).
DYNAMIC_URI = "runtime/parallel-pool"

#: ``kind`` tag each report line must carry (versioned with the format).
_REPORT_KIND = "repro-sanitize/1"


def sanitizer_rules() -> "list[tuple[str, str]]":
    """``(rule id, description)`` pairs for the dynamic half, sorted.

    Same shape as :func:`repro.analysis.registry.available_rules`, so the
    CLI listing and the SARIF metadata can chain the two.
    """
    # Lazy on purpose: analysis is a dev tool nothing may depend on, so the
    # shared rule table lives with the sanitizer and is pulled from here.
    from ..parallel.sanitizer import SANITIZER_RULES

    return sorted(SANITIZER_RULES.items())


def load_dynamic_findings(path: str) -> "list[Finding]":
    """Parse a sanitizer report (JSON lines) into :class:`Finding` objects.

    Raises :class:`ValueError` on malformed lines, unknown ``kind`` tags or
    rule ids outside the sanitizer's table — a report that cannot be
    trusted end to end should fail the merge loudly, not half-load.
    An empty or all-clean report yields an empty list.
    """
    known = dict(sanitizer_rules())
    findings: "list[Finding]" = []
    with open(path, "r", encoding="utf-8") as fh:
        for n, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{n}: not JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{n}: record must be an object")
            if record.get("kind") != _REPORT_KIND:
                raise ValueError(
                    f"{path}:{n}: kind {record.get('kind')!r} is not "
                    f"{_REPORT_KIND!r}"
                )
            mode = str(record.get("mode", "?"))
            for event in record.get("findings", ()):
                rule = event.get("rule")
                if rule not in known:
                    raise ValueError(
                        f"{path}:{n}: unknown sanitizer rule {rule!r} "
                        f"(known: {sorted(known)})"
                    )
                findings.append(
                    Finding(
                        rule=rule,
                        path=DYNAMIC_URI,
                        line=n,
                        col=0,
                        message=str(event.get("message", known[rule])),
                        snippet=f"share={mode}",
                    )
                )
    return findings
