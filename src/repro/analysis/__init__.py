"""repro.analysis — AST-based contract linter for the repro codebase.

The kernels' correctness contracts (one dispatch surface over many kernels,
ordered floating-point accumulation, shared-memory hygiene, determinism,
CSR construction discipline) live in docstrings and property tests; this
package makes them *machine-checked on every CI run*.

Usage::

    python -m repro.analysis                      # lint src/repro
    python -m repro.analysis --format json path/  # CI form
    python -m repro.analysis --list-rules

or programmatically::

    from repro.analysis import analyze_paths
    result = analyze_paths(["src/repro"])
    assert result.clean, result.findings

Suppress an individual finding with a trailing
``# repro-lint: disable=<rule>`` comment (add a one-line justification);
see :mod:`repro.analysis.context` for the full directive syntax and
:mod:`repro.analysis.baseline` for adopting the linter over an existing
backlog.  Each bundled rule is one module under
:mod:`repro.analysis.checkers`; ``docs/static-analysis.md`` documents the
rules and how to add one.
"""

from .baseline import load_baseline, write_baseline
from .dynamic import load_dynamic_findings, sanitizer_rules
from .findings import Finding
from .graph import ProjectGraph, build_project_graph
from .registry import (
    AnalysisResult,
    CHECKERS,
    Checker,
    analyze_paths,
    available_rules,
    register,
)
from .sarif import sarif_report, validate_sarif

__all__ = [
    "Finding",
    "Checker",
    "CHECKERS",
    "register",
    "AnalysisResult",
    "analyze_paths",
    "available_rules",
    "load_baseline",
    "write_baseline",
    "sarif_report",
    "validate_sarif",
    "ProjectGraph",
    "build_project_graph",
    "load_dynamic_findings",
    "sanitizer_rules",
]
