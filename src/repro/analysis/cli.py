"""Command-line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (no active findings), 1 = active findings, 2 = usage
or I/O error.  ``--format json`` / ``--format sarif`` emit machine-readable
reports for CI (SARIF uploads straight to GitHub code scanning);
``--write-baseline`` snapshots the current findings so later runs only
fail on *new* ones, and ``--update-baseline`` *ratchets* an existing
baseline — it can only shrink, so the backlog burns down monotonically.

The baseline flags never swallow the report: the requested format is
still written to stdout (the write notice goes to stderr), so one CI
invocation can refresh the ratchet *and* publish the SARIF.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys

from .baseline import load_baseline, write_baseline
from .dynamic import load_dynamic_findings, sanitizer_rules
from .registry import analyze_paths, available_rules
from .sarif import sarif_report

__all__ = ["main", "build_parser"]

DEFAULT_PATH = os.path.join("src", "repro")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="AST-based contract linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif = SARIF 2.1.0 for "
        "GitHub code scanning)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="fingerprints in FILE are reported as baselined, not failures",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current active findings' fingerprints to FILE, still "
        "emit the report, and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        help="ratchet FILE: rewrite it keeping only fingerprints that still "
        "match (the baseline can only shrink); exits 1 if non-baselined "
        "findings remain",
    )
    parser.add_argument(
        "--rules",
        metavar="RULE[,RULE...]",
        help="run only these rules (default: all)",
    )
    parser.add_argument(
        "--select",
        metavar="PATTERN[,PATTERN...]",
        help="run only rules matching these glob patterns (e.g. "
        "'numeric-*,race-*'); lets CI split one lint run into parallel "
        "per-family jobs",
    )
    parser.add_argument(
        "--dynamic",
        metavar="FILE",
        help="merge runtime findings from a sanitizer report (JSON lines "
        "written under REPRO_SANITIZE=shm / REPRO_SANITIZE_REPORT) into "
        "the result as active findings",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def _render_text(result, stream) -> None:
    for f in result.findings:
        print(f.render(), file=stream)
        if f.snippet:
            print(f"    {f.snippet}", file=stream)
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined) "
        f"in {result.files_scanned} file(s)"
    )
    print(summary, file=stream)


def _render_json(result, stream) -> None:
    payload = {
        "version": 1,
        "clean": result.clean,
        "files_scanned": result.files_scanned,
        "rules": result.rules,
        "warnings": list(result.warnings),
        "counts": {
            "active": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [f.to_json() for f in result.findings],
        "suppressed": [f.to_json() for f in result.suppressed],
        "baselined": [f.to_json() for f in result.baselined],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _render_sarif(result, stream) -> None:
    json.dump(sarif_report(result), stream, indent=2, sort_keys=True)
    stream.write("\n")


def _render(result, fmt, stream) -> None:
    if fmt == "json":
        _render_json(result, stream)
    elif fmt == "sarif":
        _render_sarif(result, stream)
    else:
        _render_text(result, stream)


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in available_rules():
            print(f"{rule:<18s} {description}")
        # The dynamic half shares the reporting pipeline, so its rules are
        # part of the vocabulary even though no checker implements them.
        for rule, description in sanitizer_rules():
            print(f"{rule:<18s} [dynamic] {description}")
        return 0

    paths = args.paths
    if not paths:
        if not os.path.exists(DEFAULT_PATH):
            print(
                f"error: no paths given and default {DEFAULT_PATH!r} does not "
                "exist (run from the repository root or pass paths)",
                file=sys.stderr,
            )
            return 2
        paths = [DEFAULT_PATH]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    if args.update_baseline and (args.write_baseline or args.baseline):
        print(
            "error: --update-baseline already reads and rewrites its FILE; "
            "it cannot be combined with --baseline or --write-baseline",
            file=sys.stderr,
        )
        return 2

    baseline = frozenset()
    baseline_path = args.baseline or args.update_baseline
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.select and args.rules:
        print(
            "error: --select (glob patterns) and --rules (exact ids) are "
            "two spellings of the same restriction; pass one",
            file=sys.stderr,
        )
        return 2

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    elif args.select:
        known = [rule for rule, _ in available_rules()]
        selected: "set[str]" = set()
        for pattern in (p.strip() for p in args.select.split(",")):
            if not pattern:
                continue
            matched = fnmatch.filter(known, pattern)
            if not matched:
                print(
                    f"error: --select pattern {pattern!r} matches no "
                    f"registered rule (see --list-rules)",
                    file=sys.stderr,
                )
                return 2
            selected.update(matched)
        rules = sorted(selected)
    try:
        result = analyze_paths(paths, root=args.root, rules=rules, baseline=baseline)
    except ValueError as exc:  # unknown rule names
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)

    if args.dynamic:
        try:
            result.findings.extend(load_dynamic_findings(args.dynamic))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    exit_code = 0 if result.clean else 1
    if args.write_baseline:
        # The notice goes to stderr so --format json/sarif output on stdout
        # stays machine-parseable; writing a baseline exits 0 by contract
        # (the findings just became the accepted backlog).
        count = write_baseline(args.write_baseline, result.findings)
        print(
            f"wrote {count} fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        exit_code = 0
    elif args.update_baseline:
        # Ratchet: keep exactly the old fingerprints that still match.  New
        # findings are never added (that would un-ratchet), and they still
        # fail the run via the normal exit contract.
        count = write_baseline(args.update_baseline, result.baselined)
        print(
            f"ratcheted {args.update_baseline}: {len(baseline)} -> {count} "
            "fingerprint(s)",
            file=sys.stderr,
        )

    _render(result, args.format, sys.stdout)
    return exit_code
