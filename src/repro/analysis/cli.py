"""Command-line interface: ``python -m repro.analysis [paths...]``.

Exit codes: 0 = clean (no active findings), 1 = active findings, 2 = usage
or I/O error.  ``--format json`` emits a machine-readable report for CI;
``--write-baseline`` snapshots the current findings so later runs only
fail on *new* ones.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .baseline import load_baseline, write_baseline
from .registry import analyze_paths, available_rules

__all__ = ["main", "build_parser"]

DEFAULT_PATH = os.path.join("src", "repro")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="AST-based contract linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="fingerprints in FILE are reported as baselined, not failures",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings' fingerprints to FILE and exit 0",
    )
    parser.add_argument(
        "--rules",
        metavar="RULE[,RULE...]",
        help="run only these rules (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def _render_text(result, stream) -> None:
    for f in result.findings:
        print(f.render(), file=stream)
        if f.snippet:
            print(f"    {f.snippet}", file=stream)
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined) "
        f"in {result.files_scanned} file(s)"
    )
    print(summary, file=stream)


def _render_json(result, stream) -> None:
    payload = {
        "version": 1,
        "clean": result.clean,
        "files_scanned": result.files_scanned,
        "rules": result.rules,
        "counts": {
            "active": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [f.to_json() for f in result.findings],
        "suppressed": [f.to_json() for f in result.suppressed],
        "baselined": [f.to_json() for f in result.baselined],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in available_rules():
            print(f"{rule:<18s} {description}")
        return 0

    paths = args.paths
    if not paths:
        if not os.path.exists(DEFAULT_PATH):
            print(
                f"error: no paths given and default {DEFAULT_PATH!r} does not "
                "exist (run from the repository root or pass paths)",
                file=sys.stderr,
            )
            return 2
        paths = [DEFAULT_PATH]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    baseline = frozenset()
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        result = analyze_paths(paths, root=args.root, rules=rules, baseline=baseline)
    except ValueError as exc:  # unknown rule names
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, result.findings)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0

    if args.format == "json":
        _render_json(result, sys.stdout)
    else:
        _render_text(result, sys.stdout)
    return 0 if result.clean else 1
