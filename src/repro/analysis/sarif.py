"""SARIF 2.1.0 export: the linter's findings as a code-scanning report.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is the
interchange format GitHub code scanning ingests — emitting it makes every
contract finding a first-class annotation on the pull request that
introduced it, instead of a line in a CI log.  One analysis run maps to
one SARIF ``run``:

* every registered rule (plus the synthetic ``parse-error``) appears in
  ``tool.driver.rules``, so viewers can show descriptions for rules that
  happened to produce no findings;
* *active* findings are ``level: error`` results;
* *suppressed* findings carry ``suppressions: [{kind: "inSource"}]`` (the
  ``# repro-lint:`` comment) and *baselined* ones ``kind: "external"``
  (the baseline file) — both are visible-but-non-failing, exactly the
  linter's own semantics;
* each result carries the linter's line-number-independent fingerprint as
  ``partialFingerprints["reproAnalysis/v1"]``, so code-scanning alert
  identity survives unrelated edits, same as baseline matching.

:func:`validate_sarif` is a structural validator for the subset of SARIF
2.1.0 this exporter emits (spec section references in the error messages);
the test suite runs every report through it, and it backs the acceptance
check that ``--format sarif`` output actually is SARIF.
"""

from __future__ import annotations

from .findings import Finding
from .registry import AnalysisResult, available_rules

__all__ = ["sarif_report", "validate_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: partialFingerprints key; bump the suffix if the fingerprint basis changes.
FINGERPRINT_KEY = "reproAnalysis/v1"

_TOOL_NAME = "repro-analysis"
_TOOL_URI = "docs/static-analysis.md"


def _rules_metadata() -> "list[dict]":
    # The dynamic sanitizer rules are declared unconditionally so a merged
    # run (--dynamic) validates and a static-only run still documents them.
    from .dynamic import sanitizer_rules

    rules = [
        {
            "id": rule,
            "name": "".join(p.title() for p in rule.split("-")),
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, description in (*available_rules(), *sanitizer_rules())
    ]
    rules.append(
        {
            "id": "parse-error",
            "name": "ParseError",
            "shortDescription": {
                "text": "a file that does not parse is always an active finding"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    return sorted(rules, key=lambda r: r["id"])


def _result(f: Finding, rule_index: "dict[str, int]", kind: str) -> dict:
    res = {
        "ruleId": f.rule,
        "ruleIndex": rule_index[f.rule],
        "level": "error",
        "message": {"text": f.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path, "uriBaseId": "SRCROOT"},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,  # SARIF columns are 1-based
                        **(
                            {"snippet": {"text": f.snippet}} if f.snippet else {}
                        ),
                    },
                }
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: f.fingerprint},
    }
    if kind == "suppressed":
        res["suppressions"] = [
            {"kind": "inSource", "justification": "# repro-lint: disable comment"}
        ]
    elif kind == "baselined":
        res["suppressions"] = [
            {"kind": "external", "justification": "baseline fingerprint match"}
        ]
    return res


def sarif_report(result: AnalysisResult) -> dict:
    """The SARIF 2.1.0 payload for one :class:`AnalysisResult`."""
    rules = _rules_metadata()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = (
        [_result(f, rule_index, "active") for f in result.findings]
        + [_result(f, rule_index, "suppressed") for f in result.suppressed]
        + [_result(f, rule_index, "baselined") for f in result.baselined]
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "analysis root"}}
                },
                "results": results,
                "properties": {
                    "filesScanned": result.files_scanned,
                    "rulesRun": result.rules,
                    "warnings": list(result.warnings),
                },
            }
        ],
    }


def _require(cond: bool, where: str, what: str) -> None:
    if not cond:
        raise ValueError(f"not valid SARIF 2.1.0: {where}: {what}")


def validate_sarif(payload: dict) -> None:
    """Structurally validate ``payload`` against SARIF 2.1.0 (subset).

    Checks the properties the spec marks *required* (sections 3.13–3.28)
    for logs, runs, tool/driver, reporting descriptors and results, plus
    this exporter's own guarantees (rule index consistency, 1-based
    regions, fingerprint presence).  Raises :class:`ValueError` with the
    failing path; returns None when valid.
    """
    _require(isinstance(payload, dict), "$", "log must be an object")
    _require(payload.get("version") == SARIF_VERSION, "$.version",
             f"must be {SARIF_VERSION!r}")
    runs = payload.get("runs")
    _require(isinstance(runs, list) and runs, "$.runs", "non-empty array required")
    for i, run in enumerate(runs):
        where = f"$.runs[{i}]"
        _require(isinstance(run, dict), where, "run must be an object")
        driver = run.get("tool", {}).get("driver")
        _require(isinstance(driver, dict), f"{where}.tool.driver", "required")
        _require(bool(driver.get("name")), f"{where}.tool.driver.name", "required")
        rules = driver.get("rules", [])
        ids = []
        for j, rule in enumerate(rules):
            rwhere = f"{where}.tool.driver.rules[{j}]"
            _require(isinstance(rule.get("id"), str) and rule["id"], rwhere, "id required")
            ids.append(rule["id"])
        _require(len(ids) == len(set(ids)), f"{where}.tool.driver.rules",
                 "rule ids must be unique")
        results = run.get("results")
        _require(isinstance(results, list), f"{where}.results", "array required")
        for j, res in enumerate(results):
            _validate_result(res, ids, f"{where}.results[{j}]")


def _validate_result(res: dict, rule_ids: "list[str]", where: str) -> None:
    _require(isinstance(res, dict), where, "result must be an object")
    message = res.get("message")
    _require(
        isinstance(message, dict) and isinstance(message.get("text"), str),
        f"{where}.message.text", "required",
    )
    rule_id = res.get("ruleId")
    _require(isinstance(rule_id, str) and rule_id, f"{where}.ruleId", "required")
    _require(rule_id in rule_ids, f"{where}.ruleId",
             f"{rule_id!r} not declared in tool.driver.rules")
    idx = res.get("ruleIndex")
    if idx is not None:
        _require(
            isinstance(idx, int) and 0 <= idx < len(rule_ids) and rule_ids[idx] == rule_id,
            f"{where}.ruleIndex", "must point at the ruleId's descriptor",
        )
    level = res.get("level")
    _require(level in ("none", "note", "warning", "error"), f"{where}.level",
             "must be a SARIF level")
    for k, loc in enumerate(res.get("locations", [])):
        phys = loc.get("physicalLocation")
        _require(isinstance(phys, dict), f"{where}.locations[{k}]",
                 "physicalLocation required")
        art = phys.get("artifactLocation", {})
        _require(isinstance(art.get("uri"), str), f"{where}.locations[{k}]",
                 "artifactLocation.uri required")
        region = phys.get("region")
        if region is not None:
            _require(
                isinstance(region.get("startLine"), int) and region["startLine"] >= 1,
                f"{where}.locations[{k}].region.startLine", "1-based int required",
            )
            col = region.get("startColumn")
            _require(col is None or (isinstance(col, int) and col >= 1),
                     f"{where}.locations[{k}].region.startColumn", "must be >= 1")
    for supp in res.get("suppressions", []):
        _require(supp.get("kind") in ("inSource", "external"),
                 f"{where}.suppressions", "kind must be inSource or external")
