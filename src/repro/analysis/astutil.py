"""Small AST helpers shared by the bundled checkers."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "const_str_set",
    "call_name",
    "walk_functions",
    "names_used",
]


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else None.

    Chains hanging off calls or subscripts (``f().x``) return None — the
    checkers only match statically-resolvable module/attribute paths.
    """
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> "str | None":
    """Dotted name of a call's callee (``np.random.default_rng``)."""
    return dotted_name(node.func)


def const_str_set(node: ast.AST) -> "list[tuple[str, int]] | None":
    """``(value, lineno)`` pairs for a literal collection of string constants.

    Understands ``{"a", "b"}``, ``("a", "b")``, ``["a", "b"]`` and
    ``frozenset({...})`` / ``set({...})`` wrappers — the registration-table
    shapes the dispatch checker needs.  Returns None for anything dynamic.
    """
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("frozenset", "set") and len(node.args) == 1 and not node.keywords:
            return const_str_set(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: "list[tuple[str, int]]" = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append((elt.value, elt.lineno))
            else:
                return None
        return out
    return None


def walk_functions(tree: ast.AST) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every function definition in ``tree``, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def names_used(tree: ast.AST) -> "set[str]":
    """Every identifier referenced in ``tree``: Name ids plus import aliases."""
    names: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
                if isinstance(node, ast.ImportFrom):
                    names.add(alias.name)
    return names
