"""Checker base class, rule registry, and the analysis runner.

Adding a checker is ~50 lines: subclass :class:`Checker`, implement
``check`` as a generator of :class:`~repro.analysis.findings.Finding`, and
decorate with :func:`register`.  File-scope checkers receive one
:class:`~repro.analysis.context.FileContext` per call; project-scope
checkers receive the whole :class:`~repro.analysis.context.ProjectContext`
once per run (that is how the kernel-dispatch rule correlates registration
tables split across ``core/spgemm.py``, ``core/recipe.py`` and
``core/engine.py``).

The runner (:func:`analyze_paths`) walks the requested paths, parses each
``.py`` file once, fans the contexts out to every registered checker, and
sorts findings into three buckets: *active* (fail the run), *suppressed*
(covered by a ``# repro-lint: disable`` comment) and *baselined* (matched a
fingerprint in the supplied baseline file).
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .context import FileContext, ProjectContext, build_file_context
from .findings import Finding

__all__ = [
    "Checker",
    "CHECKERS",
    "register",
    "available_rules",
    "AnalysisResult",
    "analyze_paths",
]


class Checker:
    """Base class for one contract rule.

    Class attributes
    ----------------
    rule:
        Unique rule id (kebab-case), used in suppression comments, baseline
        fingerprints, and ``--rules`` filters.
    description:
        One-line summary shown by ``--list-rules`` and the docs.
    scope:
        ``"file"`` (``check`` called once per file with a
        :class:`FileContext`) or ``"project"`` (called once per run with the
        :class:`ProjectContext`).
    """

    rule: str = ""
    description: str = ""
    scope: str = "file"

    def check(self, ctx) -> "Iterator[Finding]":
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, line: int, message: str, col: int = 0
    ) -> Finding:
        """Build a finding anchored in ``ctx`` with the snippet filled in."""
        return Finding(
            rule=self.rule,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            snippet=ctx.snippet(line),
        )


#: Rule id -> checker instance.  Populated by :func:`register` at import of
#: :mod:`repro.analysis.checkers`.
CHECKERS: "dict[str, Checker]" = {}


def register(cls: "type[Checker]") -> "type[Checker]":
    """Class decorator: instantiate and add to the rule registry."""
    if not cls.rule:
        raise ValueError(f"checker {cls.__name__} has no rule id")
    if cls.rule in CHECKERS:
        raise ValueError(f"duplicate checker rule id {cls.rule!r}")
    CHECKERS[cls.rule] = cls()
    return cls


def available_rules() -> "list[tuple[str, str]]":
    """``(rule, description)`` pairs in deterministic (sorted) order."""
    _load_builtin_checkers()
    return [(r, CHECKERS[r].description) for r in sorted(CHECKERS)]


def _load_builtin_checkers() -> None:
    """Import the bundled checker modules exactly once (self-registering)."""
    from . import checkers  # noqa: F401  (import side effect registers rules)


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: "list[Finding]"  # active: fail the run
    suppressed: "list[Finding]"
    baselined: "list[Finding]"
    files_scanned: int
    rules: "list[str]" = field(default_factory=list)
    #: non-fatal runner notes (skipped unreadable files, ...); reported in
    #: every output format but never failing the run by themselves
    warnings: "list[str]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no active finding remains."""
        return not self.findings


#: Always excluded from the walk, whatever .gitignore says: bytecode caches
#: can shadow sources with stale, unparseable or generated content.
_BUILTIN_EXCLUDES = ("__pycache__", "*.pyc", "*.pyo")


def _load_gitignore_patterns(root: str) -> "list[str]":
    """Exclusion patterns from ``<root>/.gitignore`` plus the built-ins.

    Supports the common subset: blank lines and ``#`` comments are
    skipped, a trailing ``/`` anchors a pattern to directories, and
    ``fnmatch`` globbing applies.  Negations (``!pattern``) are ignored —
    for a *linter exclusion* list, re-including a previously ignored file
    is never load-bearing, and silently mis-handling one would be.
    """
    patterns = list(_BUILTIN_EXCLUDES)
    try:
        with open(os.path.join(root, ".gitignore"), "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return patterns
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("!"):
            continue
        patterns.append(line)
    return patterns


def _is_excluded(name: str, rel: str, patterns: "list[str]") -> bool:
    """Whether a file/directory matches any exclusion pattern.

    ``name`` is the bare entry name, ``rel`` the root-relative path with
    forward slashes (empty when outside the root).
    """
    for pat in patterns:
        pat = pat.rstrip("/")
        if not pat:
            continue
        if "/" in pat:
            p = pat.lstrip("/")
            if rel and (fnmatch.fnmatch(rel, p) or fnmatch.fnmatch(rel, p + "/*")):
                return True
        elif fnmatch.fnmatch(name, pat):
            return True
    return False


def _iter_py_files(
    paths: "Iterable[str]", root: str, patterns: "list[str]"
) -> "Iterator[str]":
    """Yield every ``.py`` file under ``paths`` (files passed through).

    Directories and files matching ``patterns`` (the root's ``.gitignore``
    plus built-ins) are pruned; a path passed *explicitly* is never
    excluded — the caller asked for it by name.
    """
    seen = set()
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            def rel_of(name: str) -> str:
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                return "" if rel.startswith("..") else rel.replace(os.sep, "/")

            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and not _is_excluded(d, rel_of(d), patterns)
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                if _is_excluded(name, rel_of(name), patterns):
                    continue
                full = os.path.join(dirpath, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def _sort_key(f: Finding):
    return (f.path, f.line, f.col, f.rule, f.message)


def analyze_paths(
    paths: "Iterable[str]",
    *,
    root: "str | None" = None,
    rules: "Iterable[str] | None" = None,
    baseline: "frozenset[str] | set[str]" = frozenset(),
) -> AnalysisResult:
    """Run every registered checker over the ``.py`` files under ``paths``.

    Parameters
    ----------
    root:
        Directory findings' paths are made relative to (default: the
        current working directory).  Baseline fingerprints embed these
        relative paths, so CI and local runs must share a root convention
        (both run from the repository root).
    rules:
        Restrict the run to these rule ids (default: all registered).
    baseline:
        Fingerprints of known findings to report as *baselined* instead of
        active (see :mod:`repro.analysis.baseline`).
    """
    _load_builtin_checkers()
    root = os.path.abspath(root or os.getcwd())
    selected = set(rules) if rules is not None else set(CHECKERS)
    unknown = selected - set(CHECKERS)
    if unknown:
        raise ValueError(f"unknown rules: {sorted(unknown)}")

    warnings: "list[str]" = []
    files: "list[FileContext]" = []
    patterns = _load_gitignore_patterns(root)
    for path in _iter_py_files(paths, root, patterns):
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            # Skip-with-warning, never crash: an unreadable file must not
            # take down the whole CI lint run (parse *errors* still fail —
            # those are findings on code the interpreter would also reject).
            warnings.append(f"skipped unreadable file {relpath}: {exc}")
            continue
        files.append(build_file_context(path, relpath, source))
    project = ProjectContext(root=root, files=files)

    raw: "list[Finding]" = []
    for ctx in files:
        if ctx.parse_error is not None:
            line = ctx.parse_error.lineno or 1
            raw.append(
                Finding(
                    rule="parse-error",
                    path=ctx.relpath,
                    line=line,
                    col=ctx.parse_error.offset or 0,
                    message=f"file does not parse: {ctx.parse_error.msg}",
                    snippet=ctx.snippet(line),
                )
            )
    for rule in sorted(selected):
        checker = CHECKERS[rule]
        if checker.scope == "project":
            raw.extend(checker.check(project))
        else:
            for ctx in files:
                if ctx.tree is None:
                    continue
                raw.extend(checker.check(ctx))

    active: "list[Finding]" = []
    suppressed: "list[Finding]" = []
    baselined: "list[Finding]" = []
    for f in raw:
        if project.is_suppressed(f.path, f.rule, f.line):
            suppressed.append(f.as_suppressed())
        elif f.fingerprint in baseline:
            baselined.append(f)
        else:
            active.append(f)
    return AnalysisResult(
        findings=sorted(active, key=_sort_key),
        suppressed=sorted(suppressed, key=_sort_key),
        baselined=sorted(baselined, key=_sort_key),
        files_scanned=len(files),
        rules=sorted(selected),
        warnings=warnings,
    )
