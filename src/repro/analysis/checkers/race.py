"""The ``race`` checker family: statically prove the write-ownership model.

The zero-copy pool (:mod:`repro.parallel.pool`) rests on the paper's
Section 4.3 discipline — every worker owns a *disjoint* row block of the
output and treats the shared operands as read-only.  That invariant is
easy to eyeball in a 400-line module and impossible to eyeball once the
pool becomes a long-lived, multi-tenant substrate (ROADMAP items 1 and 2).
These five project-scope rules make it machine-checked:

* ``race-operand-write`` — a worker mutates an operand it received over a
  shared transport (an unpacked shm view, a fork-mailbox read), or any
  worker-reachable code re-enables writability of a view
  (``x.flags.writeable = True``).  Operands are read-only in workers, full
  stop — the dynamic sanitizer (``REPRO_SANITIZE=shm``,
  :mod:`repro.parallel.sanitizer`) enforces the same contract at runtime.
* ``race-block-overlap`` — slice writes into a module-global array from
  worker-reachable code whose range cannot be disjoint across workers:
  either two different worker entry points write the same shared array, or
  the written range is constant (``OUT[0:8]``, ``OUT[:]``) instead of
  derived from the task assignment.
* ``race-global-mutation`` — mutation of fork-inherited module globals
  (the ``_FORK_OPERANDS`` / ``_SHM_HANDLES`` pattern) or of an imported
  module's attributes from code reachable from any process context.  Under
  ``fork`` such writes silently diverge between parent and child; under
  ``spawn`` they silently vanish.  Sanctioned setup paths carry a
  ``# repro-lint: disable=race-global-mutation`` with a justification.
* ``race-spawn-capture`` — a lambda or nested function handed to a
  pool/process dispatch point.  These pickle by qualified name, so a
  spawned child cannot reconstruct them; working today under ``fork`` just
  means the bug is platform-shaped.
* ``race-unlocked-shared`` — a module-global dict/list mutated from more
  than one process context (two worker entries, or a worker and the
  parent) with no enclosing ``with <lock>`` at some site.

All five share one model of the tree, built from the project graph's
dispatch points (:attr:`~repro.analysis.graph.CallGraph.dispatches`),
write events (:meth:`~repro.analysis.graph.CallGraph.writes_of`) and call
reachability.  The rules self-gate: a tree with no dispatch point (every
fixture tree but ``race_bad``, and any project that never forks) produces
no findings.  The observability layer and the sanitizer itself are exempt
by construction — both maintain deliberately per-process observational
state (the env tracer, the sanitizer ledger) whose divergence between
processes is the design, not a bug; traced==untraced bit-identity is
property-tested, and the sanitizer never feeds results back into kernels.
"""

from __future__ import annotations

import ast

from ..context import ProjectContext
from ..graph import CallGraph, Dispatch, ProjectGraph, WriteEvent, module_bindings
from ..registry import Checker, register

#: Event kinds that mutate the object behind a name (vs. rebinding it).
_MUTATION_KINDS = frozenset(
    {"subscript-store", "attr-store", "mutating-call", "inplace-call", "del-subscript"}
)

#: Event kinds that mutate a *collection* (the dict/list-shaped hazards).
_COLLECTION_KINDS = frozenset({"mutating-call", "del-subscript"})

#: Path fragments exempt from the race family (see module docstring).
_EXEMPT_FRAGMENTS = ("observability/", "parallel/sanitizer.py")


def _is_exempt(relpath: str) -> bool:
    return any(frag in relpath or relpath.endswith(frag) for frag in _EXEMPT_FRAGMENTS)


def _module_globals(tree: "ast.Module") -> "frozenset[str]":
    """Names assigned at module top level (the fork-inherited state)."""
    out: "set[str]" = set()
    for node in tree.body:
        targets: "list[ast.expr]" = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                out.update(e.id for e in target.elts if isinstance(e, ast.Name))
    return frozenset(out)


def _imported_names(tree: "ast.Module") -> "frozenset[str]":
    """Every name bound by an import anywhere in the file (incl. lazy)."""
    out: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.update(a.asname or a.name.split(".")[0] for a in node.names)
        elif isinstance(node, ast.ImportFrom):
            out.update(a.asname or a.name for a in node.names)
    return frozenset(out)


def _under_lock(event: WriteEvent) -> bool:
    """True when an enclosing ``with`` context manager looks like a lock."""
    return any("lock" in ctx.lower() for ctx in event.locks)


class _RaceModel:
    """Everything the five rules share, built once per project per run."""

    def __init__(self, project: ProjectContext, graph: ProjectGraph) -> None:
        self.project = project
        self.calls: CallGraph = graph.calls
        self.imports = graph.imports
        self.dispatches: "list[Dispatch]" = list(graph.calls.dispatches)
        self.entries: "set[str]" = graph.calls.worker_entries()
        self.parents: "set[str]" = {d.caller for d in self.dispatches}
        #: context label -> set of reachable def qualnames
        self.reach: "dict[str, set[str]]" = {}
        for entry in sorted(self.entries):
            self.reach[f"worker:{entry}"] = self.calls.reachable_from({entry})
        for caller in sorted(self.parents):
            self.reach[f"parent:{caller}"] = self.calls.reachable_from({caller})
        self._globals_cache: "dict[str, frozenset[str]]" = {}
        self._imports_cache: "dict[str, frozenset[str]]" = {}

    @classmethod
    def of(cls, project: ProjectContext) -> "_RaceModel":
        model = getattr(project, "_race_model", None)
        if model is None or model.project is not project:
            model = cls(project, project.graph())
            project._race_model = model  # type: ignore[attr-defined]
        return model

    # -- per-module vocabulary ------------------------------------------
    def globals_of(self, qual: str) -> "frozenset[str]":
        ctx = self.calls.defs[qual].ctx
        cached = self._globals_cache.get(ctx.relpath)
        if cached is None:
            cached = _module_globals(ctx.tree)
            self._globals_cache[ctx.relpath] = cached
        return cached

    def imports_of(self, qual: str) -> "frozenset[str]":
        ctx = self.calls.defs[qual].ctx
        cached = self._imports_cache.get(ctx.relpath)
        if cached is None:
            cached = _imported_names(ctx.tree)
            self._imports_cache[ctx.relpath] = cached
        return cached

    # -- reachability views ---------------------------------------------
    def all_context_quals(self) -> "set[str]":
        """Defs reachable from any process context (worker or parent)."""
        out: "set[str]" = set()
        for quals in self.reach.values():
            out |= quals
        return out

    def worker_quals(self) -> "set[str]":
        out: "set[str]" = set()
        for label, quals in self.reach.items():
            if label.startswith("worker:"):
                out |= quals
        return out

    def contexts_reaching(self, qual: str) -> "set[str]":
        return {label for label, quals in self.reach.items() if qual in quals}

    def checkable(self, quals: "set[str]") -> "list[str]":
        """Sorted, non-exempt subset of ``quals`` that have definitions."""
        return sorted(
            q
            for q in quals
            if q in self.calls.defs and not _is_exempt(self.calls.defs[q].ctx.relpath)
        )


class _RaceChecker(Checker):
    """Shared gating for the family: only run on trees that dispatch."""

    scope = "project"

    def check(self, project: ProjectContext):
        graph = project.graph()
        if not graph.calls.dispatches:
            return
        yield from self._check_model(_RaceModel.of(project))

    def _check_model(self, model: _RaceModel):
        raise NotImplementedError


# --------------------------------------------------------------------------
# (a) operands are read-only in workers
# --------------------------------------------------------------------------

def _tainted_operands(entry_def, model: _RaceModel) -> "set[str]":
    """Names in a worker entry bound from a shared-operand source.

    A source is a call whose bare name contains ``unpack`` (the shm view
    reconstruction) or a subscript read of a module global (the fork
    mailbox).  Tuple targets taint every element.
    """
    tainted: "set[str]" = set()
    globals_ = model.globals_of(entry_def.qualname)
    for node in ast.walk(entry_def.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        from_unpack = isinstance(value, ast.Call) and "unpack" in (
            _bare_name(value.func) or ""
        )
        base = value
        while isinstance(base, ast.Subscript):
            base = base.value
        from_mailbox = (
            isinstance(value, ast.Subscript)
            and isinstance(base, ast.Name)
            and base.id in globals_
        )
        if not (from_unpack or from_mailbox):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                tainted.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                tainted.update(
                    e.id for e in target.elts if isinstance(e, ast.Name)
                )
    return tainted


def _bare_name(func: ast.AST) -> "str | None":
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class OperandWriteChecker(_RaceChecker):
    rule = "race-operand-write"
    description = (
        "workers never mutate shared operands (shm views / fork-mailbox "
        "reads) and never re-enable writability of a view"
    )

    def _check_model(self, model: _RaceModel):
        calls = model.calls
        for entry in sorted(model.entries):
            d = calls.defs.get(entry)
            if d is None or _is_exempt(d.ctx.relpath):
                continue
            tainted = _tainted_operands(d, model)
            if tainted:
                yield from self._flag_writes(model, entry, entry, tainted)
                yield from self._one_hop(model, d, entry, tainted)
        # writability flips anywhere worker-reachable, tainted or not: the
        # read-only flag is the sanitizer's enforcement surface and turning
        # it back on is always a contract violation.
        for qual in model.checkable(model.worker_quals()):
            d = calls.defs[qual]
            for event in calls.writes_of(qual):
                if (
                    event.kind == "attr-store"
                    and event.base.endswith(".flags.writeable")
                    and event.value_is_true
                ):
                    yield self.finding(
                        d.ctx,
                        event.lineno,
                        f"re-enables writability of {event.root!r} in "
                        "worker-reachable code — shared views stay "
                        "read-only for the life of the segment",
                        col=event.col,
                    )

    def _flag_writes(self, model, qual, witness, tainted):
        d = model.calls.defs[qual]
        for event in model.calls.writes_of(qual):
            if event.kind not in _MUTATION_KINDS or event.root not in tainted:
                continue
            if event.kind == "attr-store" and event.base.endswith(
                ".flags.writeable"
            ):
                continue  # the writability sweep below owns this shape

            how = {
                "subscript-store": "writes into",
                "attr-store": "rebinds an attribute of",
                "mutating-call": "calls a mutating method on",
                "inplace-call": "calls inplace=True on",
                "del-subscript": "deletes from",
            }[event.kind]
            yield self.finding(
                d.ctx,
                event.lineno,
                f"{how} shared operand {event.root!r} (worker entry "
                f"{witness}) — operands travel read-only; copy before "
                "mutating",
                col=event.col,
            )

    def _one_hop(self, model, entry_def, witness, tainted):
        """Follow tainted arguments one call deep into local helpers."""
        module = model.imports.module_names.get(entry_def.ctx.relpath)
        if module is None:
            return
        name_map, _ = module_bindings(module, entry_def.ctx, model.imports)
        local = {
            q.rsplit(".", 1)[-1]: q
            for q, dd in model.calls.defs.items()
            if dd.ctx is entry_def.ctx and dd.cls is None
        }
        for node in ast.walk(entry_def.node):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
                continue
            target = local.get(node.func.id) or name_map.get(node.func.id)
            callee = model.calls.defs.get(target) if target else None
            if callee is None or _is_exempt(callee.ctx.relpath):
                continue
            params = [a.arg for a in callee.node.args.args]
            callee_tainted = {
                params[i]
                for i, arg in enumerate(node.args)
                if i < len(params)
                and isinstance(arg, ast.Name)
                and arg.id in tainted
            }
            if callee_tainted:
                yield from self._flag_writes(
                    model, callee.qualname, witness, callee_tainted
                )


# --------------------------------------------------------------------------
# (b) row-block writes into shared arrays must be disjoint
# --------------------------------------------------------------------------

@register
class BlockOverlapChecker(_RaceChecker):
    rule = "race-block-overlap"
    description = (
        "slice writes into shared module-global arrays from workers must "
        "come from one entry point and derive their range from the task"
    )

    def _check_model(self, model: _RaceModel):
        calls = model.calls
        # (base identity) -> set of worker entries whose closure writes it
        writers: "dict[tuple[str, str], set[str]]" = {}
        sites: "list[tuple[str, str, WriteEvent]]" = []
        for label, quals in model.reach.items():
            if not label.startswith("worker:"):
                continue
            entry = label[len("worker:"):]
            for qual in model.checkable(quals):
                d = calls.defs[qual]
                for event in calls.writes_of(qual):
                    if (
                        event.kind != "subscript-store"
                        or event.index_kind != "slice"
                        or event.root not in model.globals_of(qual)
                    ):
                        continue
                    key = (d.ctx.relpath, event.root)
                    writers.setdefault(key, set()).add(entry)
                    sites.append((entry, qual, event))
        seen: "set[tuple[str, int, int]]" = set()
        for entry, qual, event in sites:
            d = calls.defs[qual]
            site_id = (d.ctx.relpath, event.lineno, event.col)
            if site_id in seen:
                continue
            seen.add(site_id)
            entries = writers[(d.ctx.relpath, event.root)]
            if len(entries) > 1:
                yield self.finding(
                    d.ctx,
                    event.lineno,
                    f"shared array {event.root!r} is sliced-written by "
                    f"{len(entries)} worker entry points "
                    f"({', '.join(sorted(entries))}) — row-block ownership "
                    "cannot be disjoint",
                    col=event.col,
                )
            elif not event.index_names:
                yield self.finding(
                    d.ctx,
                    event.lineno,
                    f"writes a constant range of shared array {event.root!r}"
                    " — every worker writes the same slice; derive the "
                    "range from the task's block bounds",
                    col=event.col,
                )


# --------------------------------------------------------------------------
# (c) fork-inherited module globals are not worker-mutable
# --------------------------------------------------------------------------

@register
class GlobalMutationChecker(_RaceChecker):
    rule = "race-global-mutation"
    description = (
        "no mutation of fork-inherited module globals or imported-module "
        "attributes from process-context code (sanctioned sites carry a "
        "justified suppression)"
    )

    def _check_model(self, model: _RaceModel):
        calls = model.calls
        for qual in model.checkable(model.all_context_quals()):
            d = calls.defs[qual]
            globals_ = model.globals_of(qual)
            imports_ = model.imports_of(qual)
            for event in calls.writes_of(qual):
                if event.kind == "global-rebind":
                    yield self.finding(
                        d.ctx,
                        event.lineno,
                        f"rebinds module global {event.root!r} in "
                        "process-context code — fork children diverge "
                        "silently, spawn children never see it",
                        col=event.col,
                    )
                elif (
                    event.kind in _COLLECTION_KINDS
                    or (event.kind == "subscript-store" and event.index_kind == "index")
                ) and event.root in globals_:
                    yield self.finding(
                        d.ctx,
                        event.lineno,
                        f"mutates fork-inherited module global {event.root!r}"
                        " in process-context code — each process sees its "
                        "own copy; route state through the transport "
                        "instead (or suppress at a documented setup site)",
                        col=event.col,
                    )
                elif event.kind == "attr-store" and event.root in imports_:
                    yield self.finding(
                        d.ctx,
                        event.lineno,
                        f"assigns attribute {event.base!r} of an imported "
                        "module in process-context code — monkeypatching "
                        "module state is per-process and races with other "
                        "threads (suppress only at a documented site that "
                        "restores it)",
                        col=event.col,
                    )


# --------------------------------------------------------------------------
# (d) dispatched callables must survive spawn pickling
# --------------------------------------------------------------------------

@register
class SpawnCaptureChecker(_RaceChecker):
    rule = "race-spawn-capture"
    description = (
        "no lambda or nested function handed to a pool/process dispatch "
        "point (they cannot be pickled under the spawn start method)"
    )

    def _check_model(self, model: _RaceModel):
        for dispatch in model.dispatches:
            if dispatch.callable_kind not in ("lambda", "nested"):
                continue
            d = model.calls.defs.get(dispatch.caller)
            if d is None or _is_exempt(d.ctx.relpath):
                continue
            what = (
                "a lambda"
                if dispatch.callable_kind == "lambda"
                else "a function defined inside the dispatching function"
            )
            yield self.finding(
                d.ctx,
                dispatch.lineno,
                f"hands {what} to {dispatch.method}(...) — it pickles by "
                "qualified name, so a spawned worker cannot import it; "
                "move it to module level",
                col=dispatch.col,
            )


# --------------------------------------------------------------------------
# (e) cross-context shared-collection mutation needs a lock
# --------------------------------------------------------------------------

@register
class UnlockedSharedChecker(_RaceChecker):
    rule = "race-unlocked-shared"
    description = (
        "a module-global dict/list mutated from more than one process "
        "context must hold a lock at every mutation site"
    )

    def _check_model(self, model: _RaceModel):
        calls = model.calls
        # base identity -> (contexts that mutate it, sites)
        contexts: "dict[tuple[str, str], set[str]]" = {}
        sites: "dict[tuple[str, str], list[tuple[str, WriteEvent]]]" = {}
        for qual in model.checkable(model.all_context_quals()):
            d = calls.defs[qual]
            globals_ = model.globals_of(qual)
            reaching = model.contexts_reaching(qual)
            for event in calls.writes_of(qual):
                is_collection_write = event.kind in _COLLECTION_KINDS or (
                    event.kind == "subscript-store" and event.index_kind == "index"
                )
                if not is_collection_write or event.root not in globals_:
                    continue
                key = (d.ctx.relpath, event.root)
                contexts.setdefault(key, set()).update(reaching)
                sites.setdefault(key, []).append((qual, event))
        for key in sorted(sites):
            if len(contexts[key]) < 2:
                continue
            for qual, event in sites[key]:
                if _under_lock(event):
                    continue
                d = calls.defs[qual]
                yield self.finding(
                    d.ctx,
                    event.lineno,
                    f"mutates shared {event.root!r} without a lock; it is "
                    f"touched from {len(contexts[key])} process contexts "
                    f"({', '.join(sorted(contexts[key]))})",
                    col=event.col,
                )
