"""Rule ``accum-order`` — floating-point accumulation must be an ordered fold.

The fast engine's bit-for-bit contract (PR 1) hinges on one numerical rule:
every accumulation of intermediate products must apply ``add`` one value at
a time, in arrival order — the sequence the scalar kernels execute.
``numpy.ufunc.reduceat`` (and ``ufunc.reduce``) may evaluate *pairwise* for
accuracy, which produces different float64 bits than the ordered fold and
silently breaks ``engine="fast"``'s equivalence with the faithful kernels
(see :mod:`repro.core.hash_batch` and
:meth:`repro.semiring.Semiring.accumulate_segments`).

Pairwise reduction **is** legitimate in one place: the ESC family's
sort-then-compress boundary, where the kernel's own contract is "sorted
merge", not "scalar-kernel replica".  Those call sites carry a
``# repro-lint: disable=accum-order`` comment with a one-line
justification; everything else is a finding.

Flags:

* any ``*.reduceat(...)`` attribute use (``np.add.reduceat``,
  ``semiring.add.reduceat``, ...);
* calls to ``reduce_segments`` — the sanctioned *pairwise* wrapper, allowed
  only at whitelisted ESC boundaries (ordered paths must use
  ``accumulate_segments`` / ``np.add.at`` instead);
* ``*.add.reduce(...)`` — a ufunc reduction on an additive monoid.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..context import FileContext
from ..findings import Finding
from ..registry import Checker, register


@register
class AccumulationOrderChecker(Checker):
    rule = "accum-order"
    description = (
        "pairwise float reduction (ufunc.reduceat / reduce_segments) outside "
        "whitelisted ESC segment boundaries"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "reduceat":
                yield self.finding(
                    ctx,
                    node.lineno,
                    "ufunc.reduceat sums pairwise and drifts from the scalar "
                    "kernels' ordered fold by ULPs; use "
                    "Semiring.accumulate_segments / np.add.at, or whitelist a "
                    "legitimate ESC sort-boundary use with a justification",
                    node.col_offset,
                )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                if leaf == "reduce_segments":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "reduce_segments is the pairwise (reduceat) wrapper, "
                        "allowed only at ESC sort boundaries; accumulation "
                        "paths must use the ordered accumulate_segments",
                        node.col_offset,
                    )
                elif leaf == "reduce" and ".add." in f".{name}":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "ufunc.reduce on an additive monoid may sum pairwise; "
                        "use an ordered fold (np.add.at / accumulate_segments)",
                        node.col_offset,
                    )
