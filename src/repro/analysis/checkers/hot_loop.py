"""hot-loop-alloc: no allocation inside per-row kernel loops.

Section 4.3 of the paper is blunt about why naive SpGEMM implementations
fall off a cliff: allocating (and deallocating) per-row scratch inside the
row loop serializes on the allocator exactly where the kernel should be
embarrassingly parallel — the cure is thread-private buffers sized once
per thread (KokkosKernels institutionalized the same lesson as a memory
pool, arXiv:1801.03065).  The Python analogue of that contract: the
*thread* level of a kernel (the body of a ``partition.rows_of(tid)``
loop) may allocate, but loops nested inside it — the per-row/per-entry
hot loops — may not.

This file-scope checker finds every ``for ... in <x>.rows_of(...)`` loop
(the repo-wide thread-partition idiom) and flags, inside any loop nested
within it:

* numpy allocation calls — ``np.zeros`` / ``empty`` / ``ones`` / ``full``
  / ``append`` / ``concatenate`` / ``hstack`` / ``vstack`` / ``tile`` /
  ``repeat`` (``np.append`` and ``np.concatenate`` additionally copy
  everything accumulated so far: quadratic, the exact cliff);
* fresh container creation bound to a name — ``buf = []`` / ``{}`` /
  ``set()`` / ``list(...)`` / a comprehension — i.e. per-row list growth
  from empty, which reallocates geometrically in the hottest loop.

Appending to a buffer *created at thread level* is deliberately **not**
flagged: that is the paper's sanctioned growing-buffer scheme, amortized
O(1) per element with no per-row churn.  Kernels whose algorithm is
inherently per-row (the heap's per-row priority queue, the merge kernel's
run stack) carry explicit ``repro-lint`` suppressions with justifications
— visible, reviewed decisions rather than silent exemptions.
"""

from __future__ import annotations

import ast

from ..context import FileContext
from ..registry import Checker, register

_NP_ALLOC = frozenset(
    {"zeros", "empty", "ones", "full", "append", "concatenate",
     "hstack", "vstack", "tile", "repeat"}
)
_NP_MODULES = frozenset({"np", "numpy"})
_CONTAINER_CALLS = frozenset({"list", "dict", "set"})
_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _is_rows_of_loop(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.For)
        and isinstance(node.iter, ast.Call)
        and isinstance(node.iter.func, ast.Attribute)
        and node.iter.func.attr == "rows_of"
    )


def _np_alloc_name(call: ast.Call) -> "str | None":
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NP_MODULES
        and func.attr in _NP_ALLOC
    ):
        return f"{func.value.id}.{func.attr}"
    return None


def _fresh_container(value: ast.AST) -> "str | None":
    """A description of ``value`` when it creates a fresh container."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return "a fresh container literal"
    if isinstance(value, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return "a comprehension"
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in _CONTAINER_CALLS
    ):
        return f"{value.func.id}()"
    return None


def _walk_until_loops(stmts: "list[ast.stmt]"):
    """Yield every node under ``stmts``, not descending into nested loops.

    A nested loop's header ``iter`` expression still belongs to the
    enclosing body (it runs once per enclosing iteration), so it is
    walked; the nested body is that loop's own problem.
    """
    stack: "list[ast.AST]" = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, _LOOPS):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                stack.append(node.iter)
            else:
                stack.append(node.test)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class HotLoopAllocChecker(Checker):
    rule = "hot-loop-alloc"
    description = (
        "no numpy allocation or fresh-container growth inside loops nested "
        "in a rows_of() thread loop (the paper's Section 4.3 contract)"
    )
    scope = "file"

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if _is_rows_of_loop(node):
                # Direct body (thread level) may allocate; nested loops are
                # the per-row hot path.
                for child in ast.walk(node):
                    if child is not node and isinstance(child, _LOOPS):
                        yield from self._check_hot_loop(ctx, child)

    def _check_hot_loop(self, ctx, loop):
        # Walk the loop body but stop at nested loops: each nested loop is
        # its own hot loop, scanned when the outer walk reaches it (only
        # its header's iter expression belongs to *this* loop's body).
        for node in _walk_until_loops(loop.body + loop.orelse):
            if isinstance(node, ast.Call):
                name = _np_alloc_name(node)
                if name is not None:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"{name}(...) inside a per-row hot loop — allocate "
                        "at thread level and fill in place (paper Section "
                        "4.3's deallocation cliff)",
                        col=node.col_offset,
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                desc = _fresh_container(value)
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                if desc is not None and any(
                    isinstance(t, ast.Name) for t in targets
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"binds {desc} inside a per-row hot loop — per-row "
                        "container churn is the Python analogue of the "
                        "per-row malloc the paper forbids",
                        col=node.col_offset,
                    )
