"""plan-purity: the numeric-only replay path never touches CSR structure.

The inspector-executor split (Algorithm 2 of the paper; PR 3's plan layer)
rests on one promise: once ``inspect`` has built the output structure
(``indptr``/``indices``), ``SpgemmPlan.execute`` and the numeric kernels
it dispatches to (``hash_numeric``, ``spa_numeric``) only *fill values*.
If the numeric path ever rewrites structure arrays or calls back into the
symbolic machinery, plan reuse silently recomputes what the plan exists to
amortize — and cached plans can be corrupted for every later execute.

This project-scope checker walks the intra-project call graph (see
:mod:`repro.analysis.graph`) from those three entry points — including the
conservative by-name attribute tier, so ``acc.extract()`` pulls in every
``extract`` definition — and flags, anywhere in the reachable set:

* stores to an ``.indptr`` / ``.indices`` attribute (rebinding structure
  on a live object);
* in-place writes into arrays *named* ``indptr`` / ``indices``
  (``indptr[i] = ...``), including via an ``out=`` keyword;
* fresh allocation bound to those names (``indptr = np.zeros(...)``);
* any call into the symbolic/structure builders (everything defined in
  ``core/symbolic.py``, plus the scheduler's ``rows_to_threads``, the
  recipe's ``recommend``, and ``flop_per_row``).

``matrix/csr.py`` is exempt — the validating ``CSR`` constructor is the
one sanctioned place structure is assembled (mirroring ``csr-construct``).
Reading structure (``plan.indptr[i]`` on the right-hand side) is of course
fine; replay *should* read the plan.
"""

from __future__ import annotations

import ast

from ..context import ProjectContext
from ..registry import Checker, register

_ENTRY_SUFFIXES = ("SpgemmPlan.execute", "hash_numeric", "spa_numeric")
_STRUCTURE_NAMES = frozenset({"indptr", "indices"})
_EXTRA_BUILDERS = frozenset({"rows_to_threads", "flop_per_row", "recommend"})
_ALLOC_CALLEES = frozenset(
    {"zeros", "empty", "ones", "full", "arange", "cumsum", "concatenate",
     "array", "copy", "empty_like", "zeros_like"}
)
_EXEMPT_SUFFIXES = ("matrix/csr.py",)


def _is_structure_ref(node: ast.AST) -> bool:
    """True when ``node`` names a CSR structure array (any access chain)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _STRUCTURE_NAMES
    if isinstance(node, ast.Name):
        return node.id in _STRUCTURE_NAMES
    return False


def _bare_callee(call: ast.Call) -> "str | None":
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class PlanPurityChecker(Checker):
    rule = "plan-purity"
    description = (
        "the numeric-only call graph under SpgemmPlan.execute / "
        "hash_numeric / spa_numeric never mutates or allocates CSR "
        "structure arrays"
    )
    scope = "project"

    def check(self, project: ProjectContext):
        if project.by_suffix("core/plan.py") is None:
            return
        calls = project.graph().calls
        entries = calls.entries_matching(*_ENTRY_SUFFIXES)
        if not entries:
            return
        builder_names = set(_EXTRA_BUILDERS)
        for qual, d in calls.defs.items():
            if d.ctx.relpath.endswith("core/symbolic.py"):
                builder_names.add(qual.rsplit(".", 1)[-1])
        reachable = calls.reachable_from(entries, by_name=True)
        for qual in sorted(reachable):
            d = calls.defs[qual]
            if any(d.ctx.relpath.endswith(s) for s in _EXEMPT_SUFFIXES):
                continue
            if d.ctx.relpath.endswith("core/symbolic.py"):
                continue  # builders are flagged at their call sites instead
            yield from self._check_def(d, qual, builder_names)

    def _check_def(self, d, qual, builder_names):
        where = f"(reachable from the numeric-only path via {qual})"
        for node in ast.walk(d.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    yield from self._check_store(d, node, target, where)
            elif isinstance(node, ast.Call):
                yield from self._check_call(d, node, where, builder_names)

    def _check_store(self, d, stmt, target, where):
        if isinstance(target, ast.Attribute) and target.attr in _STRUCTURE_NAMES:
            yield self.finding(
                d.ctx,
                stmt.lineno,
                f"store to .{target.attr} mutates CSR structure in the "
                f"numeric-only path {where}",
                col=stmt.col_offset,
            )
        elif isinstance(target, ast.Subscript) and _is_structure_ref(target.value):
            yield self.finding(
                d.ctx,
                stmt.lineno,
                f"in-place write into a structure array {where} — numeric "
                "replay must only fill values",
                col=stmt.col_offset,
            )
        elif (
            isinstance(target, ast.Name)
            and target.id in _STRUCTURE_NAMES
            and isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(getattr(stmt, "value", None), ast.Call)
            and _bare_callee(stmt.value) in _ALLOC_CALLEES
        ):
            yield self.finding(
                d.ctx,
                stmt.lineno,
                f"allocates a fresh {target.id!r} array {where} — structure "
                "is built once, by inspect()",
                col=stmt.col_offset,
            )

    def _check_call(self, d, call, where, builder_names):
        for kw in call.keywords:
            if kw.arg == "out" and _is_structure_ref(kw.value):
                yield self.finding(
                    d.ctx,
                    call.lineno,
                    f"out= writes into a structure array {where}",
                    col=call.col_offset,
                )
        bare = _bare_callee(call)
        if bare in builder_names:
            yield self.finding(
                d.ctx,
                call.lineno,
                f"calls symbolic/structure builder {bare}() {where} — the "
                "numeric path must replay the plan, not rebuild it",
                col=call.col_offset,
            )
