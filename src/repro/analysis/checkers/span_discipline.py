"""span-discipline: every tracer seam conforms to the repro-trace/1 schema.

The observability layer (PR 4) is only trustworthy if the kernels use it
with discipline — Fig. 15-style phase breakdowns silently lie when a span
is opened but never closed, when a phase name falls outside the
``KNOWN_PHASES`` vocabulary (``phase_breakdown`` buckets it as noise), or
when a counter bumped inside a traced region has no ``KernelStats`` field
to reconcile against.  This project-scope checker reads the *actual*
vocabulary out of ``observability/tracer.py`` and ``core/instrument.py``
(no hard-coded copy to rot) and then audits every ``.span(...)`` /
``.record(...)`` / ``.counter(...)`` / ``.add_counter(...)`` seam in the
project:

* a ``.span(...)`` call must be entered — either directly as a ``with``
  context expression, or assigned to a name that a later ``with`` in the
  same scope enters (the ``scope = obs.span(...); with scope:`` split the
  hash kernel uses to keep lines short);
* a literal ``phase=`` must be a known phase; when ``phase=`` is absent
  the span/record *name* becomes the phase (``Span.__init__`` defaults
  ``phase`` to ``name``), so the name itself must then be known;
* a literal counter key must be a declared ``KernelStats`` field or a
  member of ``EXTRA_SPAN_COUNTERS`` (trace-only counters, e.g. ``nnz``).

Dynamic names/phases (variables, f-strings) are skipped — this is a
contract check, not a type system.  The checker activates only when the
linted set contains both vocabulary files.
"""

from __future__ import annotations

import ast

from ..astutil import const_str_set
from ..context import FileContext, ProjectContext
from ..registry import Checker, register

_SPAN_METHODS = ("span",)
_RECORD_METHODS = ("record",)
_COUNTER_METHODS = ("counter", "add_counter")


def _known_phases(tracer_ctx: FileContext) -> "frozenset[str] | None":
    """The ``KNOWN_PHASES`` literal from the tracer module, if present."""
    for node in tracer_ctx.tree.body:  # type: ignore[union-attr]
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "KNOWN_PHASES":
                    pairs = const_str_set(node.value)
                    if pairs is not None:
                        return frozenset(v for v, _ in pairs)
    return None


def _declared_counters(instrument_ctx: FileContext) -> "frozenset[str] | None":
    """KernelStats field names plus the EXTRA_SPAN_COUNTERS literal."""
    fields: "set[str]" = set()
    found_stats = False
    for node in instrument_ctx.tree.body:  # type: ignore[union-attr]
        if isinstance(node, ast.ClassDef) and node.name == "KernelStats":
            found_stats = True
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields.add(item.target.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "EXTRA_SPAN_COUNTERS"
                ):
                    pairs = const_str_set(node.value)
                    if pairs is not None:
                        fields.update(v for v, _ in pairs)
    return frozenset(fields) if found_stats else None


def _literal_str(node: "ast.expr | None") -> "str | None":
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _kwarg(call: ast.Call, name: str) -> "ast.expr | None":
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _parent_map(tree: ast.AST) -> "dict[int, ast.AST]":
    parents: "dict[int, ast.AST]" = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _enclosing_scope(node: ast.AST, parents: "dict[int, ast.AST]") -> ast.AST:
    """Nearest enclosing function (or the module) containing ``node``."""
    cur = parents.get(id(node))
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return cur
        cur = parents.get(id(cur))
    return node


def _entered_names(scope: ast.AST) -> "set[str]":
    """Names used as a ``with`` context expression anywhere in ``scope``."""
    names: "set[str]" = set()
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    names.add(item.context_expr.id)
    return names


@register
class SpanDisciplineChecker(Checker):
    rule = "span-discipline"
    description = (
        "tracer spans are balanced, phases/names stay in the repro-trace/1 "
        "vocabulary, counters map to declared KernelStats fields"
    )
    scope = "project"

    def check(self, project: ProjectContext):
        tracer_ctx = project.by_suffix("observability/tracer.py")
        instrument_ctx = project.by_suffix("core/instrument.py")
        if tracer_ctx is None or tracer_ctx.tree is None:
            return
        if instrument_ctx is None or instrument_ctx.tree is None:
            return
        phases = _known_phases(tracer_ctx)
        counters = _declared_counters(instrument_ctx)
        if phases is None:
            return
        for ctx in project.files:
            if ctx.tree is None or ctx is tracer_ctx:
                continue
            yield from self._check_file(ctx, phases, counters)

    def _check_file(self, ctx, phases, counters):
        parents = _parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _SPAN_METHODS:
                yield from self._check_span(ctx, node, parents, phases)
            elif func.attr in _RECORD_METHODS:
                yield from self._check_vocab(ctx, node, phases, kind="record")
            elif func.attr in _COUNTER_METHODS and counters is not None:
                yield from self._check_counter(ctx, node, counters)

    def _check_span(self, ctx, call, parents, phases):
        yield from self._check_vocab(ctx, call, phases, kind="span")
        parent = parents.get(id(call))
        if isinstance(parent, (ast.With, ast.AsyncWith)) or isinstance(
            parent, ast.withitem
        ):
            return  # entered directly
        if isinstance(parent, ast.Assign) and all(
            isinstance(t, ast.Name) for t in parent.targets
        ):
            scope = _enclosing_scope(call, parents)
            entered = _entered_names(scope)
            names = [t.id for t in parent.targets]
            if not any(n in entered for n in names):
                yield self.finding(
                    ctx,
                    call.lineno,
                    f"span assigned to {names[0]!r} is never entered with "
                    "a `with` statement in this scope — timings from an "
                    "unentered span never reach the trace",
                    col=call.col_offset,
                )
            return
        yield self.finding(
            ctx,
            call.lineno,
            "tracer.span(...) opened outside a `with` statement — the span "
            "is never closed, so its timing is lost and the trace tree is "
            "unbalanced",
            col=call.col_offset,
        )

    def _check_vocab(self, ctx, call, phases, *, kind):
        phase_node = _kwarg(call, "phase")
        phase = _literal_str(phase_node)
        name = _literal_str(call.args[0]) if call.args else None
        vocab = ", ".join(sorted(phases))
        if phase_node is not None:
            if phase is not None and phase not in phases:
                yield self.finding(
                    ctx,
                    call.lineno,
                    f"{kind} phase {phase!r} is not in the repro-trace/1 "
                    f"phase vocabulary ({vocab}) — phase_breakdown() would "
                    "misbucket it",
                    col=call.col_offset,
                )
            return
        # No explicit phase: Span defaults phase to the name, so the name
        # itself must be a known phase.
        if name is not None and name not in phases:
            yield self.finding(
                ctx,
                call.lineno,
                f"{kind} name {name!r} has no phase= and is not itself in "
                f"the repro-trace/1 phase vocabulary ({vocab}); pass an "
                "explicit phase= from the vocabulary",
                col=call.col_offset,
            )

    def _check_counter(self, ctx, call, counters):
        key = _literal_str(call.args[0]) if call.args else None
        if key is None or key in counters:
            return
        yield self.finding(
            ctx,
            call.lineno,
            f"counter {key!r} is not a declared KernelStats field (nor in "
            "EXTRA_SPAN_COUNTERS) — trace counters must reconcile with the "
            "instrumentation schema",
            col=call.col_offset,
        )
