"""The ``numeric-*`` checker family: enforce the canonical numeric contract.

Four project-scope rules built on the dtype abstract interpreter
(:class:`repro.analysis.numerics.NumericsModel`):

* ``numeric-index-narrowing`` — an index/indptr-role array (role inferred
  from CSR field names in the assigned target or astype receiver) reaches
  an allocation or ``astype`` whose resolved dtype is narrower than, or
  incompatible with, the canonical 64-bit signed index.  This is the
  2^31-nnz overflow class the bit-identity tests cannot see.
* ``numeric-dtype-literal`` — a hard-coded dtype literal (``np.int64``,
  ``np.float32``, ``"float64"``...) at an allocation site inside a kernel
  (``core``) directory.  Kernels must allocate from the sanctioned
  constants (``INDPTR_DTYPE``/``INDEX_DTYPE``/``VALUE_DTYPE`` in
  ``matrix/csr.py``, the accumulator dtype in ``semiring.py``) or from the
  operand's own dtype (``x.dtype``, ``np.result_type``) so a contract
  change propagates instead of silently diverging.
* ``numeric-unsafe-cast`` — ``astype`` on a value-role array (``data``,
  ``vals``, ``values``) without ``casting="safe"``.  Unchecked value casts
  silently truncate; a provably-safe boundary carries an explicit
  suppression with its justification.
* ``numeric-bytes-model`` — perfmodel/distributed traffic code computing
  byte volumes from integer literals (``ENTRY_BYTES = 12``,
  ``(nrows + 1) * 8``) instead of ``dtype.itemsize``-derived constants.
  A literal byte model goes quietly wrong the day the contract changes
  width — exactly what the derived constants in
  ``perfmodel/quantities.py`` exist to prevent.

The family self-gates on the model's **armed** state: a tree that does not
declare the contract (no ``matrix/csr.py`` with the three ``*_DTYPE``
constants) produces no findings, so every other fixture tree stays silent.
"""

from __future__ import annotations

import ast

from ..context import FileContext, ProjectContext
from ..numerics import (
    DtypeSite,
    NumericsModel,
    index_narrow_reason,
)
from ..registry import Checker, register

#: Final name components that mark an array as index/indptr-role.
_INDEX_TOKENS = ("indptr", "indices")

#: Final name components that mark an array as value-role.
_VALUE_NAMES = frozenset({"data", "vals", "values"})

#: Integer literals a byte-volume expression multiplies by when someone
#: hand-expanded a dtype width (i32/i64/f32/f64 sizes and the packed
#: index+value entry sizes of both the paper's and the canonical layout).
_WIDTH_LITERALS = frozenset({4, 8, 12, 16})


def _index_role_name(site: DtypeSite) -> "str | None":
    """The index-role name a site binds or casts, or None."""
    candidates = list(site.targets)
    if site.receiver:
        candidates.append(site.receiver)
    for name in candidates:
        last = name.split(".")[-1]
        if any(tok in last for tok in _INDEX_TOKENS):
            return name
    return None


class _NumericsChecker(Checker):
    """Shared gate: build/fetch the model, bail when the tree is unarmed."""

    scope = "project"

    def check(self, project: ProjectContext):
        model = NumericsModel.of(project)
        if not model.armed:
            return
        yield from self._check_model(model, project)

    def _check_model(self, model: NumericsModel, project: ProjectContext):
        raise NotImplementedError

    def _site_finding(self, model: NumericsModel, site: DtypeSite, message: str):
        ctx = model.file(site.relpath)
        if ctx is not None:
            yield self.finding(ctx, site.lineno, message, col=site.col)


@register
class IndexNarrowingChecker(_NumericsChecker):
    rule = "numeric-index-narrowing"
    description = (
        "index/indptr-role array allocated or cast narrower than the "
        "canonical 64-bit index dtype"
    )

    def _check_model(self, model: NumericsModel, project: ProjectContext):
        for site in model.sites:
            name = _index_role_name(site)
            if name is None:
                continue
            reason = index_narrow_reason(site.value)
            if reason is None:
                continue
            verb = "cast to" if site.kind == "astype" else "allocated as"
            yield from self._site_finding(
                model,
                site,
                f"index-role array {name!r} {verb} {site.value}: {reason}; "
                "use INDEX_DTYPE/INDPTR_DTYPE from matrix/csr.py",
            )


@register
class DtypeLiteralChecker(_NumericsChecker):
    rule = "numeric-dtype-literal"
    description = (
        "hard-coded dtype literal at a kernel allocation site; use the "
        "canonical matrix/csr.py constants or the operand dtype"
    )

    def _check_model(self, model: NumericsModel, project: ProjectContext):
        core = {f.relpath for f in project.in_dir("core")}
        for site in model.sites:
            if site.kind != "alloc" or site.relpath not in core:
                continue
            if site.relpath in model.sanctioned_relpaths:
                continue
            if site.source not in ("np-literal", "string"):
                continue
            if site.value == "bool":
                # Boolean masks are not numeric-contract arrays; a literal
                # ``dtype=bool`` flag array is idiomatic and layout-free.
                continue
            shown = site.const_name or site.value
            yield from self._site_finding(
                model,
                site,
                f"np.{site.func} allocation hard-codes dtype {shown!r}; kernels "
                "must use INDPTR_DTYPE/INDEX_DTYPE/VALUE_DTYPE (matrix/csr.py) "
                "or the operand's dtype/np.result_type",
            )


@register
class UnsafeCastChecker(_NumericsChecker):
    rule = "numeric-unsafe-cast"
    description = (
        'astype on a value array without casting="safe" (or a justified '
        "suppression at a sanctioned boundary)"
    )

    def _check_model(self, model: NumericsModel, project: ProjectContext):
        for site in model.sites:
            if site.kind != "astype" or site.has_casting:
                continue
            if not site.receiver:
                continue
            if site.receiver.split(".")[-1] not in _VALUE_NAMES:
                continue
            yield from self._site_finding(
                model,
                site,
                f"value array {site.receiver!r} cast via astype without "
                'casting="safe"; an unchecked cast silently truncates '
                "out-of-range values",
            )


@register
class BytesModelChecker(_NumericsChecker):
    rule = "numeric-bytes-model"
    description = (
        "byte-volume arithmetic from integer literals instead of "
        "dtype.itemsize-derived constants"
    )

    #: Directories housing traffic/communication-volume models.
    _DIRS = ("perfmodel", "distributed")

    def _check_model(self, model: NumericsModel, project: ProjectContext):
        files: "list[FileContext]" = []
        seen: "set[str]" = set()
        for dirname in self._DIRS:
            for ctx in project.in_dir(dirname):
                if ctx.relpath not in seen:
                    seen.add(ctx.relpath)
                    files.append(ctx)
        for ctx in files:
            if ctx.tree is None:
                continue
            yield from self._check_file(ctx)

    def _check_file(self, ctx: FileContext):
        for node in ctx.tree.body:  # type: ignore[union-attr]
            if isinstance(node, ast.Assign):
                yield from self._check_const_assign(ctx, node)
        for node in ast.walk(ctx.tree):  # type: ignore[arg-type]
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "bytes" not in node.name:
                continue
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult)):
                    continue
                width = self._width_literal(sub)
                if width is not None:
                    yield self.finding(
                        ctx,
                        sub.lineno,
                        f"byte volume in {node.name!r} multiplies by the bare "
                        f"width literal {width}; derive from the canonical "
                        "dtypes' itemsize (INDPTR_BYTES/INDEX_BYTES/VALUE_BYTES)",
                        col=sub.col_offset,
                    )

    def _check_const_assign(self, ctx: FileContext, node: ast.Assign):
        for target in node.targets:
            if not (isinstance(target, ast.Name) and target.id.endswith("_BYTES")):
                continue
            if (
                isinstance(node.value, ast.Constant)
                and type(node.value.value) is int
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"{target.id} hard-codes {node.value.value} bytes; derive "
                    "it from np.dtype(...).itemsize of the canonical contract "
                    "dtypes so the traffic model tracks matrix/csr.py",
                    col=node.col_offset,
                )

    @staticmethod
    def _width_literal(node: ast.BinOp) -> "int | None":
        for side in (node.left, node.right):
            if (
                isinstance(side, ast.Constant)
                and type(side.value) is int
                and side.value in _WIDTH_LITERALS
            ):
                return side.value
        return None
