"""Rule ``overbroad-except`` — bare and overbroad exception handlers.

Kernel code that swallows ``Exception`` (or everything) hides the exact
failures the reproduction is supposed to surface: a shape mismatch caught
accidentally turns a loud contract violation into silent wrong numbers.
The repo's own error hierarchy (:mod:`repro.errors`) exists precisely so
callers can catch narrowly.

Flags:

* ``except:`` — always (also swallows ``SystemExit``/``KeyboardInterrupt``);
* ``except BaseException:`` — always;
* ``except Exception:`` — unless the handler re-raises (a bare ``raise``
  anywhere in the handler body), which is the legitimate
  log-and-propagate shape.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..context import FileContext
from ..findings import Finding
from ..registry import Checker, register


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@register
class OverbroadExceptChecker(Checker):
    rule = "overbroad-except"
    description = "bare `except:` and non-re-raising `except Exception:` handlers"
    scope = "file"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    "bare `except:` swallows SystemExit/KeyboardInterrupt; "
                    "catch a specific exception (see repro.errors)",
                    node.col_offset,
                )
                continue
            name = dotted_name(node.type)
            if name in ("BaseException", "builtins.BaseException"):
                yield self.finding(
                    ctx,
                    node.lineno,
                    "`except BaseException:` swallows interpreter-exit signals; "
                    "catch a specific exception",
                    node.col_offset,
                )
            elif name in ("Exception", "builtins.Exception") and not _reraises(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    "`except Exception:` without re-raise hides contract violations; "
                    "catch a specific exception or re-raise",
                    node.col_offset,
                )
