"""Rule ``kernel-dispatch`` — the multi-kernel registration tables must agree.

The paper's central engineering claim is that many SpGEMM kernels coexist
behind one dispatch surface.  In this codebase that surface is split over
three registration tables plus the kernel modules themselves, and they rot
independently (a kernel registered in one table but forgotten in another is
exactly how multi-kernel SpGEMM codebases decay — cf. KokkosKernels):

* ``core/spgemm.py`` — the Table-1 registry ``ALGORITHMS`` and the
  ``spgemm()`` dispatch branches;
* ``core/recipe.py`` — the Table-4 recipe: every registered algorithm must
  be recommendable by some rule, listed in ``RECIPE_EXCLUDED`` with a
  justification, or listed in ``AUTOTUNE_ONLY`` (pickable only by the
  calibrated selector in ``repro.autotune``);
* ``core/engine.py`` — the engine coverage partition: every registered
  algorithm must appear in exactly one of ``FAST_ALGORITHMS``,
  ``VECTORIZED_ALGORITHMS``, ``FAITHFUL_ONLY_ALGORITHMS``;
* ``core/plan.py`` — the inspector–executor coverage partition: every
  registered algorithm must appear in exactly one of ``PLAN_ALGORITHMS``
  (has an ``inspect()``/``execute()`` split) or ``PLANLESS_ALGORITHMS``
  (deliberately plan-free, with justification);
* every public ``*_spgemm(a, b, ...)`` entry point in ``core/`` must be
  referenced by the dispatcher (or carry a
  ``# repro-lint: disable=kernel-dispatch`` comment explaining why it is a
  deliberately separate surface, e.g. ``masked_spgemm``).

This is a *project-scope* checker: it activates only when the file set
being analyzed contains ``core/spgemm.py`` (so linting a stray file or a
test fixture tree does not demand the whole package), and it checks only
the tables present in the set.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import const_str_set, names_used
from ..context import FileContext, ProjectContext
from ..findings import Finding
from ..registry import Checker, register


def _assignment_value(tree: ast.Module, name: str) -> "tuple[ast.AST, int] | None":
    """``(value, lineno)`` of a module-level ``name = ...`` assignment."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value, node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value, node.lineno
    return None


def _registry_keys(tree: ast.Module) -> "tuple[dict[str, int], int]":
    """``{algorithm: lineno}`` of the ALGORITHMS dict keys, plus its lineno."""
    found = _assignment_value(tree, "ALGORITHMS")
    if found is None:
        return {}, 1
    value, lineno = found
    keys: "dict[str, int]" = {}
    if isinstance(value, ast.Dict):
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = key.lineno
    return keys, lineno


#: The recipe sentinel: resolved to a concrete algorithm before dispatch,
#: deliberately absent from the Table-1 registry.
_AUTO_SENTINEL = "auto"


def _dispatch_strings(tree: ast.Module) -> "set[str]":
    """Every algorithm name the dispatcher compares against.

    Collects ``algorithm == "x"`` equality tests and
    ``algorithm in ("x", "y")`` membership tests anywhere in the dispatch
    module (the chain lives in ``spgemm()`` / ``_dispatch_kernel()``; both
    branch styles appear).  The ``"auto"`` sentinel is not an algorithm
    and is ignored.
    """
    out: "set[str]" = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not (isinstance(node.left, ast.Name) and node.left.id == "algorithm"):
            continue
        comparator = node.comparators[0]
        if isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
                out.add(comparator.value)
        elif isinstance(node.ops[0], (ast.In, ast.NotIn)):
            strs = const_str_set(comparator)
            if strs:
                out.update(value for value, _ in strs)
    out.discard(_AUTO_SENTINEL)
    return out


def _recipe_recommendations(tree: ast.Module) -> "set[str]":
    """Every algorithm name a Table-4 rule can return."""
    out: "set[str]" = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else getattr(callee, "attr", "")
        if name == "decision" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                out.add(first.value)
        elif name == "RecipeDecision":
            for kw in node.keywords:
                if (
                    kw.arg == "algorithm"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    out.add(kw.value.value)
    return out


def _named_str_set(tree: ast.Module, name: str) -> "tuple[dict[str, int], int] | None":
    """``({value: lineno}, set lineno)`` for a module-level string-set constant."""
    found = _assignment_value(tree, name)
    if found is None:
        return None
    value, lineno = found
    strs = const_str_set(value)
    if strs is None:
        return None
    return {v: ln for v, ln in strs}, lineno


def _kernel_entry_points(ctx: FileContext) -> "Iterator[ast.FunctionDef]":
    """Public top-level ``*_spgemm(a, b, ...)`` functions in a core module."""
    for node in ctx.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.startswith("_") or not node.name.endswith("_spgemm"):
            continue
        args = node.args.posonlyargs + node.args.args
        if len(args) >= 2 and args[0].arg == "a" and args[1].arg == "b":
            yield node


@register
class KernelDispatchChecker(Checker):
    rule = "kernel-dispatch"
    description = (
        "SpGEMM kernels must be consistently registered across the Table-1 "
        "registry, the spgemm() dispatch, the Table-4 recipe, and the "
        "engine coverage map"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> "Iterator[Finding]":
        spgemm_ctx = project.by_suffix("core/spgemm.py")
        if spgemm_ctx is None or spgemm_ctx.tree is None:
            return
        registered, registry_line = _registry_keys(spgemm_ctx.tree)
        dispatched = _dispatch_strings(spgemm_ctx.tree)
        yield from self._check_dispatch(spgemm_ctx, registered, registry_line, dispatched)
        yield from self._check_entry_points(project, spgemm_ctx)
        recipe_ctx = project.by_suffix("core/recipe.py")
        if recipe_ctx is not None and recipe_ctx.tree is not None and registered:
            yield from self._check_recipe(recipe_ctx, registered)
        engine_ctx = project.by_suffix("core/engine.py")
        if engine_ctx is not None and engine_ctx.tree is not None and registered:
            yield from self._check_engine_coverage(engine_ctx, registered)
        plan_ctx = project.by_suffix("core/plan.py")
        if plan_ctx is not None and plan_ctx.tree is not None and registered:
            yield from self._check_plan_coverage(plan_ctx, registered)

    # -- spgemm.py: registry vs dispatch branches ------------------------
    def _check_dispatch(self, ctx, registered, registry_line, dispatched):
        for alg in sorted(set(registered) - dispatched):
            yield self.finding(
                ctx,
                registered[alg],
                f"algorithm {alg!r} is registered in ALGORITHMS but spgemm() "
                "has no dispatch branch for it — calls would hit the "
                "registry/dispatch-mismatch assertion",
            )
        for alg in sorted(dispatched - set(registered)):
            yield self.finding(
                ctx,
                registry_line,
                f"spgemm() dispatches algorithm {alg!r} which is not in the "
                "ALGORITHMS registry — unreachable branch or missing "
                "Table-1 row",
            )

    # -- core/*.py: every public kernel entry point is dispatched --------
    def _check_entry_points(self, project: ProjectContext, spgemm_ctx: FileContext):
        referenced = names_used(spgemm_ctx.tree)
        for ctx in project.in_dir("core"):
            if ctx is spgemm_ctx or ctx.tree is None:
                continue
            for fn in _kernel_entry_points(ctx):
                if fn.name not in referenced:
                    yield self.finding(
                        ctx,
                        fn.lineno,
                        f"kernel entry point {fn.name}() is not referenced by "
                        "the spgemm() dispatcher; register it in ALGORITHMS "
                        "+ dispatch, or whitelist it as a deliberately "
                        "separate surface",
                    )

    # -- recipe.py: Table-4 / autotune coverage --------------------------
    def _check_recipe(self, ctx, registered):
        recommended = _recipe_recommendations(ctx.tree)
        excluded_info = _named_str_set(ctx.tree, "RECIPE_EXCLUDED")
        if excluded_info is None:
            excluded, excluded_line = {}, 1
        else:
            excluded, excluded_line = excluded_info
        autotune_info = _named_str_set(ctx.tree, "AUTOTUNE_ONLY")
        if autotune_info is None:
            autotune, autotune_line = {}, excluded_line
        else:
            autotune, autotune_line = autotune_info
        covered = recommended | set(excluded) | set(autotune)
        for alg in sorted(set(registered) - covered):
            yield self.finding(
                ctx,
                excluded_line,
                f"registered algorithm {alg!r} is neither recommendable by "
                "any Table-4 rule, nor listed in RECIPE_EXCLUDED, nor in "
                "AUTOTUNE_ONLY — add a recipe rule or an explicit "
                "exclusion/autotune entry with justification",
            )
        for alg in sorted(recommended & set(excluded)):
            yield self.finding(
                ctx,
                excluded[alg],
                f"algorithm {alg!r} is listed in RECIPE_EXCLUDED but a "
                "Table-4 rule can still recommend it — the exclusion lies",
            )
        for alg in sorted(recommended & set(autotune)):
            yield self.finding(
                ctx,
                autotune[alg],
                f"algorithm {alg!r} is listed in AUTOTUNE_ONLY but a "
                "Table-4 rule can still recommend it — it is not "
                "autotune-only",
            )
        for alg in sorted(set(excluded) & set(autotune)):
            yield self.finding(
                ctx,
                autotune[alg],
                f"algorithm {alg!r} appears in both RECIPE_EXCLUDED and "
                "AUTOTUNE_ONLY — the partition must be disjoint",
            )
        for alg in sorted(set(excluded) - set(registered)):
            yield self.finding(
                ctx,
                excluded[alg],
                f"RECIPE_EXCLUDED entry {alg!r} is not a registered "
                "algorithm — stale exclusion",
            )
        for alg in sorted(set(autotune) - set(registered)):
            yield self.finding(
                ctx,
                autotune[alg],
                f"AUTOTUNE_ONLY entry {alg!r} is not a registered "
                "algorithm — stale autotune claim",
            )
        for alg in sorted(recommended - set(registered)):
            yield self.finding(
                ctx,
                excluded_line,
                f"a Table-4 rule recommends {alg!r} which is not in the "
                "ALGORITHMS registry — recommend() would hand spgemm() an "
                "unknown algorithm",
            )

    # -- engine.py: coverage partition -----------------------------------
    def _check_engine_coverage(self, ctx, registered):
        sets = {}
        line = 1
        for set_name in (
            "FAST_ALGORITHMS",
            "VECTORIZED_ALGORITHMS",
            "FAITHFUL_ONLY_ALGORITHMS",
        ):
            info = _named_str_set(ctx.tree, set_name)
            if info is None:
                yield self.finding(
                    ctx,
                    line,
                    f"engine coverage set {set_name} is missing or not a "
                    "literal set of algorithm names — the fast-engine "
                    "coverage contract cannot be checked",
                )
                return
            sets[set_name], line = info
        for alg in sorted(registered):
            owners = [name for name, members in sets.items() if alg in members]
            if not owners:
                yield self.finding(
                    ctx,
                    line,
                    f"registered algorithm {alg!r} appears in no engine "
                    "coverage set — declare it FAST, VECTORIZED, or "
                    "FAITHFUL_ONLY so resolve_engine()'s fallback is a "
                    "decision, not an accident",
                )
            elif len(owners) > 1:
                yield self.finding(
                    ctx,
                    sets[owners[1]][alg],
                    f"algorithm {alg!r} appears in multiple engine coverage "
                    f"sets ({', '.join(owners)}) — the partition must be "
                    "disjoint",
                )
        for set_name, members in sets.items():
            for alg in sorted(set(members) - set(registered)):
                yield self.finding(
                    ctx,
                    members[alg],
                    f"{set_name} entry {alg!r} is not a registered algorithm "
                    "— stale coverage claim",
                )

    # -- plan.py: inspector–executor coverage partition ------------------
    def _check_plan_coverage(self, ctx, registered):
        sets = {}
        line = 1
        for set_name in ("PLAN_ALGORITHMS", "PLANLESS_ALGORITHMS"):
            info = _named_str_set(ctx.tree, set_name)
            if info is None:
                yield self.finding(
                    ctx,
                    line,
                    f"plan coverage set {set_name} is missing or not a "
                    "literal set of algorithm names — the inspector–executor "
                    "coverage contract cannot be checked",
                )
                return
            sets[set_name], line = info
        for alg in sorted(registered):
            owners = [name for name, members in sets.items() if alg in members]
            if not owners:
                yield self.finding(
                    ctx,
                    line,
                    f"registered algorithm {alg!r} appears in no plan "
                    "coverage set — declare it PLAN-capable or PLANLESS so "
                    "inspect()'s rejection is a decision, not an accident",
                )
            elif len(owners) > 1:
                yield self.finding(
                    ctx,
                    sets[owners[1]][alg],
                    f"algorithm {alg!r} appears in both PLAN_ALGORITHMS and "
                    "PLANLESS_ALGORITHMS — the partition must be disjoint",
                )
        for set_name, members in sets.items():
            for alg in sorted(set(members) - set(registered)):
                yield self.finding(
                    ctx,
                    members[alg],
                    f"{set_name} entry {alg!r} is not a registered algorithm "
                    "— stale coverage claim",
                )
