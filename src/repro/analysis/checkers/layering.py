"""layering: the package dependency DAG is a contract, not a convention.

The ROADMAP's north star — refactor kernels freely while apps and benches
stay stable — only works if dependencies point one way: ``core`` must
never know about ``apps`` (or the linter that audits it), and the
observability layer must stay *import-optional* from the kernels so a
stripped-down deployment can drop it.  Python enforces none of this; a
single convenience import quietly inverts a layer and the next refactor
deadlocks on an import cycle.

This project-scope checker consumes the module-level import edges from
:mod:`repro.analysis.graph` and enforces:

* **the DAG** — each top-level ``repro`` subpackage may import only the
  layers listed in ``ALLOWED_IMPORTS`` (module-level imports; every layer
  may import itself, stdlib and third-party modules are ignored);
* **lazy-import escape hatch** — imports inside function bodies are
  exempt from the DAG (the sanctioned way to break a cycle, e.g.
  ``matrix/stats.py`` lazily borrowing ``core.symbolic``) — *except* when
  the target is ``apps`` or ``analysis``, which nothing else may import
  even lazily (``apps`` is the top of the *library* DAG; ``analysis`` is
  a dev tool, not a library).  The one sanctioned exception is ``serve``:
  the serving tier sits *above* apps — it dispatches app jobs — so it may
  import ``apps`` like any other layer below it;
* **import-optional observability** — ``core`` modules may bind only
  ``NULL_TRACER`` and ``tracer_from_env`` from ``repro.observability`` at
  module level: kernels accept any tracer object duck-typed, and the
  null-object default keeps the hot path free of conditional imports.
  (``parallel``/``apps`` sit above both layers and may import freely.)

The root package ``__init__`` and ``__main__`` modules are exempt — they
are the public facade and *should* re-export across layers.
"""

from __future__ import annotations

from ..context import ProjectContext
from ..registry import Checker, register

#: Target layers each top-level subpackage may import at module level.
#: Importing within your own layer is always allowed.
ALLOWED_IMPORTS: "dict[str, frozenset[str]]" = {
    "errors": frozenset(),
    "semiring": frozenset({"errors"}),
    "machine": frozenset({"errors"}),
    "observability": frozenset({"errors"}),
    "matrix": frozenset({"errors", "semiring"}),
    "rmat": frozenset({"errors", "matrix", "semiring"}),
    "datasets": frozenset({"errors", "matrix", "rmat", "semiring"}),
    "core": frozenset({"errors", "semiring", "matrix", "observability"}),
    "parallel": frozenset({"errors", "semiring", "matrix", "core", "observability"}),
    "distributed": frozenset({"errors", "matrix", "core", "semiring"}),
    "apps": frozenset({"errors", "matrix", "core", "semiring", "observability"}),
    "serve": frozenset({
        "errors", "semiring", "matrix", "core", "parallel", "observability",
        "apps", "autotune",
    }),
    "perfmodel": frozenset({"errors", "machine", "matrix", "core"}),
    "autotune": frozenset({
        "errors", "machine", "matrix", "core", "perfmodel", "datasets",
    }),
    "profiling": frozenset({"errors", "observability"}),
    "analysis": frozenset(),
}

#: Layers nothing else may import, even lazily.
_FORBIDDEN_TARGETS = frozenset({"apps", "analysis"})

#: Layers sitting *above* apps that may import it: the serving tier is the
#: process-level facade dispatching app jobs, so it consumes apps the way
#: apps consume core.
_APP_CONSUMERS = frozenset({"serve"})

#: The only observability names kernels may bind at module level.
_SANCTIONED_TRACER_NAMES = frozenset({"NULL_TRACER", "tracer_from_env"})

_ROOT = "repro"


def _layer(module: str) -> "str | None":
    """Top-level ``repro`` subpackage of ``module`` (None for outsiders)."""
    parts = module.split(".")
    if parts[0] != _ROOT:
        return None
    if len(parts) == 1:
        return ""  # the root package itself
    return parts[1]


@register
class LayeringChecker(Checker):
    rule = "layering"
    description = (
        "package imports follow the dependency DAG; core never imports "
        "apps/analysis; observability stays import-optional from kernels"
    )
    scope = "project"

    def check(self, project: ProjectContext):
        graph = project.graph().imports
        if not any(m == _ROOT or m.startswith(_ROOT + ".") for m in graph.modules):
            return
        for edge in graph.edges:
            src_layer = _layer(edge.src)
            if src_layer is None:
                continue
            # The facade re-exports across layers by design.
            if src_layer == "" or edge.src.rsplit(".", 1)[-1] == "__main__":
                continue
            dst_layer = _layer(edge.dst)
            if dst_layer is None or dst_layer in ("", src_layer):
                continue
            ctx = graph.modules.get(edge.src)
            if ctx is None:
                continue
            yield from self._check_edge(ctx, edge, src_layer, dst_layer)

    def _check_edge(self, ctx, edge, src_layer, dst_layer):
        if dst_layer == "apps" and src_layer in _APP_CONSUMERS:
            return  # the serving tier legitimately sits above apps
        if dst_layer in _FORBIDDEN_TARGETS and src_layer != dst_layer:
            how = "lazily (inside a function)" if edge.lazy else "at module level"
            yield self.finding(
                ctx,
                edge.lineno,
                f"{src_layer} imports repro.{dst_layer} {how} — "
                f"{'apps sit at the top of the DAG' if dst_layer == 'apps' else 'analysis is a dev tool, not a library'}; "
                "nothing below may depend on it",
                col=0,
            )
            return
        if edge.lazy:
            return  # sanctioned cycle-breaking escape hatch
        allowed = ALLOWED_IMPORTS.get(src_layer)
        if allowed is not None and dst_layer not in allowed:
            yield self.finding(
                ctx,
                edge.lineno,
                f"{src_layer} may not import repro.{dst_layer} at module "
                f"level (allowed: {', '.join(sorted(allowed)) or 'nothing'}); "
                "move the dependency down the DAG or make it lazy with a "
                "justification",
                col=0,
            )
            return
        if (
            src_layer == "core"
            and dst_layer == "observability"
            and edge.names
            and not set(edge.names) <= _SANCTIONED_TRACER_NAMES
        ):
            extra = sorted(set(edge.names) - _SANCTIONED_TRACER_NAMES)
            yield self.finding(
                ctx,
                edge.lineno,
                f"core binds {', '.join(extra)} from repro.observability at "
                "module level — kernels must keep observability "
                "import-optional (only NULL_TRACER / tracer_from_env; "
                "accept tracer objects duck-typed)",
                col=0,
            )
