"""Rule ``determinism`` — kernel code must be bit-reproducible run to run.

Every kernel, scheduler and generator in :mod:`repro` is validated by
bit-exactness tests (and the fast engine's whole contract is bit-for-bit
equality), so any ambient nondeterminism in library code is a latent test
flake and a silent correctness hazard.  Three sources are flagged:

* **unseeded RNG** — ``np.random.default_rng()`` with no seed argument, the
  legacy ``np.random.*`` global-state functions, and stdlib ``random``
  module-level functions.  Library code must thread an explicit ``seed``
  (every generator in :mod:`repro.rmat` / :mod:`repro.datasets` does);
* **wall-clock logic** — ``time.time()`` / ``time.time_ns()`` in library
  code.  Timing belongs in the benchmark harness (``time.perf_counter``
  for *reported* durations is fine and not flagged);
* **set-iteration order** — ``for ... in {a, b}`` / ``for ... in set(...)``:
  set iteration order varies with hash seeding across processes; iterate a
  sorted or list form instead.

The observability layer (:mod:`repro.observability` and the kernels'
tracer seams) is exempt by construction rather than by suppression: its
only clock is the already-sanctioned ``perf_counter``, and it never feeds
timing back into control flow — traced and untraced runs are
property-tested bit-identical in ``tests/test_observability.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name
from ..context import FileContext
from ..findings import Finding
from ..registry import Checker, register

#: Legacy global-state numpy RNG entry points (non-exhaustive on purpose:
#: these are the ones that appear in real SpGEMM codebases).
_NP_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "shuffle", "permutation", "choice", "uniform",
})

#: stdlib ``random`` module-level functions (global Mersenne state).
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "seed", "gauss",
})


@register
class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "unseeded RNG, wall-clock-dependent logic, or set-iteration order "
        "in library code"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_iteration(ctx, node.iter)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> "Iterator[Finding]":
        name = dotted_name(node.func)
        if name is None:
            return
        leaf = name.rsplit(".", 1)[-1]
        if leaf == "default_rng" and not node.args and not node.keywords:
            yield self.finding(
                ctx,
                node.lineno,
                "unseeded default_rng() draws OS entropy; thread an explicit "
                "seed parameter (every repro generator takes one)",
                node.col_offset,
            )
        elif name.startswith(("np.random.", "numpy.random.")) and leaf in _NP_LEGACY:
            yield self.finding(
                ctx,
                node.lineno,
                f"legacy global-state RNG {name}() is unseeded shared state; "
                "use np.random.default_rng(seed)",
                node.col_offset,
            )
        elif name.startswith("random.") and leaf in _STDLIB_RANDOM:
            yield self.finding(
                ctx,
                node.lineno,
                f"stdlib {name}() uses hidden global state; use "
                "np.random.default_rng(seed)",
                node.col_offset,
            )
        elif name in ("time.time", "time.time_ns"):
            yield self.finding(
                ctx,
                node.lineno,
                "wall-clock time in library code breaks reproducibility; "
                "timing belongs in the bench harness (perf_counter for "
                "reported durations is fine)",
                node.col_offset,
            )

    def _check_iteration(self, ctx: FileContext, iter_node: ast.AST) -> "Iterator[Finding]":
        is_set_literal = isinstance(iter_node, ast.Set)
        is_set_call = (
            isinstance(iter_node, ast.Call)
            and dotted_name(iter_node.func) in ("set", "frozenset")
        )
        if is_set_literal or is_set_call:
            yield self.finding(
                ctx,
                iter_node.lineno,
                "iteration order over a set varies with hash seeding across "
                "processes; iterate sorted(...) or a list/tuple instead",
                iter_node.col_offset,
            )
