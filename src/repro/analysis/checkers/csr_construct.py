"""Rule ``csr-construct`` — CSR structs are built, not attribute-stuffed.

:class:`repro.matrix.csr.CSR` instances are logically immutable, and the
``sorted_rows`` flag is the paper's central object of study — it must never
be guessed or stuffed after the fact.  The validating constructor is the
single place the invariants (array shapes/dtypes, flag truthfulness) are
established; assigning ``indptr``/``indices``/``data``/``sorted_rows`` on a
CSR from outside bypasses that and is exactly how a kernel ships a matrix
whose flag lies about its rows.

Flags any assignment (including augmented and annotated assignment) whose
target is ``<expr>.indptr`` / ``.indices`` / ``.data`` / ``.sorted_rows``
where ``<expr>`` is not ``self`` — ``matrix/csr.py`` itself is exempt (the
class manages its own fields, e.g. ``sort_rows(inplace=True)`` and the
``shuffle_rows`` flag re-detection).  The fix is always the same: construct
a new ``CSR(..., sorted_rows=...)`` (pass ``None`` to have the constructor
detect the flag).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Checker, register

_CSR_FIELDS = frozenset({"indptr", "indices", "data", "sorted_rows"})
_OWNER_SUFFIX = "matrix/csr.py"


def _stuffed_targets(node: ast.AST) -> "Iterator[ast.Attribute]":
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    for target in targets:
        nodes = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        for t in nodes:
            if (
                isinstance(t, ast.Attribute)
                and t.attr in _CSR_FIELDS
                and not (isinstance(t.value, ast.Name) and t.value.id == "self")
            ):
                yield t


@register
class CSRConstructChecker(Checker):
    rule = "csr-construct"
    description = (
        "assignment to CSR indptr/indices/data/sorted_rows outside the "
        "validating constructor"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        if ctx.relpath.endswith(_OWNER_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            for target in _stuffed_targets(node):
                yield self.finding(
                    ctx,
                    target.lineno,
                    f"attribute-stuffing `.{target.attr}` bypasses the "
                    "validating CSR constructor; build a new "
                    "CSR(..., sorted_rows=...) (None = detect) instead",
                    target.col_offset,
                )
