"""Rule ``shm-lifecycle`` — shared-memory segments must be cleaned up.

The zero-copy pool (:mod:`repro.parallel.pool`) owns real OS resources:
a ``SharedMemory(create=True)`` segment outlives the process unless
``unlink()`` runs, and leaks the mapping unless ``close()`` runs.  PR 1's
lifecycle (create → workers attach → ``close()``+``unlink()`` in a
``finally``) is easy to silently break — dropping the ``finally`` still
passes every happy-path test and only leaks under worker crashes.

The checker runs only on files that import
``multiprocessing.shared_memory`` and applies three function-local rules:

* **create-without-cleanup** — a function that calls
  ``SharedMemory(create=True)`` must either return/yield the handle
  (ownership escapes to the caller, e.g. ``_pack_shm``) or call both
  ``close()`` and ``unlink()`` on it;
* **cleanup-off-exceptional-path** — when cleanup is local, at least one of
  ``close()``/``unlink()`` must sit in a ``finally`` block (or the segment
  must be managed by a ``with`` statement), otherwise an exception between
  create and cleanup leaks the segment;
* **unlink-without-close** — any function that calls ``x.unlink()`` must
  also call ``x.close()``: unlinking without closing leaks the local
  mapping until process exit.

Attach-side handles (``SharedMemory(name=...)``) are exempt: workers
deliberately keep them alive for the life of the numpy views (see the
``_SHM_HANDLES`` note in :mod:`repro.parallel.pool`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name, walk_functions
from ..context import FileContext
from ..findings import Finding
from ..registry import Checker, register


def _imports_shared_memory(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.startswith("multiprocessing") for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod.startswith("multiprocessing") or any(
                a.name == "shared_memory" for a in node.names
            ):
                return True
    return False


def _is_create_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    if name is None or name.rsplit(".", 1)[-1] != "SharedMemory":
        return False
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _method_calls(tree: ast.AST, method: str) -> "set[str]":
    """Receiver variable names of ``<name>.<method>()`` calls in ``tree``."""
    out: "set[str]" = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Name)
        ):
            out.add(node.func.value.id)
    return out


def _finally_subtrees(func: ast.AST) -> "Iterator[ast.stmt]":
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            yield from node.finalbody


def _collect_escaping(node: ast.AST, out: "set[str]") -> None:
    """Names handed out by a return/yield expression.

    ``return shm`` / ``return shm, header`` transfer the handle;
    ``return shm.name`` / ``return table[shm]`` only leak a derived value,
    so attribute/subscript subtrees are not descended into.
    """
    if isinstance(node, ast.Name):
        out.add(node.id)
    elif isinstance(node, (ast.Attribute, ast.Subscript)):
        return
    else:
        for child in ast.iter_child_nodes(node):
            _collect_escaping(child, out)


def _escaping_names(func: ast.AST) -> "set[str]":
    """Names that escape ``func`` through a return/yield expression."""
    out: "set[str]" = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                _collect_escaping(node.value, out)
    return out


def _with_managed_names(func: ast.AST) -> "set[str]":
    """Names bound or used as context managers in ``with`` statements."""
    out: "set[str]" = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
                if isinstance(item.optional_vars, ast.Name):
                    out.add(item.optional_vars.id)
    return out


@register
class ShmLifecycleChecker(Checker):
    rule = "shm-lifecycle"
    description = (
        "SharedMemory(create=True) without matching close()/unlink() on all "
        "paths (try/finally-aware)"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> "Iterator[Finding]":
        if not _imports_shared_memory(ctx.tree):
            return
        for func in walk_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext, func: ast.AST) -> "Iterator[Finding]":
        created: "dict[str, int]" = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_create_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            created.setdefault(target.id, node.lineno)

        closed = _method_calls(func, "close")
        unlinked = _method_calls(func, "unlink")
        finally_closed: "set[str]" = set()
        finally_unlinked: "set[str]" = set()
        for stmt in _finally_subtrees(func):
            finally_closed |= _method_calls(stmt, "close")
            finally_unlinked |= _method_calls(stmt, "unlink")
        escaping = _escaping_names(func)
        with_managed = _with_managed_names(func)

        for name, lineno in created.items():
            if name in escaping:
                continue  # ownership transferred to the caller
            if name not in closed or name not in unlinked:
                missing = [
                    m
                    for m, have in (("close()", name in closed), ("unlink()", name in unlinked))
                    if not have
                ]
                yield self.finding(
                    ctx,
                    lineno,
                    f"SharedMemory segment {name!r} is created here but "
                    f"{' and '.join(missing)} never run(s) in this function "
                    "and the handle does not escape — the segment leaks",
                )
            elif (
                name not in finally_closed
                and name not in finally_unlinked
                and name not in with_managed
            ):
                yield self.finding(
                    ctx,
                    lineno,
                    f"cleanup of SharedMemory segment {name!r} is not on the "
                    "exceptional path; put close()/unlink() in a finally "
                    "block (or manage the segment with a `with` statement)",
                )

        for name in sorted(unlinked - closed):
            yield self.finding(
                ctx,
                getattr(func, "lineno", 1),
                f"{name}.unlink() without {name}.close() leaks the local "
                "mapping until process exit",
            )
