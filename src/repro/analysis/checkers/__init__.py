"""Bundled contract checkers.

Importing this package registers every bundled rule with
:data:`repro.analysis.registry.CHECKERS` (each module applies the
``@register`` decorator at import time).  Add new checkers by dropping a
module here and importing it below.
"""

from . import (  # noqa: F401  (imports register the checkers)
    accumulation,
    csr_construct,
    determinism,
    dispatch,
    excepts,
    hot_loop,
    layering,
    numerics,
    plan_purity,
    race,
    shm_lifecycle,
    span_discipline,
)
