"""The finding model shared by every checker and output format.

A :class:`Finding` is one violation of one contract rule at one source
location.  Findings are value objects: checkers yield them, the runner
annotates suppression state, and the CLI renders them as text or JSON.

The :attr:`Finding.fingerprint` identifies a finding *stably across
unrelated edits*: it hashes the rule id, the repo-relative path, the
stripped source line and the message — but **not** the line number, so a
baseline entry keeps matching when code above the finding moves it up or
down the file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (e.g. ``"accum-order"``), usable in
        ``# repro-lint: disable=`` comments and ``--rules`` filters.
    path:
        Path of the offending file, relative to the analysis root, with
        forward slashes (stable across platforms for baselines).
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violated contract.
    snippet:
        The stripped source line (fingerprint input and text-output context).
    suppressed:
        True when a ``# repro-lint: disable=...`` comment covers the finding.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        basis = "|".join((self.rule, self.path, self.snippet, self.message))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def as_suppressed(self) -> "Finding":
        """A copy marked as suppressed."""
        return replace(self, suppressed=True)

    def render(self) -> str:
        """One-line ``path:line:col: rule: message`` form for text output."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable form for ``--format json`` and CI consumers."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
        }
