"""Synthetic matrix generation: R-MAT (ER / G500) and tall-skinny operands.

§5.1 of the paper: "We use R-MAT, the recursive matrix generator, to generate
two different non-zero patterns of synthetic matrices represented as ER and
G500" — ER with seed parameters ``a=b=c=d=0.25`` and G500 with
``a=0.57, b=c=0.19, d=0.05``.  A *scale-n* matrix is ``2^n x 2^n`` and the
*edge factor* is the average nonzeros per row.
"""

from .generator import (
    ER_PARAMS,
    G500_PARAMS,
    RmatParams,
    rmat,
    rmat_edges,
    er_matrix,
    g500_matrix,
)
from .tallskinny import tall_skinny_from_columns, tall_skinny_pair

__all__ = [
    "ER_PARAMS",
    "G500_PARAMS",
    "RmatParams",
    "rmat",
    "rmat_edges",
    "er_matrix",
    "g500_matrix",
    "tall_skinny_from_columns",
    "tall_skinny_pair",
]
