"""Tall-skinny operand construction for the §5.5 scenario.

"Many graph processing algorithms perform multiple breadth-first searches in
parallel ... this corresponds to multiplying a square sparse matrix with a
tall-skinny one.  In our evaluations, we generate the tall-skinny matrix by
randomly selecting columns from the graph itself."
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..matrix.csr import CSR
from ..matrix.ops import select_columns
from .generator import G500_PARAMS, RmatParams, rmat

__all__ = ["tall_skinny_from_columns", "tall_skinny_pair"]


def tall_skinny_from_columns(a: CSR, n_columns: int, *, seed: int = 0) -> CSR:
    """Randomly select ``n_columns`` distinct columns of ``a`` (the paper's
    construction of the right-hand operand)."""
    if n_columns > a.ncols:
        raise ConfigError(
            f"cannot select {n_columns} columns from a matrix with {a.ncols}"
        )
    rng = np.random.default_rng(seed)
    columns = rng.choice(a.ncols, size=n_columns, replace=False)
    return select_columns(a, columns)


def tall_skinny_pair(
    long_scale: int,
    short_scale: int,
    edge_factor: int = 16,
    params: RmatParams = G500_PARAMS,
    *,
    seed: int = 0,
    sort_rows: bool = True,
) -> "tuple[CSR, CSR]":
    """Build the (square A, tall-skinny B) pair of Figure 16.

    ``A`` is a scale-``long_scale`` G500 matrix; ``B`` is ``2^short_scale``
    of its columns, randomly chosen.
    """
    if short_scale > long_scale:
        raise ConfigError(
            f"short scale {short_scale} exceeds long scale {long_scale}"
        )
    a = rmat(long_scale, edge_factor, params, seed=seed, sort_rows=sort_rows)
    b = tall_skinny_from_columns(a, 1 << short_scale, seed=seed + 1)
    if sort_rows and not b.sorted_rows:
        b = b.sort_rows()
    return a, b
