"""R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos 2004).

An R-MAT edge is drawn by descending *scale* levels of a 2x2 recursive
partition of the adjacency matrix, choosing quadrant (a, b, c, d) at each
level.  ``a=b=c=d=0.25`` yields Erdős–Rényi-like uniform matrices ("ER");
the Graph500 parameters ``a=0.57, b=c=0.19, d=0.05`` yield the skewed
power-law matrices ("G500") of the paper's evaluation.

The implementation is fully vectorized: all ``nnz`` edges draw their
``scale`` quadrant decisions as one ``(nnz, scale)`` uniform block, so
generation of a scale-16, edge-factor-16 matrix (1M edges) takes well under
a second.

Following Graph500 practice (and because the paper reports nnz(A) ≈ n·ef
with duplicates summed), duplicate edges are merged by the additive monoid,
so the delivered nnz can be slightly below ``n * edge_factor`` for skewed
parameters.  ``exact_nnz=True`` resamples to hit the requested count of
*distinct* edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..matrix.coo import COO
from ..matrix.csr import CSR
from ..semiring import PLUS_TIMES

__all__ = [
    "RmatParams",
    "ER_PARAMS",
    "G500_PARAMS",
    "rmat_edges",
    "rmat",
    "er_matrix",
    "g500_matrix",
]


@dataclass(frozen=True)
class RmatParams:
    """Quadrant probabilities ``(a, b, c, d)``; must sum to 1."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0):
            raise ConfigError(f"R-MAT parameters must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ConfigError("R-MAT parameters must be non-negative")


#: Erdős–Rényi pattern (paper §5.1).
ER_PARAMS = RmatParams(0.25, 0.25, 0.25, 0.25)
#: Graph500 power-law pattern (paper §5.1).
G500_PARAMS = RmatParams(0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    n_edges: int,
    params: RmatParams = G500_PARAMS,
    *,
    seed: int = 0,
    noise: float = 0.1,
) -> "tuple[np.ndarray, np.ndarray]":
    """Draw ``n_edges`` R-MAT edges in a ``2^scale`` square (with duplicates).

    ``noise`` perturbs the quadrant probabilities per level (the standard
    SSCA#2/Graph500 smoothing that avoids exact self-similar artifacts);
    set 0.0 for textbook R-MAT.
    """
    if scale < 0:
        raise ConfigError(f"scale must be >= 0, got {scale}")
    if n_edges < 0:
        raise ConfigError(f"n_edges must be >= 0, got {n_edges}")
    rng = np.random.default_rng(seed)
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        if noise:
            jitter = 1.0 + noise * (2.0 * rng.random() - 1.0)
            a, b, c, d = (
                params.a * jitter,
                params.b,
                params.c,
                params.d,
            )
            norm = a + b + c + d
            a, b, c, d = a / norm, b / norm, c / norm, d / norm
        else:
            a, b, c, d = params.a, params.b, params.c, params.d
        u = rng.random(n_edges)
        # Quadrant choice: 0=a (top-left), 1=b (top-right), 2=c, 3=d.
        go_right = ((u >= a) & (u < a + b)) | (u >= a + b + c)
        go_down = u >= a + b
        bit = np.int64(1) << (scale - 1 - level)
        rows += go_down * bit
        cols += go_right * bit
    return rows, cols


def rmat(
    scale: int,
    edge_factor: int,
    params: RmatParams = G500_PARAMS,
    *,
    seed: int = 0,
    values: str = "uniform",
    sort_rows: bool = True,
    symmetrize: bool = False,
    drop_diagonal: bool = False,
    exact_nnz: bool = False,
) -> CSR:
    """Generate a scale-``scale`` R-MAT matrix with ``edge_factor`` nnz/row.

    Parameters
    ----------
    values:
        ``"uniform"`` → U(0,1] values; ``"ones"`` → all-ones pattern matrix.
    symmetrize:
        Make the pattern symmetric (adjacency of an undirected graph) by
        adding the transpose's coordinates — used by the triangle-counting
        scenario.
    drop_diagonal:
        Remove self-loops (also for graph scenarios).
    exact_nnz:
        Resample duplicate-collapsed edges until exactly
        ``n * edge_factor`` distinct coordinates exist (bounded retries).
    """
    n = 1 << scale
    target = n * edge_factor
    rng = np.random.default_rng(seed)
    rows, cols = rmat_edges(scale, target, params, seed=seed)
    if symmetrize:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    if drop_diagonal:
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]
    if values == "uniform":
        vals = rng.random(len(rows))
    elif values == "ones":
        vals = np.ones(len(rows))
    else:
        raise ConfigError(f"unknown values mode {values!r}")
    if values == "ones":
        # Pattern semantics: duplicate edges collapse to 1, not a count.
        out = COO(n, n, rows, cols, vals).to_csr(PLUS_TIMES, sort_rows=sort_rows)
        out = CSR(
            out.shape,
            out.indptr,
            out.indices,
            np.ones(out.nnz),
            sorted_rows=out.sorted_rows,
        )
    else:
        out = COO(n, n, rows, cols, vals).to_csr(PLUS_TIMES, sort_rows=sort_rows)

    if exact_nnz and out.nnz < target:
        for retry in range(1, 16):
            deficit = target - out.nnz
            if deficit <= 0:
                break
            extra_r, extra_c = rmat_edges(
                scale, deficit * 2, params, seed=seed + 7919 * retry
            )
            if drop_diagonal:
                keep = extra_r != extra_c
                extra_r, extra_c = extra_r[keep], extra_c[keep]
            r, c, v = out.to_coo()
            merged = COO(
                n,
                n,
                np.concatenate([r, extra_r]),
                np.concatenate([c, extra_c]),
                np.concatenate([v, rng.random(len(extra_r))]),
            ).to_csr(PLUS_TIMES, sort_rows=sort_rows)
            # Keep only the first `target` coordinate slots? No — keep all;
            # overshoot is bounded by one round's additions and acceptable.
            out = merged
            if out.nnz >= target:
                break
    return out


def er_matrix(scale: int, edge_factor: int, *, seed: int = 0, **kwargs) -> CSR:
    """ER-pattern R-MAT matrix (paper's uniform synthetic input)."""
    return rmat(scale, edge_factor, ER_PARAMS, seed=seed, **kwargs)


def g500_matrix(scale: int, edge_factor: int, *, seed: int = 0, **kwargs) -> CSR:
    """G500-pattern R-MAT matrix (paper's skewed synthetic input)."""
    return rmat(scale, edge_factor, G500_PARAMS, seed=seed, **kwargs)
