"""Online refinement: measured runs correct the calibrated curves.

Calibration fits curves on a synthetic grid; production traffic is the
ground truth.  Every full (non-replayed) ``algorithm="auto"`` multiply
that went through the calibrated selector reports its measured wall time
back here, and the refiner keeps an exponentially-weighted correction —
``measured / predicted``, smoothed in log space — per **(algorithm,
regime)** bucket.  The selector multiplies predictions by the bucket's
correction, so a systematically under-priced algorithm loses its unfair
advantage after a handful of observations and repeated-structure traffic
(the AMG/Markov serve workload) converges on the true winner.

Observations are keyed by the operands' structure fingerprints: the first
report from a fingerprint carries full weight, repeats of the *same*
structure are damped so one hot loop cannot flood a bucket that other
problems share.  Regimes are coarse on purpose — compression-ratio band,
skew class, sortedness — matching the axes the Table-4 recipe keys on.
"""

from __future__ import annotations

import math
import threading

__all__ = ["OnlineRefiner", "regime_key"]

#: Smoothing factor of the EW correction (weight of the newest sample).
EWMA_ALPHA = 0.25
#: Dampened weight applied to repeat observations of one fingerprint.
REPEAT_ALPHA = 0.05
#: Corrections are clamped to this factor either way — a single wild
#: measurement (GC pause, cold cache) must not blacklist an algorithm.
MAX_CORRECTION = 64.0
#: Bound on remembered fingerprints (oldest forgotten first).
MAX_FINGERPRINTS = 4096


def regime_key(
    compression_ratio: float, skew: float, sort_output: bool
) -> "tuple[int, bool, bool]":
    """Coarse regime bucket: (CR octave, skewed?, sorted?).

    Uses the same skew threshold as the Table-4 recipe; the compression
    ratio is bucketed by octave so "CR ~ 1" and "CR ~ 16" traffic refine
    independently (they favour different algorithms, per Table 4(a)).
    """
    from ..core.recipe import SKEW_THRESHOLD  # deferred: recipe imports core

    octave = int(math.log2(max(compression_ratio, 1.0)))
    return (octave, skew > SKEW_THRESHOLD, bool(sort_output))


class OnlineRefiner:
    """Thread-safe EW corrections per (algorithm, regime) bucket."""

    def __init__(
        self,
        alpha: float = EWMA_ALPHA,
        repeat_alpha: float = REPEAT_ALPHA,
    ) -> None:
        self._alpha = alpha
        self._repeat_alpha = repeat_alpha
        self._lock = threading.Lock()
        #: (algorithm, regime) -> EW mean of log(measured / predicted)
        self._log_ratio: "dict[tuple, float]" = {}
        #: (algorithm, regime) -> observation count
        self._counts: "dict[tuple, int]" = {}
        #: fingerprint keys already seen (insertion-ordered for eviction)
        self._seen: "dict[object, None]" = {}

    def observe(
        self,
        algorithm: str,
        regime: tuple,
        *,
        predicted_seconds: float,
        measured_seconds: float,
        fingerprint: "object | None" = None,
    ) -> None:
        """Fold one measured run into the (algorithm, regime) bucket."""
        if predicted_seconds <= 0 or measured_seconds <= 0:
            return
        ratio = measured_seconds / predicted_seconds
        ratio = min(max(ratio, 1.0 / MAX_CORRECTION), MAX_CORRECTION)
        log_ratio = math.log(ratio)
        key = (algorithm, regime)
        with self._lock:
            alpha = self._alpha
            if fingerprint is not None:
                fp_key = (algorithm, fingerprint)
                if fp_key in self._seen:
                    alpha = self._repeat_alpha
                else:
                    self._seen[fp_key] = None
                    while len(self._seen) > MAX_FINGERPRINTS:
                        self._seen.pop(next(iter(self._seen)))
            if key in self._log_ratio:
                self._log_ratio[key] += alpha * (log_ratio - self._log_ratio[key])
            else:
                self._log_ratio[key] = log_ratio
            self._counts[key] = self._counts.get(key, 0) + 1

    def correction(self, algorithm: str, regime: tuple) -> float:
        """Multiplier for predictions of ``algorithm`` in ``regime``.

        1.0 until the bucket has evidence; falls back to the algorithm's
        regime-averaged correction when this exact regime is unseen but
        others are — a kernel that is uniformly 3x the model's price on
        this host should pay that everywhere, not only where it was
        first observed.
        """
        with self._lock:
            value = self._log_ratio.get((algorithm, regime))
            if value is not None:
                return math.exp(value)
            others = [
                v for (alg, _), v in self._log_ratio.items() if alg == algorithm
            ]
        if not others:
            return 1.0
        return math.exp(sum(others) / len(others))

    def observations(self, algorithm: "str | None" = None) -> int:
        with self._lock:
            if algorithm is None:
                return sum(self._counts.values())
            return sum(
                n for (alg, _), n in self._counts.items() if alg == algorithm
            )

    def snapshot(self) -> dict:
        """JSON-able view of the refinement state (for observability)."""
        with self._lock:
            return {
                "buckets": [
                    {
                        "algorithm": alg,
                        "regime": list(regime),
                        "correction": math.exp(value),
                        "observations": self._counts.get((alg, regime), 0),
                    }
                    for (alg, regime), value in sorted(self._log_ratio.items())
                ],
                "fingerprints": len(self._seen),
            }
