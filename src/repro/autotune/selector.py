"""The calibrated selector: price every candidate, pick the cheapest.

:func:`recommend_calibrated` is the drop-in replacement for the static
Table-4 :func:`repro.core.recipe.recommend`: same inputs, same
:class:`~repro.core.recipe.RecipeDecision` result, but the verdict comes
from pricing every non-excluded Table-1 algorithm through the machine's
calibrated cost curves (exact symbolic quantities -> feature vector ->
fitted coefficients -> predicted seconds), corrected by whatever the
online refinement loop has learned.  With no profile available it *is*
the static recipe — bit-identical, including the degenerate-input guard.

:func:`resolve_auto` is the hook the ``algorithm="auto"`` paths in
``spgemm``/``plan``/``serve`` call: it returns the chosen algorithm plus
an observation callback (None on the static path) that the caller feeds
the measured wall seconds of the full multiply, closing the loop.
"""

from __future__ import annotations

from typing import Callable

from ..core.recipe import RECIPE_EXCLUDED, RecipeDecision, recommend
from ..matrix.csr import CSR
from ..matrix.stats import row_skew
from ..perfmodel.cost import MODELED_ALGORITHMS, cost_features
from ..perfmodel.quantities import ProblemQuantities
from .online import regime_key
from .profile import CalibrationProfile, active_profile

__all__ = [
    "candidate_algorithms",
    "recommend_calibrated",
    "resolve_auto",
]


def candidate_algorithms() -> "tuple[str, ...]":
    """Algorithms the calibrated selector may price, sorted.

    Every modeled Table-1 algorithm except the
    :data:`~repro.core.recipe.RECIPE_EXCLUDED` proxies — which leaves in
    the :data:`~repro.core.recipe.AUTOTUNE_ONLY` set the static recipe
    can never name (that is the point of calibrating).
    """
    return tuple(sorted(set(MODELED_ALGORITHMS) - RECIPE_EXCLUDED))


def _pick(
    q: ProblemQuantities,
    sort_output: bool,
    profile: CalibrationProfile,
    regime: tuple,
    *,
    use_refiner: bool,
) -> "tuple[str | None, float, int]":
    """Cheapest calibrated candidate: (name, predicted seconds, #priced)."""
    refiner = profile.refiner if use_refiner else None
    best_name = None
    best_seconds = float("inf")
    priced = 0
    for algorithm in candidate_algorithms():
        if algorithm not in profile.curves:
            continue
        features = cost_features(
            algorithm, q, profile.machine_spec, profile.nthreads,
            sort_output=sort_output,
        )
        seconds = profile.predict_seconds(algorithm, features)
        if refiner is not None:
            seconds *= refiner.correction(algorithm, regime)
        priced += 1
        # strict < with the sorted candidate order makes ties deterministic
        if seconds < best_seconds:
            best_name = algorithm
            best_seconds = seconds
    return best_name, best_seconds, priced


def recommend_calibrated(
    a: CSR,
    b: "CSR | None" = None,
    *,
    sort_output: bool = True,
    operation: str = "square",
    synthetic: bool = False,
    profile: "CalibrationProfile | None" = None,
    use_refiner: bool = True,
) -> RecipeDecision:
    """Pick an algorithm for ``C = A B`` from the calibrated cost curves.

    Accepts the static :func:`~repro.core.recipe.recommend` signature plus
    the profile to price against (default: the process-wide active one).
    Falls back to the static recipe — bit-identical — when no profile is
    available, and delegates degenerate zero-flop products to the static
    guard unconditionally (every curve prices them at its base overhead,
    which would make the verdict an artifact of fitted constants).

    ``operation`` and ``synthetic`` are accepted for signature parity;
    the calibrated curves already encode what those flags approximate
    (the operand structure enters through the exact quantities).
    """
    if profile is None:
        profile = active_profile()

    def static() -> RecipeDecision:
        return recommend(
            a, b, sort_output=sort_output, operation=operation,
            synthetic=synthetic,
        )

    if profile is None:
        return static()
    q = ProblemQuantities.compute(a, a if b is None else b)
    if q.total_flop == 0:
        return static()
    cr = q.compression_ratio
    skew = row_skew(a)
    regime = regime_key(cr, skew, sort_output)
    best_name, best_seconds, priced = _pick(
        q, sort_output, profile, regime, use_refiner=use_refiner
    )
    if best_name is None:
        # a profile with curves for none of the candidates (e.g. pruned
        # by hand): behave as if absent rather than failing the multiply
        return static()
    return RecipeDecision(
        algorithm=best_name,
        reason=(
            f"calibrated: predicted {best_seconds * 1e3:.3g} ms, "
            f"cheapest of {priced} candidate(s) on machine "
            f"{profile.machine}"
        ),
        compression_ratio=cr,
        edge_factor=a.nnz / a.nrows if a.nrows else 0.0,
        skew=skew,
        sorted_output=sort_output,
    )


def resolve_auto(
    a: CSR,
    b: CSR,
    *,
    sort_output: bool = True,
    profile: "CalibrationProfile | None" = None,
) -> "tuple[str, Callable[[float], None] | None]":
    """Resolve ``algorithm="auto"`` for one multiply.

    Returns ``(algorithm, observe)``.  On the static path (no profile)
    ``observe`` is None and the resolution is exactly the Table-4
    ``recommend`` call the dispatchers made before autotuning existed.
    On the calibrated path ``observe(measured_seconds)`` feeds the
    profile's online refiner with this run's measured wall time against
    the curve's prediction for the *chosen* algorithm, keyed by the
    operands' structure fingerprints.
    """
    if profile is None:
        profile = active_profile()
    if profile is None:
        return recommend(a, b, sort_output=sort_output).algorithm, None
    q = ProblemQuantities.compute(a, b)
    if q.total_flop == 0:
        return recommend(a, b, sort_output=sort_output).algorithm, None
    regime = regime_key(q.compression_ratio, row_skew(a), sort_output)
    best_name, best_seconds, _ = _pick(
        q, sort_output, profile, regime, use_refiner=True
    )
    if best_name is None:
        return recommend(a, b, sort_output=sort_output).algorithm, None
    from ..core.plan import structure_fingerprint  # deferred: plan imports core

    algorithm = best_name
    # Observe against the *raw* curve prediction: folding the current
    # correction into the baseline would halve the EW fixed point.
    predicted = profile.predict_seconds(
        algorithm,
        cost_features(
            algorithm, q, profile.machine_spec, profile.nthreads,
            sort_output=sort_output,
        ),
    )
    fingerprint = (structure_fingerprint(a), structure_fingerprint(b))

    def observe(measured_seconds: float) -> None:
        profile.refiner.observe(
            algorithm, regime,
            predicted_seconds=predicted,
            measured_seconds=measured_seconds,
            fingerprint=fingerprint,
        )

    return algorithm, observe
