"""The calibration pass: measure a small grid, fit the cost curves.

One :func:`run_calibration` call:

1. builds a small problem grid from :mod:`repro.datasets.generators`
   spanning the axes the Table-4 recipe keys on — compression ratio
   (banded FEM high, meshes low), edge factor and row skew (power-law
   vs. uniform) — each multiplied as A x A, sorted and unsorted;
2. for every candidate algorithm, measures the wall time of the real
   :func:`repro.spgemm` kernel on every grid point (best of ``repeats``,
   after one warmup) and computes the exact
   :func:`~repro.perfmodel.cost.cost_features` decomposition;
3. fits, per algorithm, the non-negative least-squares coefficients
   mapping features to measured seconds — the free per-machine constants
   of the :mod:`repro.perfmodel.cost` curves;
4. returns a :class:`~repro.autotune.profile.CalibrationProfile` ready to
   save and activate.

The grid is deliberately tiny (seconds, not minutes, at the default
scale): the curves only need the *relative* ranking of algorithms to be
right, and the online refiner corrects residual error in production.
"""

from __future__ import annotations

import platform
import time

import numpy as np

from ..core.options import SpgemmOptions
from ..core.spgemm import spgemm
from ..datasets import generators
from ..errors import ConfigError
from ..matrix.csr import CSR
from ..perfmodel.cost import CALIBRATION_TERMS, cost_features
from ..perfmodel.quantities import ProblemQuantities
from .profile import PROFILE_SCHEMA, AlgorithmCurve, CalibrationProfile
from .selector import candidate_algorithms

__all__ = ["calibration_grid", "run_calibration"]

#: Default problem scale: matrices of ~2^scale rows.
DEFAULT_SCALE = 10


def calibration_grid(
    scale: int = DEFAULT_SCALE, *, seed: int = 7
) -> "list[tuple[str, CSR]]":
    """Named problems spanning the flop / CR / skew axes.

    ``scale`` sets the problem size (~``2**scale`` rows); the structures
    are fixed so two calibrations on one host measure the same work.
    """
    if scale < 4:
        raise ConfigError(f"calibration scale must be >= 4, got {scale}")
    n = 1 << scale
    side = max(2, int(round(n ** 0.5)))
    return [
        # high compression ratio, banded, uniform rows (FEM-like)
        ("banded_fem", generators.banded_fem(n, 14, seed=seed)),
        # dense FEM (edge factor ~60, like consph/cant/pwtk): the regime
        # where replay-style kernels overtake the hash family, which the
        # sparser points cannot teach the fit
        ("banded_fem_dense", generators.banded_fem(n, 60, seed=seed + 1)),
        # low CR, very sparse, uniform (2D mesh)
        ("mesh2d", generators.mesh2d(side)),
        # skewed power-law rows (G500-like)
        ("powerlaw", generators.powerlaw_graph(scale, 8, seed=seed)),
        # uniform random scatter (ER-like)
        ("quasi_random", generators.quasi_random(n, 8, seed=seed)),
        # moderate density with mild skew (economics-like)
        ("econ_like", generators.econ_like(n, 12.0, skew=2.0, seed=seed)),
    ]


def _measure_seconds(
    a: CSR,
    algorithm: str,
    *,
    engine: str,
    nthreads: int,
    sort_output: bool,
    repeats: int,
) -> float:
    """Best-of-``repeats`` wall seconds of one A x A multiply."""
    opts = SpgemmOptions(
        algorithm=algorithm, engine=engine, nthreads=nthreads,
        sort_output=sort_output,
    )
    best = float("inf")
    for _ in range(repeats + 1):  # first iteration is the warmup
        t0 = time.perf_counter()
        spgemm(a, a, opts)
        best = min(best, time.perf_counter() - t0)
    return best


def _fit_nonnegative(features: np.ndarray, seconds: np.ndarray) -> np.ndarray:
    """Non-negative least squares via active-set elimination.

    Columns are normalized before solving (the terms span ~9 orders of
    magnitude); any coefficient the unconstrained solve drives negative
    is eliminated and the remaining support refit, which converges in at
    most ``n_terms`` rounds.
    """
    norms = np.linalg.norm(features, axis=0)
    norms[norms == 0] = 1.0
    scaled = features / norms
    active = list(range(features.shape[1]))
    coef = np.zeros(features.shape[1])
    while active:
        sol, *_ = np.linalg.lstsq(scaled[:, active], seconds, rcond=None)
        if (sol >= 0).all():
            coef = np.zeros(features.shape[1])
            coef[active] = sol
            break
        del active[int(np.argmin(sol))]
    return coef / norms


def run_calibration(
    *,
    scale: int = DEFAULT_SCALE,
    algorithms: "tuple[str, ...] | None" = None,
    engine: str = "fast",
    nthreads: int = 1,
    repeats: int = 2,
    machine: str = "KNL",
    seed: int = 7,
) -> CalibrationProfile:
    """Measure the grid and fit a :class:`CalibrationProfile`.

    ``machine`` names the :mod:`repro.machine` model whose feature
    decomposition the curves are expressed over (the fitted coefficients
    absorb the mapping to this host, so any model works; KNL is the
    paper's primary machine).  ``engine`` is the engine calibrated for —
    profiles should be generated with the engine production traffic uses.
    """
    if repeats < 1:
        raise ConfigError(f"calibration repeats must be >= 1, got {repeats}")
    if algorithms is None:
        algorithms = candidate_algorithms()
    else:
        unknown = set(algorithms) - set(candidate_algorithms())
        if unknown:
            raise ConfigError(
                f"cannot calibrate non-candidate algorithm(s) "
                f"{sorted(unknown)}; candidates: {list(candidate_algorithms())}"
            )
    from .profile import _MACHINES

    if machine not in _MACHINES:
        from ..errors import invalid_choice

        raise invalid_choice("calibration machine", machine, sorted(_MACHINES))
    machine_spec = _MACHINES[machine]
    grid = calibration_grid(scale, seed=seed)

    quantities = {
        name: ProblemQuantities.compute(a, a) for name, a in grid
    }
    curves: "dict[str, AlgorithmCurve]" = {}
    for algorithm in algorithms:
        rows: "list[list[float]]" = []
        measured: "list[float]" = []
        for name, a in grid:
            for sort_output in (True, False):
                feats = cost_features(
                    algorithm, quantities[name], machine_spec, nthreads,
                    sort_output=sort_output,
                )
                rows.append([feats[t] for t in CALIBRATION_TERMS])
                measured.append(_measure_seconds(
                    a, algorithm,
                    engine=engine, nthreads=nthreads,
                    sort_output=sort_output, repeats=repeats,
                ))
        features = np.asarray(rows, dtype=np.float64)
        seconds = np.asarray(measured, dtype=np.float64)
        coef = _fit_nonnegative(features, seconds)
        residual = features @ coef - seconds
        curves[algorithm] = AlgorithmCurve(
            algorithm=algorithm,
            coefficients=tuple(float(c) for c in coef),
            samples=len(measured),
            rmse_seconds=float(np.sqrt(np.mean(residual ** 2))),
        )
    return CalibrationProfile(
        machine=machine,
        engine=engine,
        nthreads=nthreads,
        grid={
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
            "problems": [name for name, _ in grid],
        },
        curves=curves,
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "processor": platform.processor() or "unknown",
        },
        created=time.strftime("%Y-%m-%dT%H:%M:%S"),
        schema=PROFILE_SCHEMA,
    )
