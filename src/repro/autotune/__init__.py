"""Calibrated algorithm selection: measure once, predict everywhere.

The paper's Table-4 recipe is a decision table distilled from two
machines; this package re-derives the same knowledge on *your* machine:

* :mod:`~repro.autotune.calibrate` — a short microbenchmark sweep over a
  flop/CR/skew grid that fits the free per-machine coefficients of the
  :mod:`repro.perfmodel.cost` curves;
* :mod:`~repro.autotune.profile` — the versioned, schema-validated
  ``repro-calibration/1`` JSON artifact the sweep emits, activated via
  the ``REPRO_CALIBRATION`` environment variable, an explicit
  :func:`set_active_profile`, or ``SpgemmOptions(calibration=...)``;
* :mod:`~repro.autotune.selector` — :func:`recommend_calibrated`, the
  predictive replacement for the static recipe that prices every
  non-excluded Table-1 algorithm through the calibrated curves, and
  :func:`resolve_auto`, the ``algorithm="auto"`` hook;
* :mod:`~repro.autotune.online` — the exponentially-weighted refinement
  loop that folds measured production runs back into the predictions.

See ``docs/autotuning.md`` for the workflow.
"""

from .calibrate import calibration_grid, run_calibration
from .online import OnlineRefiner, regime_key
from .profile import (
    PROFILE_ENV_VAR,
    PROFILE_SCHEMA,
    AlgorithmCurve,
    CalibrationProfile,
    active_profile,
    clear_active_profile,
    load_profile,
    set_active_profile,
    validate_profile_schema,
)
from .selector import candidate_algorithms, recommend_calibrated, resolve_auto

__all__ = [
    "PROFILE_ENV_VAR",
    "PROFILE_SCHEMA",
    "AlgorithmCurve",
    "CalibrationProfile",
    "OnlineRefiner",
    "active_profile",
    "calibration_grid",
    "candidate_algorithms",
    "clear_active_profile",
    "load_profile",
    "recommend_calibrated",
    "regime_key",
    "resolve_auto",
    "run_calibration",
    "set_active_profile",
    "validate_profile_schema",
]
