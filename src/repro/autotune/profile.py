"""The ``repro-calibration/1`` per-machine profile: schema, IO, activation.

A profile is the artifact of one calibration run
(:func:`repro.autotune.calibrate.run_calibration`): for every candidate
algorithm, the fitted non-negative coefficients mapping the
:func:`repro.perfmodel.cost.cost_features` decomposition of a problem to
predicted wall seconds *on this host*.  The static Table-4 recipe ships
the paper's machines; a profile is the same knowledge re-measured where
the code actually runs.

Profiles are JSON, versioned by the ``schema`` tag, and validated on
every load — a corrupt, partial or version-skewed profile raises
:class:`~repro.errors.ConfigError` rather than silently steering the
selector.  Activation is either explicit (``SpgemmOptions(calibration=
profile)``, or :func:`set_active_profile`) or ambient via the
``REPRO_CALIBRATION`` environment variable naming a profile path.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from ..errors import ConfigError, invalid_choice
from ..machine.spec import HASWELL, KNL, MachineSpec
from ..perfmodel.cost import CALIBRATION_TERMS
from .online import OnlineRefiner

__all__ = [
    "PROFILE_SCHEMA",
    "PROFILE_ENV_VAR",
    "AlgorithmCurve",
    "CalibrationProfile",
    "validate_profile_schema",
    "load_profile",
    "active_profile",
    "set_active_profile",
    "clear_active_profile",
]

#: Version tag of the calibration profile payload.
PROFILE_SCHEMA = "repro-calibration/1"

#: Environment variable naming a profile JSON to activate process-wide.
PROFILE_ENV_VAR = "REPRO_CALIBRATION"

#: Machine models whose feature decompositions a profile may reference.
_MACHINES: "dict[str, MachineSpec]" = {KNL.name: KNL, HASWELL.name: HASWELL}

#: Top-level keys every profile payload must carry.
_REQUIRED_KEYS = ("schema", "machine", "engine", "nthreads", "grid", "curves")


@dataclass(frozen=True)
class AlgorithmCurve:
    """Fitted cost curve of one algorithm: coefficients over the terms."""

    algorithm: str
    #: non-negative coefficients aligned with
    #: :data:`repro.perfmodel.cost.CALIBRATION_TERMS`
    coefficients: "tuple[float, ...]"
    #: calibration sample count behind the fit
    samples: int
    #: root-mean-square residual of the fit, in seconds
    rmse_seconds: float

    def __post_init__(self) -> None:
        if len(self.coefficients) != len(CALIBRATION_TERMS):
            raise ConfigError(
                f"curve for {self.algorithm!r} has "
                f"{len(self.coefficients)} coefficients; expected "
                f"{len(CALIBRATION_TERMS)} ({', '.join(CALIBRATION_TERMS)})"
            )
        for term, coef in zip(CALIBRATION_TERMS, self.coefficients):
            if not isinstance(coef, (int, float)) or coef != coef or coef < 0:
                raise ConfigError(
                    f"curve for {self.algorithm!r} has invalid "
                    f"{term} coefficient {coef!r} (must be finite and >= 0)"
                )

    def predict_seconds(self, features: "dict[str, float]") -> float:
        """Price a :func:`~repro.perfmodel.cost.cost_features` vector."""
        return sum(
            coef * features[term]
            for term, coef in zip(CALIBRATION_TERMS, self.coefficients)
        )


@dataclass
class CalibrationProfile:
    """One machine's calibrated cost curves plus their provenance."""

    machine: str
    engine: str
    nthreads: int
    grid: "dict[str, object]"
    curves: "dict[str, AlgorithmCurve]"
    host: "dict[str, str]" = field(default_factory=dict)
    created: str = ""
    schema: str = PROFILE_SCHEMA
    #: online refinement state — process-local, never serialized
    refiner: OnlineRefiner = field(
        default_factory=OnlineRefiner, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.schema != PROFILE_SCHEMA:
            raise ConfigError(
                f"calibration profile schema must be {PROFILE_SCHEMA!r}, "
                f"got {self.schema!r}"
            )
        if self.machine not in _MACHINES:
            raise invalid_choice(
                "calibration machine", self.machine, sorted(_MACHINES)
            )
        if not isinstance(self.nthreads, int) or self.nthreads < 1:
            raise ConfigError(
                f"calibration nthreads must be a positive integer, "
                f"got {self.nthreads!r}"
            )
        if not self.curves:
            raise ConfigError(
                "calibration profile has no fitted curves — refusing an "
                "empty profile that would make every prediction undefined"
            )
        for name, curve in self.curves.items():
            if not isinstance(curve, AlgorithmCurve):
                raise ConfigError(
                    f"curve for {name!r} must be an AlgorithmCurve, "
                    f"got {type(curve).__name__}"
                )
            if curve.algorithm != name:
                raise ConfigError(
                    f"curve keyed {name!r} claims algorithm "
                    f"{curve.algorithm!r} — corrupt profile"
                )

    @property
    def machine_spec(self) -> MachineSpec:
        return _MACHINES[self.machine]

    def predict_seconds(
        self, algorithm: str, features: "dict[str, float]"
    ) -> "float | None":
        """Predicted wall seconds, or None when no curve was calibrated."""
        curve = self.curves.get(algorithm)
        if curve is None:
            return None
        return curve.predict_seconds(features)

    # -- wire form (repro-calibration/1) --------------------------------

    def to_payload(self) -> dict:
        """JSON-able profile payload (refiner state never travels)."""
        return {
            "schema": self.schema,
            "machine": self.machine,
            "engine": self.engine,
            "nthreads": self.nthreads,
            "grid": self.grid,
            "host": self.host,
            "created": self.created,
            "curves": {
                name: {
                    "algorithm": curve.algorithm,
                    "coefficients": list(curve.coefficients),
                    "samples": curve.samples,
                    "rmse_seconds": curve.rmse_seconds,
                }
                for name, curve in self.curves.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CalibrationProfile":
        """Rebuild a profile from :meth:`to_payload` output, fully checked."""
        validate_profile_schema(payload)
        curves: "dict[str, AlgorithmCurve]" = {}
        for name, raw in payload["curves"].items():
            try:
                curves[name] = AlgorithmCurve(
                    algorithm=raw["algorithm"],
                    coefficients=tuple(float(c) for c in raw["coefficients"]),
                    samples=int(raw["samples"]),
                    rmse_seconds=float(raw["rmse_seconds"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"calibration curve {name!r} is corrupt: {exc!r}"
                ) from exc
        return cls(
            machine=payload["machine"],
            engine=payload["engine"],
            nthreads=payload["nthreads"],
            grid=payload["grid"],
            curves=curves,
            host=payload.get("host", {}),
            created=payload.get("created", ""),
            schema=payload["schema"],
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def validate_profile_schema(payload: dict) -> None:
    """Raise :class:`ConfigError` unless ``payload`` is a valid profile.

    Checks the schema tag, the required top-level keys, and that every
    curve entry is structurally complete — the CI ``calibrate-smoke`` job
    pins the emitted shape with this.
    """
    if not isinstance(payload, dict):
        raise ConfigError(
            f"calibration profile must be a dict, got {type(payload).__name__}"
        )
    if payload.get("schema") != PROFILE_SCHEMA:
        raise ConfigError(
            f"calibration profile schema must be {PROFILE_SCHEMA!r}, "
            f"got {payload.get('schema')!r} — regenerate the profile with "
            "`python -m repro calibrate`"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise ConfigError(
            f"calibration profile is missing keys {missing}"
        )
    curves = payload["curves"]
    if not isinstance(curves, dict) or not curves:
        raise ConfigError(
            "calibration profile must carry a non-empty 'curves' mapping"
        )
    for name, raw in curves.items():
        if not isinstance(raw, dict):
            raise ConfigError(
                f"calibration curve {name!r} must be a dict, "
                f"got {type(raw).__name__}"
            )
        missing = [
            k for k in ("algorithm", "coefficients", "samples", "rmse_seconds")
            if k not in raw
        ]
        if missing:
            raise ConfigError(
                f"calibration curve {name!r} is missing keys {missing}"
            )


def load_profile(path: str) -> CalibrationProfile:
    """Load + validate a profile JSON; :class:`ConfigError` on any defect."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ConfigError(
            f"cannot read calibration profile {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"calibration profile {path!r} is not valid JSON: {exc}"
        ) from exc
    return CalibrationProfile.from_payload(payload)


# -- ambient activation ----------------------------------------------------

_UNSET = object()
_lock = threading.Lock()
#: explicit override installed by :func:`set_active_profile`
_explicit: "object" = _UNSET
#: profiles loaded from the environment, keyed by path
_env_cache: "dict[str, CalibrationProfile]" = {}


def set_active_profile(
    profile: "CalibrationProfile | None",
) -> "CalibrationProfile | None":
    """Install (or clear, with None) the process-wide active profile.

    An explicit profile takes precedence over ``REPRO_CALIBRATION``.
    Returns the previous explicit profile (None when there was none), so
    tests can restore it.
    """
    global _explicit
    with _lock:
        previous = None if _explicit is _UNSET else _explicit
        _explicit = profile
        return previous


def clear_active_profile() -> None:
    """Drop the explicit profile *and* the env-path cache (test hook)."""
    global _explicit
    with _lock:
        _explicit = _UNSET
        _env_cache.clear()


def active_profile() -> "CalibrationProfile | None":
    """The profile `algorithm="auto"` routes through, or None.

    Resolution order: an explicit :func:`set_active_profile` value, then
    the ``REPRO_CALIBRATION`` environment variable (loaded once per path
    and cached — a broken profile raises :class:`ConfigError` on every
    call rather than being silently ignored), else None (static Table-4
    fallback).
    """
    with _lock:
        if _explicit is not _UNSET:
            return _explicit  # type: ignore[return-value]
    path = os.environ.get(PROFILE_ENV_VAR)
    if not path:
        return None
    with _lock:
        cached = _env_cache.get(path)
    if cached is not None:
        return cached
    profile = load_profile(path)
    with _lock:
        _env_cache[path] = profile
    return profile
