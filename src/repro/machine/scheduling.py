"""OpenMP loop-scheduling cost model (paper §3.1, Figure 2).

The paper measures an empty parallel loop under ``schedule(static)``,
``schedule(dynamic)`` and ``schedule(guided)`` on Haswell and KNL.  The
observed structure, which this model reproduces:

* **static** — cost is flat (the fork/join latency) until per-thread
  iteration bookkeeping becomes visible at ~2^15+ iterations;
* **dynamic** — every iteration performs a contended atomic fetch on the
  shared chunk counter; the counter serializes, so cost grows linearly with
  the *total* iteration count and is much worse on KNL (slow cores, 272
  contenders);
* **guided** — nominally fewer dequeues, but the measured cost tracks
  dynamic ("as expensive as dynamic, especially on the KNL processor"),
  which the model captures with a per-iteration constant close to dynamic's.

This is the reason the paper's SpGEMM uses *static* scheduling plus its own
flop-balanced partition rather than ``dynamic``/``guided`` (§3.1, §4.1).
"""

from __future__ import annotations

from ..errors import ConfigError
from .spec import MachineSpec

__all__ = ["loop_scheduling_cost", "POLICIES"]

POLICIES = ("static", "dynamic", "guided", "balanced")


def loop_scheduling_cost(
    machine: MachineSpec,
    policy: str,
    iterations: int,
    nthreads: int | None = None,
) -> float:
    """Scheduling overhead (seconds) of a parallel loop with empty body.

    ``balanced`` — the paper's flop-balanced static assignment — pays the
    static cost plus one pass of prefix-sum/binary-search work, modeled as a
    handful of cycles per iteration divided across threads (it is itself
    parallel, Fig. 6).

    Parameters mirror the Fig. 2 microbenchmark: total ``iterations`` of an
    empty loop body on ``nthreads`` threads (default: all hardware threads).
    """
    if iterations < 0:
        raise ConfigError(f"iterations must be >= 0, got {iterations}")
    t = machine.max_threads if nthreads is None else max(1, nthreads)
    s = machine.sched
    if policy == "static":
        return s.fork_join_s + (iterations / t) * s.static_iter_s
    if policy == "dynamic":
        # The shared counter serializes: per-iteration cost is *not*
        # divided by the thread count (contention grows with it instead;
        # the constant is calibrated at full thread count).
        return s.fork_join_s + iterations * s.dynamic_iter_s
    if policy == "guided":
        return s.fork_join_s + iterations * s.guided_iter_s
    if policy == "balanced":
        # RowsToThreads: flop count (parallel), prefix sum (parallel),
        # per-thread binary search. ~4 extra static-iteration units per row
        # plus a log-factor search per thread.
        prep = (iterations / t) * 4.0 * s.static_iter_s
        search = t * 2e-8
        return s.fork_join_s + prep + search + (iterations / t) * s.static_iter_s
    raise ConfigError(f"unknown scheduling policy {policy!r}; expected {POLICIES}")
