"""Parametric machine models of the paper's two evaluation platforms.

Table 3 of the paper describes the Cori Haswell and KNL nodes.  Since this
reproduction runs in pure Python (where neither 272 hardware threads nor
MCDRAM exist), the architecture-specific effects are captured by calibrated
analytic models, each tied to one of the paper's microbenchmarks:

* :mod:`repro.machine.scheduling` — OpenMP loop scheduling cost (Fig. 2);
* :mod:`repro.machine.allocator` — allocation/deallocation cost (Fig. 4);
* :mod:`repro.machine.memory` — stanza-access bandwidth, DDR vs
  MCDRAM-as-cache (Fig. 5);
* :mod:`repro.machine.spec` — the machine descriptions (Table 3) tying the
  models together, including SMT throughput and vector width.

Every constant lives in :mod:`repro.machine.spec` with a comment citing the
paper observation it was calibrated against.
"""

from .spec import KNL, HASWELL, MachineSpec, MemorySpec, AllocatorSpec, SchedulingSpec
from .scheduling import loop_scheduling_cost
from .allocator import allocation_cost, deallocation_cost
from .memory import MemoryMode, stanza_bandwidth, aggregate_bandwidth

__all__ = [
    "KNL",
    "HASWELL",
    "MachineSpec",
    "MemorySpec",
    "AllocatorSpec",
    "SchedulingSpec",
    "loop_scheduling_cost",
    "allocation_cost",
    "deallocation_cost",
    "MemoryMode",
    "stanza_bandwidth",
    "aggregate_bandwidth",
]
