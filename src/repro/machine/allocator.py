"""Memory allocation/deallocation cost model (paper §3.2, Figure 4).

The paper's microbenchmark allocates, touches, and frees an array either
from one thread ("single") or split evenly across all threads ("parallel"),
with the C++ ``new/delete`` or TBB ``scalable_malloc/scalable_free``
allocators.  The measured structure this model reproduces:

* freeing small blocks is a cheap pooled operation;
* past an allocator-specific threshold (32 MB for C++, 256 MB for TBB) the
  block came from ``mmap`` and freeing walks/releases pages — cost linear in
  size, "over 100 milliseconds for the deallocation of 1GB";
* the **parallel** scheme divides the block across threads, so each thread
  stays under the threshold until the *total* reaches ``threads x
  threshold`` (the observed jumps at 8 GB for C++ and 64 GB for TBB with 256
  threads), at the price of a fixed fork/synchronization overhead that makes
  it *worse* for small blocks.

This is why the paper's SpGEMM allocates thread-private scratch from each
thread ("parallel" approach) — the model is what lets Fig. 9's
"balanced single" vs "balanced parallel" comparison be regenerated.
"""

from __future__ import annotations

from ..errors import ConfigError
from .spec import MachineSpec

__all__ = ["deallocation_cost", "allocation_cost", "ALLOCATORS", "SCHEMES"]

ALLOCATORS = ("cpp", "tbb", "aligned")
SCHEMES = ("single", "parallel")


def _threshold(machine: MachineSpec, allocator: str) -> int:
    if allocator in ("cpp", "aligned"):
        # §3.2: "aligned allocation showed nearly same performance as C++".
        return machine.alloc.cpp_threshold_bytes
    if allocator == "tbb":
        return machine.alloc.tbb_threshold_bytes
    raise ConfigError(f"unknown allocator {allocator!r}; expected {ALLOCATORS}")


def _release_cost(machine: MachineSpec, nbytes: float, allocator: str) -> float:
    """Cost for one thread to free a block of ``nbytes``."""
    a = machine.alloc
    if nbytes < _threshold(machine, allocator):
        return a.pooled_call_s
    return a.pooled_call_s + nbytes * a.release_s_per_byte


def _fault_cost(machine: MachineSpec, nbytes: float, allocator: str) -> float:
    """Cost for one thread to allocate (and first-touch) ``nbytes``."""
    a = machine.alloc
    if nbytes < _threshold(machine, allocator):
        return a.pooled_call_s
    return a.pooled_call_s + nbytes * a.fault_s_per_byte


def deallocation_cost(
    machine: MachineSpec,
    total_bytes: float,
    *,
    allocator: str = "tbb",
    scheme: str = "single",
    nthreads: int | None = None,
) -> float:
    """Seconds to deallocate ``total_bytes`` under the given scheme.

    ``single``: one thread frees the whole block.  ``parallel``: each of
    ``nthreads`` threads frees ``total_bytes / nthreads`` concurrently
    (cost = max over threads) plus the parallel-region overhead.
    """
    if total_bytes < 0:
        raise ConfigError(f"total_bytes must be >= 0, got {total_bytes}")
    if scheme == "single":
        return _release_cost(machine, total_bytes, allocator)
    if scheme == "parallel":
        t = machine.max_threads if nthreads is None else max(1, nthreads)
        per_thread = total_bytes / t
        return machine.alloc.parallel_overhead_s + _release_cost(
            machine, per_thread, allocator
        )
    raise ConfigError(f"unknown scheme {scheme!r}; expected {SCHEMES}")


def allocation_cost(
    machine: MachineSpec,
    total_bytes: float,
    *,
    allocator: str = "tbb",
    scheme: str = "single",
    nthreads: int | None = None,
) -> float:
    """Seconds to allocate (and first-touch) ``total_bytes``."""
    if total_bytes < 0:
        raise ConfigError(f"total_bytes must be >= 0, got {total_bytes}")
    if scheme == "single":
        return _fault_cost(machine, total_bytes, allocator)
    if scheme == "parallel":
        t = machine.max_threads if nthreads is None else max(1, nthreads)
        per_thread = total_bytes / t
        return machine.alloc.parallel_overhead_s + _fault_cost(
            machine, per_thread, allocator
        )
    raise ConfigError(f"unknown scheme {scheme!r}; expected {SCHEMES}")
