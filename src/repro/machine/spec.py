"""Machine descriptions (paper Table 3) and calibrated model constants.

Two instances are exported: :data:`KNL` (Intel Xeon Phi 7250, the paper's
"KNL cluster" node) and :data:`HASWELL` (2-socket Xeon E5-2698 v3, the
"Haswell cluster" node).  Every calibrated constant carries a comment citing
the paper figure or sentence it reproduces; none of them is load-bearing for
*correctness* (the executable kernels never consult the machine model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = [
    "SchedulingSpec",
    "AllocatorSpec",
    "MemorySpec",
    "KernelCostSpec",
    "MachineSpec",
    "KNL",
    "HASWELL",
]


@dataclass(frozen=True)
class SchedulingSpec:
    """OpenMP loop-scheduling cost constants (calibrated to Fig. 2)."""

    #: one-time parallel-region fork/join latency, seconds
    fork_join_s: float
    #: per-iteration bookkeeping of a *static* loop, seconds (divided by t)
    static_iter_s: float
    #: per-iteration cost of the contended dynamic dequeue, seconds
    #: (serialized on the shared counter, hence *not* divided by t)
    dynamic_iter_s: float
    #: per-iteration cost of guided scheduling; the paper measures guided to
    #: be "as expensive as dynamic, especially on the KNL processor"
    guided_iter_s: float
    #: per-dispatch stall inside a *real* kernel loop: unlike the Fig. 2
    #: empty-loop microbenchmark (where the shared counter stays resident
    #: and updates pipeline), interleaving real work means every dequeue
    #: re-acquires the contended cache line cold — a full cross-tile bounce
    dispatch_stall_s: float


@dataclass(frozen=True)
class AllocatorSpec:
    """Allocation/deallocation cost constants (calibrated to Fig. 4)."""

    #: per-call fixed cost of a pooled (small) alloc/dealloc, seconds
    pooled_call_s: float
    #: size threshold above which the C++ allocator falls back to
    #: mmap/munmap; Fig. 4: the "parallel" C++ curve jumps at 8 GB across
    #: 256 threads = 32 MB per thread
    cpp_threshold_bytes: int
    #: same threshold for TBB scalable_malloc; Fig. 4: jump at 64 GB / 256
    #: threads = 256 MB per thread
    tbb_threshold_bytes: int
    #: linear munmap/page-release cost, seconds per byte; Fig. 4: "over 100
    #: milliseconds for the deallocation of 1GB" -> ~1e-10 s/B
    release_s_per_byte: float
    #: linear cost of first-touch page faulting on allocation, seconds per
    #: byte (allocation is lazier than deallocation)
    fault_s_per_byte: float
    #: extra fork/synchronization overhead of the "parallel" scheme, seconds
    parallel_overhead_s: float


@dataclass(frozen=True)
class MemorySpec:
    """Bandwidth-latency memory model (calibrated to Fig. 5 / STREAM)."""

    #: DDR4 peak streaming bandwidth, bytes/s
    ddr_peak_bps: float
    #: stanza half-length of DDR, bytes: stanza length at which half the
    #: peak is reached (captures access latency)
    ddr_half_stanza: float
    #: MCDRAM-as-cache peak streaming bandwidth, bytes/s; Fig. 5 shows
    #: "over 3.4x superior bandwidth compared to DDR only"
    mcdram_peak_bps: float
    #: MCDRAM half-stanza, bytes — larger than DDR's because MCDRAM's
    #: latency is higher ("its memory latency is larger than that of DDR4"),
    #: which is why fine-grained access sees no MCDRAM benefit
    mcdram_half_stanza: float
    #: MCDRAM capacity, bytes (16 GB on KNL); working sets beyond this fall
    #: back to DDR behaviour in Cache mode (Fig. 10, edge factor 64)
    mcdram_capacity_bytes: float
    #: single-core achievable bandwidth, bytes/s — limits aggregate
    #: bandwidth at low thread counts (drives the Fig. 13 scaling shape)
    per_core_bps: float


@dataclass(frozen=True)
class KernelCostSpec:
    """Per-operation cycle costs of the SpGEMM inner loops.

    These scale the *exact* operation counts produced by
    :mod:`repro.perfmodel.quantities` into cycles.  Values are per-machine
    because KNL's simpler cores retire scalar hash chains more slowly while
    its 512-bit units make vector probing comparatively cheaper.
    """

    #: cycles per scalar hash-probe step (hash lookup chain element)
    hash_probe: float
    #: extra cycles per numeric-phase probe (value accumulate)
    hash_accumulate: float
    #: cycles per vector-chunk probe step (compare + mask + ctz)
    vector_probe: float
    #: cycles per heap push/pop element step (log factor applied separately)
    heap_op: float
    #: cycles per SPA dense-array touch
    spa_touch: float
    #: cycles per element-compare in the output sort
    sort_cmp: float
    #: cycles to write one output nonzero (index + value)
    write_entry: float
    #: per-row fixed overhead of the MKL proxy's row dispatch
    mkl_row_overhead: float
    #: cycles per chained-hashmap step of the Kokkos proxy
    kokkos_step: float
    #: sustained instructions-per-cycle of scalar SpGEMM code
    ipc: float


@dataclass(frozen=True)
class MachineSpec:
    """One evaluation platform (a Table-3 column)."""

    name: str
    #: physical cores (KNL: 68; Haswell: 2 sockets x 16)
    cores: int
    #: hardware threads per core (KNL: 4; Haswell: 2)
    smt: int
    #: core clock, GHz (Table 3)
    clock_ghz: float
    #: SIMD register width, bits (KNL: AVX-512; Haswell: AVX2)
    vector_bits: int
    #: private/shared cache available per core for accumulator state, bytes
    #: (KNL: 1MB L2 per 2-core tile -> 512KB; Haswell: 256KB L2)
    l2_per_core_bytes: int
    #: per-core share of the last-level cache behind L2 (Haswell: 2 x 40MB
    #: L3 across 32 cores; KNL has no L3 — Table 3 lists "-")
    l3_per_core_bytes: int
    #: throughput gain from filling all SMT threads relative to one thread
    #: per core (Fig. 13: KNL kernels keep improving past 68 threads)
    smt_gain: float
    sched: SchedulingSpec = field(repr=False, default=None)  # type: ignore[assignment]
    alloc: AllocatorSpec = field(repr=False, default=None)  # type: ignore[assignment]
    mem: MemorySpec = field(repr=False, default=None)  # type: ignore[assignment]
    kernel: KernelCostSpec = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def max_threads(self) -> int:
        """Hardware thread count (KNL: 272, Haswell: 64)."""
        return self.cores * self.smt

    def effective_parallelism(self, nthreads: int) -> float:
        """Throughput multiplier of running ``nthreads`` threads.

        Linear up to ``cores``; beyond that, SMT adds up to ``smt_gain``
        extra throughput as the remaining hardware threads fill.  This is
        the standard throughput-SMT model and gives Fig. 13 its knee at 64
        threads with continued (smaller) gains to 272.
        """
        if nthreads < 1:
            raise ConfigError(f"nthreads must be >= 1, got {nthreads}")
        t = min(nthreads, self.max_threads)
        if t <= self.cores:
            return float(t)
        extra = (t - self.cores) / (self.cores * (self.smt - 1))
        return self.cores * (1.0 + self.smt_gain * extra)

    def smt_slowdown(self, nthreads: int) -> float:
        """Per-thread slowdown factor when threads oversubscribe cores."""
        t = min(max(nthreads, 1), self.max_threads)
        return t / self.effective_parallelism(t)

    def seconds_per_cycle(self) -> float:
        return 1.0 / (self.clock_ghz * 1e9)

    @property
    def accumulator_capacity_bytes(self) -> float:
        """Cache capacity available to one thread's accumulator before its
        accesses spill to memory (L2 plus the per-core L3 share)."""
        return float(self.l2_per_core_bytes + self.l3_per_core_bytes)


#: Intel Xeon Phi 7250 (Knights Landing), quadrant cluster mode (Table 3).
KNL = MachineSpec(
    name="KNL",
    cores=68,
    smt=4,
    clock_ghz=1.4,
    vector_bits=512,
    l2_per_core_bytes=512 * 1024,
    l3_per_core_bytes=0,  # Table 3: KNL has no L3
    smt_gain=0.55,  # Fig. 13: Hash/Heap gain ~1.3-1.6x going 68 -> 272 thr
    sched=SchedulingSpec(
        fork_join_s=20e-6,  # Fig. 2: KNL static flat at ~2e-2 ms
        static_iter_s=8e-9,  # Fig. 2: KNL static rises past ~2^15 iters
        dynamic_iter_s=5.5e-8,  # Fig. 2: KNL dynamic ~30 ms at 2^19 iters
        guided_iter_s=4.5e-8,  # Fig. 2: KNL guided "as expensive as dynamic"
        dispatch_stall_s=1.0e-6,  # cross-tile line bounce on the 2D mesh
    ),
    alloc=AllocatorSpec(
        pooled_call_s=5e-6,
        cpp_threshold_bytes=32 << 20,  # Fig. 4: parallel C++ jump at 8GB/256t
        tbb_threshold_bytes=256 << 20,  # Fig. 4: parallel TBB jump at 64GB/256t
        release_s_per_byte=1.05e-10,  # Fig. 4: >100 ms to free 1 GB
        fault_s_per_byte=2.5e-11,
        parallel_overhead_s=6e-5,  # Fig. 4: parallel floor ~0.05-0.1 ms
    ),
    mem=MemorySpec(
        ddr_peak_bps=90e9,  # Table 3 / STREAM for 6-ch DDR4-2400
        ddr_half_stanza=512.0,
        mcdram_peak_bps=345e9,  # Fig. 5: >3.4x DDR at long stanzas
        mcdram_half_stanza=2048.0,  # higher latency: no win at short stanzas
        mcdram_capacity_bytes=16e9,  # Table 3: 16 GB MCDRAM
        per_core_bps=6e9,
    ),
    kernel=KernelCostSpec(
        hash_probe=10.0,
        hash_accumulate=6.0,
        vector_probe=14.0,  # AVX-512 compare+ctz chain on 1.4 GHz cores
        heap_op=14.0,
        spa_touch=7.0,
        sort_cmp=20.0,  # introsort on (idx,val) pairs: compare+swap chain
        write_entry=4.0,
        mkl_row_overhead=900.0,  # serial row dispatch: MKL's Fig. 13 plateau
        kokkos_step=22.0,
        ipc=1.2,  # Silvermont-derived cores: modest scalar ILP
    ),
)

#: Dual-socket Intel Xeon E5-2698 v3 (Haswell), Table 3.
HASWELL = MachineSpec(
    name="Haswell",
    cores=32,
    smt=2,
    clock_ghz=2.3,
    vector_bits=256,
    l2_per_core_bytes=256 * 1024,
    l3_per_core_bytes=(2 * 40 << 20) // 32,  # Table 3: 40MB L3 per socket
    smt_gain=0.25,  # hyperthreading adds ~25% on OoO cores
    sched=SchedulingSpec(
        fork_join_s=5e-6,  # Fig. 2: Haswell static flat at ~5e-3 ms
        static_iter_s=1.5e-9,
        dynamic_iter_s=9e-9,  # Fig. 2: Haswell dynamic ~5 ms at 2^19 iters
        guided_iter_s=4e-9,  # Fig. 2: Haswell guided between static/dynamic
        dispatch_stall_s=2.0e-7,  # ring-bus line bounce
    ),
    alloc=AllocatorSpec(
        pooled_call_s=2e-6,
        cpp_threshold_bytes=32 << 20,
        tbb_threshold_bytes=256 << 20,
        release_s_per_byte=6e-11,
        fault_s_per_byte=1.5e-11,
        parallel_overhead_s=2e-5,
    ),
    mem=MemorySpec(
        ddr_peak_bps=120e9,  # 2 sockets x 4-ch DDR4-2133
        ddr_half_stanza=256.0,  # lower latency than KNL's DDR path
        mcdram_peak_bps=120e9,  # no MCDRAM: cache mode == flat mode
        mcdram_half_stanza=256.0,
        mcdram_capacity_bytes=float("inf"),
        per_core_bps=10e9,
    ),
    kernel=KernelCostSpec(
        hash_probe=5.0,
        hash_accumulate=3.0,
        vector_probe=5.5,  # cheap AVX2 compare at 2.3 GHz: HashVec shines
        heap_op=7.0,
        spa_touch=3.5,
        sort_cmp=9.0,  # introsort on (idx,val) pairs
        write_entry=2.0,
        mkl_row_overhead=400.0,
        kokkos_step=12.0,
        ipc=2.2,  # aggressive OoO scalar execution
    ),
)
