"""Stanza-access bandwidth model: DDR vs MCDRAM-as-cache (paper §3.3, Fig. 5).

Row-wise SpGEMM reads rows of B in a *stanza* pattern: short runs of
consecutive elements fetched from effectively random addresses.  The paper's
microbenchmark sweeps the stanza length from 8 bytes (pure random access) to
the array size (the STREAM limit) and finds:

* both memories crawl at short stanzas (latency bound, ~2 GB/s);
* at long stanzas DDR reaches its peak and MCDRAM-as-cache exceeds it by
  over 3.4x;
* MCDRAM's higher latency means it has **no advantage** below ~a cache line
  or two — "it would be hard to get the benefits of MCDRAM on very sparse
  matrices".

The model is the classic latency-bandwidth pipe: effective bandwidth for
stanza length ``L`` is ``peak * L / (L + L_half)`` where ``L_half`` (the
stanza length achieving half of peak) encodes the access latency.  MCDRAM
has a higher peak *and* a larger ``L_half`` — which is the entire §3.3
story in two constants.
"""

from __future__ import annotations

import enum

from ..errors import ConfigError
from .spec import MachineSpec

__all__ = ["MemoryMode", "stanza_bandwidth", "aggregate_bandwidth"]


class MemoryMode(str, enum.Enum):
    """KNL memory configuration (§5.2: Cache mode, or Flat on one memory)."""

    #: MCDRAM configured as a transparent cache in front of DDR (default).
    CACHE = "cache"
    #: Flat mode, allocations bound to DDR4 with ``numactl -p``.
    FLAT_DDR = "flat_ddr"
    #: Flat mode, allocations bound to MCDRAM.
    FLAT_MCDRAM = "flat_mcdram"


def stanza_bandwidth(
    machine: MachineSpec,
    stanza_bytes: float,
    mode: "MemoryMode | str" = MemoryMode.CACHE,
    *,
    working_set_bytes: float = 0.0,
) -> float:
    """Effective bandwidth (bytes/s) for stanza-patterned access.

    Parameters
    ----------
    stanza_bytes:
        Length of each contiguous run (>= 8; one element).
    mode:
        Memory configuration.  On machines without MCDRAM (Haswell) all
        modes coincide with DDR.
    working_set_bytes:
        Size of the actively-touched data.  In Cache mode, a working set
        beyond the MCDRAM capacity spills: the effective curve degrades
        toward DDR (this is how Fig. 10's edge-factor-64 Heap regression
        appears — "the memory requirement of Heap SpGEMM surpasses the
        capacity of MCDRAM").
    """
    mode = MemoryMode(mode)
    if stanza_bytes <= 0:
        raise ConfigError(f"stanza_bytes must be > 0, got {stanza_bytes}")
    m = machine.mem

    def pipe(peak: float, half: float) -> float:
        return peak * stanza_bytes / (stanza_bytes + half)

    ddr = pipe(m.ddr_peak_bps, m.ddr_half_stanza)
    if mode is MemoryMode.FLAT_DDR:
        return ddr
    mcd = pipe(m.mcdram_peak_bps, m.mcdram_half_stanza)
    if mode is MemoryMode.FLAT_MCDRAM:
        return mcd
    # Cache mode: MCDRAM behaviour while the working set fits, degrading to
    # DDR as the miss fraction grows past capacity.
    if working_set_bytes <= m.mcdram_capacity_bytes:
        return mcd
    hit = m.mcdram_capacity_bytes / working_set_bytes
    return hit * mcd + (1.0 - hit) * ddr


def aggregate_bandwidth(
    machine: MachineSpec,
    stanza_bytes: float,
    nthreads: int,
    mode: "MemoryMode | str" = MemoryMode.CACHE,
    *,
    working_set_bytes: float = 0.0,
) -> float:
    """Bandwidth achievable by ``nthreads`` concurrent threads (bytes/s).

    A single core cannot saturate the memory system (limited outstanding
    misses); aggregate bandwidth rises with thread count until the
    stanza-limited system bandwidth caps it.  This concurrency limit is what
    bends the strong-scaling curves of Fig. 13.
    """
    if nthreads < 1:
        raise ConfigError(f"nthreads must be >= 1, got {nthreads}")
    system = stanza_bandwidth(
        machine, stanza_bytes, mode, working_set_bytes=working_set_bytes
    )
    cores_active = min(nthreads, machine.cores)
    # SMT threads share their core's miss slots; count a partial credit.
    extra = min(nthreads, machine.max_threads) - cores_active
    concurrency = cores_active + 0.3 * extra / max(machine.smt - 1, 1)
    return min(system, concurrency * machine.mem.per_core_bps)
