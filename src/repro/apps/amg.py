"""Algebraic multigrid setup — the Galerkin triple product as SpGEMM.

The paper's introduction names AMG as a canonical SpGEMM consumer (citing
Ballard/Siefert/Hu on "reducing communication costs for sparse matrix
multiplication within algebraic multigrid").  This module implements a
compact aggregation-based AMG: strength of connection, greedy aggregation,
piecewise-constant prolongation, and the Galerkin coarse operator
``A_c = R A P`` — two SpGEMMs, associated flop-optimally by
:func:`repro.core.chain.multiply_chain` — plus a two-level V-cycle solver
that demonstrates the setup actually works (it accelerates Jacobi on
Poisson problems).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.chain import multiply_chain, plan_chain
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.ops import spmv, transpose
from ..observability import NULL_TRACER

__all__ = ["AmgHierarchy", "amg_setup", "two_level_solve"]


@dataclass(frozen=True)
class AmgHierarchy:
    """A two-level AMG hierarchy."""

    fine: CSR
    prolongation: CSR
    restriction: CSR
    coarse: CSR
    aggregates: np.ndarray
    #: chosen association of R·A·P and its flop saving
    plan_render: str
    plan_saving: float

    @property
    def coarsening_factor(self) -> float:
        return self.fine.nrows / max(self.coarse.nrows, 1)


def _strength_graph(a: CSR, theta: float) -> CSR:
    """Classical symmetric strength of connection: keep off-diagonal (i, j)
    with ``|a_ij| >= theta * max_k |a_ik|`` (k != i)."""
    rows = np.repeat(np.arange(a.nrows), a.row_nnz())
    off = rows != a.indices
    mags = np.abs(a.data)
    row_max = np.zeros(a.nrows)
    np.maximum.at(row_max, rows[off], mags[off])
    keep = off & (mags >= theta * np.maximum(row_max[rows], 1e-300))
    counts = np.bincount(rows[keep], minlength=a.nrows)
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR(
        a.shape, indptr, a.indices[keep], a.data[keep],
        sorted_rows=a.sorted_rows,
    )


def _greedy_aggregate(strength: CSR) -> np.ndarray:
    """Standard greedy aggregation: unaggregated vertices grab their
    unaggregated strong neighbours; leftovers join a neighbouring aggregate."""
    n = strength.nrows
    agg = np.full(n, -1, dtype=np.int64)
    next_agg = 0
    for i in range(n):
        if agg[i] >= 0:
            continue
        cols, _ = strength.row(i)
        free = [int(c) for c in cols if agg[c] < 0]
        agg[i] = next_agg
        for c in free:
            agg[c] = next_agg
        next_agg += 1
    # second pass: nothing is left unaggregated by construction (every
    # vertex either joined a neighbour or started its own aggregate)
    return agg


def amg_setup(
    a: CSR, *, theta: float = 0.25, algorithm: str = "auto",
    engine: str = "auto", plan_cache=None, tracer=None,
) -> AmgHierarchy:
    """Build a two-level hierarchy for a symmetric M-matrix-like operator.

    The Galerkin product runs through the fused chain tier: the triple
    product is associated flop-optimally, a left-deep order streams the
    intermediate block-by-block (never materializing all of ``R·A`` or
    ``A·P``), and the default ``algorithm="auto"``/``engine="auto"`` take
    each stage's kernel from the :class:`repro.core.chain.ChainPlan`'s
    symbolic quantities.

    Parameters
    ----------
    a:
        The fine-level operator (e.g. a mesh Laplacian).
    theta:
        Strength-of-connection threshold in [0, 1).
    algorithm:
        SpGEMM kernel for the Galerkin product (``"auto"`` = per-stage).
    plan_cache:
        Optional :class:`repro.core.plan.PlanCache` forwarded to the
        Galerkin SpGEMMs — rebuilding hierarchies whose operators keep
        their sparsity pattern (time-dependent coefficients on a fixed
        mesh) then re-runs numeric-only.
    tracer:
        Optional :class:`repro.observability.Tracer`; the setup stages
        (strength graph, aggregation, Galerkin product) each get a span,
        with the Galerkin SpGEMM roots nested under the last.
    """
    if a.nrows != a.ncols:
        raise ShapeError("AMG operator must be square")
    if not 0.0 <= theta < 1.0:
        raise ConfigError(f"theta must be in [0, 1), got {theta}")
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span("amg_setup", phase="other", nrows=a.nrows, theta=theta):
        with obs.span("strength", phase="other"):
            strength = _strength_graph(a, theta)
        with obs.span("aggregate", phase="other"):
            aggregates = _greedy_aggregate(strength)
        n_coarse = int(aggregates.max()) + 1 if a.nrows else 0

        # Piecewise-constant prolongation: P[i, agg(i)] = 1.
        p = CSR(
            (a.nrows, n_coarse),
            np.arange(a.nrows + 1, dtype=INDPTR_DTYPE),
            aggregates.astype(INDEX_DTYPE),
            np.ones(a.nrows, dtype=VALUE_DTYPE),
            sorted_rows=True,
        )
        r = transpose(p)

        with obs.span("galerkin", phase="other"):
            plan = plan_chain([r, a, p])
            coarse = multiply_chain(
                [r, a, p], algorithm=algorithm, engine=engine, plan=plan,
                plan_cache=plan_cache, tracer=tracer,
            )
    return AmgHierarchy(
        fine=a,
        prolongation=p,
        restriction=r,
        coarse=coarse,
        aggregates=aggregates,
        plan_render=plan.render(["R", "A", "P"]),
        plan_saving=plan.saving,
    )


def _jacobi(a: CSR, x: np.ndarray, b: np.ndarray, omega: float, sweeps: int) -> np.ndarray:
    diag = np.zeros(a.nrows)
    rows = np.repeat(np.arange(a.nrows), a.row_nnz())
    on_diag = rows == a.indices
    diag[rows[on_diag]] = a.data[on_diag]
    inv_d = np.divide(omega, diag, out=np.zeros_like(diag), where=diag != 0)
    for _ in range(sweeps):
        x = x + inv_d * (b - spmv(a, x))
    return x


def two_level_solve(
    hierarchy: AmgHierarchy,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_cycles: int = 100,
    omega: float = 0.67,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
) -> "tuple[np.ndarray, list[float]]":
    """Two-level V-cycles with weighted-Jacobi smoothing.

    The coarse system is solved directly (dense) — appropriate for a
    two-level demonstration.  Returns ``(solution, residual_history)``.
    """
    a = hierarchy.fine
    if len(b) != a.nrows:
        raise ShapeError(f"rhs length {len(b)} != n {a.nrows}")
    coarse_dense = hierarchy.coarse.to_dense()
    # guard singular coarse operators (pure Neumann): tiny regularization
    coarse_dense = coarse_dense + 1e-12 * np.eye(coarse_dense.shape[0])
    x = np.zeros_like(b)
    b_norm = float(np.linalg.norm(b)) or 1.0
    history: "list[float]" = []
    for _ in range(max_cycles):
        x = _jacobi(a, x, b, omega, pre_sweeps)
        residual = b - spmv(a, x)
        coarse_rhs = spmv(hierarchy.restriction, residual)
        correction = np.linalg.solve(coarse_dense, coarse_rhs)
        x = x + spmv(hierarchy.prolongation, correction)
        x = _jacobi(a, x, b, omega, post_sweeps)
        res_norm = float(np.linalg.norm(b - spmv(a, x))) / b_norm
        history.append(res_norm)
        if res_norm < tol:
            break
    return x, history
