"""Triangle counting via SpGEMM (§5.6; Azad, Buluç, Gilbert 2015).

The paper's pipeline: reorder the adjacency matrix by increasing degree,
split ``A = L + U`` (strictly lower/upper triangular), compute the wedge
matrix ``B = L·U`` — the SpGEMM this paper benchmarks — then mask with A:
every triangle ``{a < b < c}`` (in the reordered numbering) appears as the
wedge ``b–a–c`` counted at positions ``(b, c)`` and ``(c, b)``, so

    #triangles = sum(A .* (L U)) / 2.

Degree reordering minimizes ``flop(L·U)`` by making the wedge middle the
lowest-degree vertex — the preprocessing §5.6 applies "for optimal
performance".
"""

from __future__ import annotations

import numpy as np

from ..core.masked import masked_spgemm
from ..core.spgemm import spgemm
from ..errors import ShapeError
from ..matrix.csr import CSR
from ..matrix.ops import (
    degree_reorder,
    elementwise_multiply,
    pattern,
    triangular_split,
)
from ..observability import NULL_TRACER
from ..semiring import PLUS_TIMES

__all__ = ["count_triangles", "triangle_counts_per_vertex"]


def count_triangles(
    adjacency: CSR,
    *,
    algorithm: str = "hash",
    engine: str = "faithful",
    reorder: bool = True,
    masked: bool = True,
    plan_cache=None,
    tracer=None,
) -> int:
    """Count triangles of an undirected graph given its adjacency matrix.

    ``adjacency`` must be structurally symmetric with an empty diagonal
    (standard undirected-graph adjacency); values are ignored.

    ``reorder=False`` skips the degree preprocessing (useful to measure how
    much the reordering buys — the paper applies it always).

    The default ``masked=True`` fuses the elementwise mask into the
    multiplication (:func:`repro.core.masked.masked_spgemm`): wedges that
    do not close into an edge of A are dropped at accumulation time and the
    full wedge matrix ``L·U`` is never materialized — the GraphBLAS-style
    refinement of the paper's §5.6 pipeline.  The fused product is
    plan-backed: pass a :class:`repro.core.plan.PlanCache` as
    ``plan_cache`` and repeated counts on graphs with the same structure
    replay numeric-only.  ``algorithm`` applies only to the unfused
    (``masked=False``) path; the fused kernel is its own algorithm.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError("adjacency must be square")
    obs = tracer if tracer is not None else NULL_TRACER
    with obs.span("count_triangles", phase="other", nnz=adjacency.nnz):
        with obs.span("reorder", phase="other"):
            a = pattern(adjacency)
            if reorder:
                a, _ = degree_reorder(a, ascending=True)
            if not a.sorted_rows:
                a = a.sort_rows()
        with obs.span("split", phase="other"):
            low, up = triangular_split(a)
        with obs.span("wedges", phase="other"):
            if masked:
                closed = masked_spgemm(
                    low, up, a, semiring=PLUS_TIMES, engine=engine,
                    plan_cache=plan_cache, tracer=tracer,
                )
            else:
                wedges = spgemm(
                    low, up, algorithm=algorithm, semiring=PLUS_TIMES,
                    engine=engine, plan_cache=plan_cache, tracer=tracer,
                )
        with obs.span("mask", phase="other"):
            if not masked:
                closed = elementwise_multiply(a, wedges)
            total = float(closed.data.sum())
    return int(round(total / 2.0))


def triangle_counts_per_vertex(
    adjacency: CSR,
    *,
    algorithm: str = "hash",
    engine: str = "faithful",
    masked: bool = True,
    plan_cache=None,
) -> np.ndarray:
    """Number of triangles through each vertex.

    Uses the unordered formulation ``t(v) = (A .* A²) row-sum / 2``: every
    triangle through v contributes A²-paths to both of v's incident edges.
    With the default ``masked=True`` the product and the mask are one fused
    ``A²⟨A⟩`` call — off-pattern paths never reach the output;
    ``algorithm`` applies only to the unfused path.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError("adjacency must be square")
    a = pattern(adjacency)
    if masked:
        closed = masked_spgemm(
            a, a, a, semiring=PLUS_TIMES, engine=engine,
            plan_cache=plan_cache,
        )
    else:
        a2 = spgemm(
            a, a, algorithm=algorithm, semiring=PLUS_TIMES, engine=engine,
            plan_cache=plan_cache,
        )
        closed = elementwise_multiply(a, a2)
    out = np.zeros(a.nrows)
    rows, _, vals = closed.to_coo()
    np.add.at(out, rows, vals)
    return (out / 2.0).astype(np.int64)
