"""Clustering coefficients and label propagation — more §1 applications.

The paper's opening paragraph lists "label propagation [27]" and
"clustering coefficients [4]" among the algorithms whose bulk computation
is SpGEMM; both are built here on the library's kernels:

* :func:`clustering_coefficients` — ``cc(v) = 2 tri(v) / deg(v)(deg(v)-1)``
  with the triangle counts from the masked ``A .* A²`` product;
* :func:`label_propagation` — semi-synchronous community detection: each
  round computes the neighbour-label histogram of every vertex as ONE
  tall-skinny SpGEMM ``A (x) L`` (L = one-hot label matrix) and moves each
  vertex to its most frequent neighbouring label.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES
from .triangles import triangle_counts_per_vertex

__all__ = ["clustering_coefficients", "label_propagation", "LabelPropagationResult"]


def clustering_coefficients(
    adjacency: CSR, *, algorithm: str = "hash", engine: str = "faithful",
    masked: bool = True, plan_cache=None,
) -> np.ndarray:
    """Local clustering coefficient of every vertex of an undirected graph.

    ``cc(v) = 2 * triangles(v) / (deg(v) * (deg(v) - 1))``; vertices with
    degree < 2 get 0.0 (networkx convention).  The triangle counts come
    from the fused ``A²⟨A⟩`` product by default (``masked=True``);
    ``plan_cache`` makes repeated same-structure calls numeric-only.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError("adjacency must be square")
    tri = triangle_counts_per_vertex(
        adjacency, algorithm=algorithm, engine=engine, masked=masked,
        plan_cache=plan_cache,
    )
    deg = adjacency.row_nnz().astype(np.float64)
    wedges = deg * (deg - 1.0)
    return np.divide(
        2.0 * tri, wedges, out=np.zeros_like(wedges), where=wedges > 0
    )


def _one_hot_labels(labels: np.ndarray, n_labels: int) -> CSR:
    n = len(labels)
    indptr = np.arange(n + 1, dtype=INDPTR_DTYPE)
    return CSR(
        (n, n_labels),
        indptr,
        labels.astype(INDEX_DTYPE),
        np.ones(n, dtype=VALUE_DTYPE),
        sorted_rows=True,
    )


@dataclass(frozen=True)
class LabelPropagationResult:
    """Outcome of a label-propagation run."""

    labels: np.ndarray
    n_communities: int
    iterations: int
    converged: bool


def label_propagation(
    adjacency: CSR,
    *,
    max_iterations: int = 30,
    seed: int = 0,
    algorithm: str = "hash",
    engine: str = "faithful",
) -> LabelPropagationResult:
    """Community detection by (semi-synchronous) label propagation.

    Every vertex starts in its own community; each round, the histogram of
    neighbour labels for ALL vertices is one SpGEMM ``A (x) L`` over the
    arithmetic semiring, and each vertex adopts its most frequent
    neighbouring label (random tie-break, seeded).  Converges when no label
    changes.

    Synchronous updates can oscillate on bipartite structures; a standard
    damping trick is applied (a vertex only moves if the new label is
    strictly more frequent than its current one).
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError("adjacency must be square")
    if max_iterations < 1:
        raise ConfigError("max_iterations must be >= 1")
    n = adjacency.nrows
    rng = np.random.default_rng(seed)
    labels = np.arange(n, dtype=INDEX_DTYPE)
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        # compact the label space so the tall-skinny operand stays narrow
        uniq, compact = np.unique(labels, return_inverse=True)
        lmat = _one_hot_labels(compact, len(uniq))
        hist = spgemm(adjacency, lmat, algorithm=algorithm,
                      semiring=PLUS_TIMES, sort_output=False, engine=engine)
        new_labels = compact.copy()
        rows, cols, vals = hist.to_coo()
        # per-vertex argmax with random tie-break: add tiny seeded jitter
        jitter = rng.random(len(vals)) * 1e-9
        score = vals + jitter
        order = np.lexsort((score, rows))
        # last entry of each row group after sorting by (row, score) = argmax
        boundaries = np.flatnonzero(
            np.concatenate([rows[order][1:] != rows[order][:-1], [True]])
        )
        arg_rows = rows[order][boundaries]
        arg_cols = cols[order][boundaries]
        arg_vals = vals[order][boundaries]
        # current label's own frequency, for the strict-improvement test
        cur = np.zeros(n)
        same = compact[rows] == cols
        np.add.at(cur, rows[same], vals[same])
        want_move = arg_vals > cur[arg_rows]
        if not want_move.any():
            labels = uniq[compact]
            converged = True
            break
        # semi-synchronous damping: only a random subset of vertices moves
        # each round, which breaks the two-coloring oscillations synchronous
        # LP is prone to (bipartite-like structures, balanced cliques)
        participate = rng.random(n) < 0.6
        move = want_move & participate[arg_rows]
        new_labels[arg_rows[move]] = arg_cols[move]
        labels = uniq[new_labels]
    final_uniq, final = np.unique(labels, return_inverse=True)
    return LabelPropagationResult(
        labels=final,
        n_communities=len(final_uniq),
        iterations=it,
        converged=converged,
    )
