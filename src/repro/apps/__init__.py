"""SpGEMM-powered graph algorithms — the paper's motivating applications.

The evaluation scenarios of §5 are abstractions of real algorithms; this
package implements those algorithms on top of :func:`repro.spgemm` so the
library is usable end-to-end, not only benchmarkable:

* :mod:`repro.apps.bfs` — multi-source breadth-first search as repeated
  (square x tall-skinny) products over the boolean semiring (§5.5);
* :mod:`repro.apps.triangles` — triangle counting via the L·U wedge
  product with elementwise masking (§5.6, after Azad/Buluç/Gilbert);
* :mod:`repro.apps.markov` — Markov clustering (MCL), whose expansion step
  is the A² scenario of §5.4 (after van Dongen; HipMCL);
* :mod:`repro.apps.centrality` — betweenness centrality by batched Brandes
  over SpGEMM frontiers (§5.5's motivating algorithm, after CombBLAS);
* :mod:`repro.apps.clustering` — local clustering coefficients and
  label-propagation community detection (§1's application list);
* :mod:`repro.apps.amg` — algebraic-multigrid setup whose Galerkin triple
  product R·A·P is the numerical-simulation use of SpGEMM the paper's
  introduction cites.
"""

from .amg import AmgHierarchy, amg_setup, two_level_solve
from .bfs import multi_source_bfs
from .centrality import betweenness_centrality
from .clustering import (
    LabelPropagationResult,
    clustering_coefficients,
    label_propagation,
)
from .markov import markov_cluster
from .triangles import count_triangles, triangle_counts_per_vertex

__all__ = [
    "AmgHierarchy",
    "amg_setup",
    "two_level_solve",
    "multi_source_bfs",
    "betweenness_centrality",
    "clustering_coefficients",
    "label_propagation",
    "LabelPropagationResult",
    "count_triangles",
    "triangle_counts_per_vertex",
    "markov_cluster",
]
