"""Betweenness centrality via batched Brandes over SpGEMM frontiers.

The paper's §5.5 motivates square x tall-skinny SpGEMM with "Betweenness
Centrality on unweighted graphs" (citing the Combinatorial BLAS [8]).  This
module implements the linear-algebraic Brandes algorithm: the forward sweep
is the multi-source BFS frontier product — a sparse (n x k) tall-skinny
SpGEMM per level, over the arithmetic semiring so path *counts* accumulate —
and the backward sweep propagates dependencies level by level.

Per-search bookkeeping (path counts, dependencies) is kept in dense
(n x batch) arrays: exact, simple, and appropriate at the sizes this library
targets; the sparse frontier products carry the actual graph traversal.
"""

from __future__ import annotations

import numpy as np

from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.ops import transpose
from ..semiring import PLUS_TIMES

__all__ = ["betweenness_centrality"]


def _frontier_from_pairs(n: int, k: int, rows, cols, vals) -> CSR:
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR((n, k), indptr, cols, vals, sorted_rows=True)


def betweenness_centrality(
    adjacency: CSR,
    sources: "np.ndarray | list[int] | None" = None,
    *,
    algorithm: str = "hash",
    engine: str = "faithful",
    normalized: bool = False,
) -> np.ndarray:
    """Exact (or source-sampled) betweenness centrality of a digraph.

    Parameters
    ----------
    adjacency:
        Square adjacency matrix; edge u→v is a stored entry at ``(u, v)``
        (values ignored — unweighted shortest paths).
    sources:
        BFS sources.  ``None`` uses every vertex (exact BC); a subset gives
        the standard sampled estimator (scaled accordingly only under
        ``normalized``).
    algorithm:
        SpGEMM kernel for the frontier products.
    normalized:
        Divide by ``(n-1)(n-2)`` (and rescale for sampling) like networkx.

    Returns
    -------
    ndarray
        ``bc[v]`` — betweenness of each vertex.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError("adjacency must be square")
    n = adjacency.nrows
    if sources is None:
        sources = np.arange(n, dtype=INDEX_DTYPE)
    else:
        sources = np.asarray(sources, dtype=INDEX_DTYPE)
        if len(sources) and (sources.min() < 0 or sources.max() >= n):
            raise ConfigError("source vertex out of range")
    k = len(sources)
    bc = np.zeros(n, dtype=VALUE_DTYPE)
    if k == 0 or n < 3:
        return bc

    at = transpose(adjacency)

    # ---- forward sweep: BFS with path counting ---------------------------
    # sigma[v, j]: number of shortest s_j->v paths; depth[v, j]: BFS level.
    sigma = np.zeros((n, k), dtype=VALUE_DTYPE)
    depth = np.full((n, k), -1, dtype=np.int64)
    sigma[sources, np.arange(k)] = 1.0
    depth[sources, np.arange(k)] = 0
    frontier = _frontier_from_pairs(
        n, k, sources.copy(), np.arange(k, dtype=INDEX_DTYPE),
        np.ones(k, dtype=VALUE_DTYPE),
    )
    frontiers: "list[CSR]" = [frontier]
    d = 0
    while frontier.nnz:
        d += 1
        nxt = spgemm(at, frontier, algorithm=algorithm, semiring=PLUS_TIMES,
                     sort_output=False, engine=engine)
        rows, cols, vals = nxt.to_coo()
        fresh = depth[rows, cols] < 0
        rows, cols, vals = rows[fresh], cols[fresh], vals[fresh]
        if len(rows) == 0:
            break
        depth[rows, cols] = d
        sigma[rows, cols] = vals
        frontier = _frontier_from_pairs(n, k, rows, cols, vals)
        frontiers.append(frontier)

    # ---- backward sweep: dependency accumulation -------------------------
    # delta[v, j] = sum over successors w on shortest paths of
    #   sigma[v]/sigma[w] * (1 + delta[w]).
    delta = np.zeros((n, k), dtype=VALUE_DTYPE)
    for level in range(len(frontiers) - 1, 0, -1):
        rows, cols, _ = frontiers[level].to_coo()
        if len(rows) == 0:
            continue
        # weight of each frontier vertex: (1 + delta) / sigma
        w_vals = (1.0 + delta[rows, cols]) / sigma[rows, cols]
        w = _frontier_from_pairs(n, k, rows, cols, w_vals)
        # push to predecessors: contribution[v, j] = sum_w A[v, w] * w[w, j]
        contrib = spgemm(adjacency, w, algorithm=algorithm,
                         semiring=PLUS_TIMES, sort_output=False, engine=engine)
        crows, ccols, cvals = contrib.to_coo()
        # keep only predecessors exactly one level up (on shortest paths)
        on_path = depth[crows, ccols] == level - 1
        crows, ccols, cvals = crows[on_path], ccols[on_path], cvals[on_path]
        delta[crows, ccols] += cvals * sigma[crows, ccols]

    # sources do not count their own paths
    delta[sources, np.arange(k)] = 0.0
    bc = delta.sum(axis=1)
    if normalized:
        scale = 1.0 / ((n - 1) * (n - 2))
        if k != n:
            scale *= n / k  # sampling rescale
        bc = bc * scale
    return bc
