"""Multi-source BFS as sparse matrix products (§5.5's scenario).

"Many graph processing algorithms perform multiple breadth-first searches
in parallel ... In linear algebraic terms, this corresponds to multiplying a
square sparse matrix with a tall-skinny one.  The left-hand-side matrix
represents the graph and the right-hand-side matrix represent the stack of
frontiers, each column representing one BFS frontier."

The frontier expansion is one SpGEMM over the boolean (or, and) semiring:
``F' = A^T (x) F`` restricted to unvisited vertices.
"""

from __future__ import annotations

import numpy as np

from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.ops import transpose
from ..observability import NULL_TRACER
from ..semiring import OR_AND

__all__ = ["multi_source_bfs"]


def _frontier_matrix(n: int, sources: np.ndarray) -> CSR:
    """n x k one-hot frontier stack: column j holds source j."""
    k = len(sources)
    order = np.argsort(sources, kind="stable")
    rows = sources[order]
    cols = np.arange(k, dtype=INDEX_DTYPE)[order]
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR((n, k), indptr, cols, np.ones(k, dtype=VALUE_DTYPE), sorted_rows=True)


def multi_source_bfs(
    adjacency: CSR,
    sources: "np.ndarray | list[int]",
    *,
    algorithm: str = "hash",
    engine: str = "faithful",
    max_depth: int | None = None,
    plan_cache=None,
    tracer=None,
) -> np.ndarray:
    """Run BFS from every source simultaneously via SpGEMM.

    Parameters
    ----------
    adjacency:
        Square adjacency matrix; an edge u→v is a nonzero at ``(u, v)``.
        Values are ignored (pattern semantics).
    sources:
        Start vertices, one BFS per entry.
    algorithm:
        SpGEMM kernel used for the frontier expansion.  Unsorted output is
        requested — levels only need membership, never ordering — which is
        precisely the paper's argument for unsorted SpGEMM pipelines.
    engine:
        Execution engine for the kernel (``"faithful"`` or ``"fast"``; see
        :func:`repro.spgemm`).
    max_depth:
        Optional level cap.
    plan_cache:
        Optional :class:`repro.core.plan.PlanCache` forwarded to each
        expansion.  Frontiers change shape every level, so the payoff is
        across *repeated* BFS batches on the same graph (each level's
        ``A^T``-side structure is re-fingerprinted per call).
    tracer:
        Optional :class:`repro.observability.Tracer`; every frontier
        expansion gets a ``bfs_level`` span (meta: depth, frontier nnz)
        containing that level's SpGEMM root.

    Returns
    -------
    ndarray
        ``levels[v, j]`` = BFS level of vertex ``v`` from ``sources[j]``
        (0 for the source itself), or -1 if unreachable.
    """
    if adjacency.nrows != adjacency.ncols:
        raise ShapeError("adjacency must be square")
    n = adjacency.nrows
    sources = np.asarray(sources, dtype=INDEX_DTYPE)
    if len(sources) == 0:
        return np.empty((n, 0), dtype=np.int64)
    if sources.min() < 0 or sources.max() >= n:
        raise ConfigError("source vertex out of range")

    # Frontier expansion multiplies A^T so that row v of the product collects
    # frontier flags from v's in-neighbors: F'[v, j] = OR_u A[u, v] AND F[u, j].
    at = transpose(adjacency)
    levels = np.full((n, len(sources)), -1, dtype=np.int64)
    levels[sources, np.arange(len(sources))] = 0
    frontier = _frontier_matrix(n, sources)
    depth = 0
    cap = max_depth if max_depth is not None else n
    obs = tracer if tracer is not None else NULL_TRACER
    while frontier.nnz and depth < cap:
        depth += 1
        with obs.span("bfs_level", phase="other", depth=depth, frontier_nnz=frontier.nnz):
            nxt = spgemm(
                at, frontier, algorithm=algorithm, semiring=OR_AND,
                sort_output=False, engine=engine, plan_cache=plan_cache,
                tracer=tracer,
            )
        # Keep only newly discovered (vertex, search) pairs.
        rows, cols, _ = nxt.to_coo()
        fresh = levels[rows, cols] < 0
        rows, cols = rows[fresh], cols[fresh]
        if len(rows) == 0:
            break
        levels[rows, cols] = depth
        counts = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(rows, kind="stable")
        frontier = CSR(
            (n, len(sources)),
            indptr,
            cols[order],
            np.ones(len(rows), dtype=VALUE_DTYPE),
            sorted_rows=False,
        )
    return levels
