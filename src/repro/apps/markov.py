"""Markov clustering (MCL) — the paper's flagship A² use case (§5.4).

"Markov clustering is an example of this case, which requires A² for a
given doubly-stochastic similarity matrix."  The algorithm (van Dongen
2000; parallelized as HipMCL, Azad et al. 2018) alternates:

* **expansion** — squaring the column-stochastic matrix (SpGEMM);
* **inflation** — elementwise power ``r`` followed by column
  re-normalization, sharpening the random-walk distribution;
* **pruning** — dropping tiny entries to keep the matrix sparse.

Clusters are read off the converged matrix as weakly connected components
of its support.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR
from ..matrix.ops import prune as prune_small
from ..matrix.ops import scale_columns, transpose
from ..observability import NULL_TRACER
from ..semiring import PLUS_TIMES

__all__ = ["MclResult", "markov_cluster"]


@dataclass(frozen=True)
class MclResult:
    """Outcome of a Markov-clustering run."""

    #: cluster id per vertex (0..n_clusters-1, contiguous)
    labels: np.ndarray
    #: number of clusters found
    n_clusters: int
    #: iterations executed
    iterations: int
    #: whether the iteration reached the convergence tolerance
    converged: bool


def _column_normalize(m: CSR) -> CSR:
    sums = np.zeros(m.ncols)
    np.add.at(sums, m.indices, m.data)
    inv = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return scale_columns(m, inv)


def _components_of_support(m: CSR) -> "tuple[np.ndarray, int]":
    """Weakly connected components of the nonzero pattern (union-find)."""
    n = m.nrows
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows, cols, _ = m.to_coo()
    for u, v in zip(rows.tolist(), cols.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    roots = np.array([find(i) for i in range(n)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels, int(labels.max()) + 1 if n else 0


def markov_cluster(
    similarity: CSR,
    *,
    inflation: float = 2.0,
    prune_threshold: float = 1e-4,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    algorithm: str = "hash",
    engine: str = "faithful",
    add_self_loops: bool = True,
    plan_cache=None,
    tracer=None,
) -> MclResult:
    """Cluster a graph given a (symmetric, non-negative) similarity matrix.

    Parameters
    ----------
    inflation:
        The MCL inflation exponent ``r > 1``; higher values give finer
        clusters.
    prune_threshold:
        Entries below this magnitude are dropped after each inflation —
        MCL's sparsity-preserving step (HipMCL's key to scaling).
    algorithm:
        SpGEMM kernel used for expansion; squaring a column-stochastic
        similarity matrix is exactly the §5.4 benchmark scenario.
    add_self_loops:
        Standard MCL regularization: unit diagonal before normalization.
    plan_cache:
        Optional :class:`repro.core.plan.PlanCache` forwarded to every
        expansion — iterations whose pruned support stabilizes (MCL's
        usual late phase) replay the cached plan numeric-only.
    tracer:
        Optional :class:`repro.observability.Tracer`; each iteration gets
        an ``mcl_iteration`` span holding expansion (the SpGEMM root),
        inflation, and prune children.
    """
    if similarity.nrows != similarity.ncols:
        raise ShapeError("similarity matrix must be square")
    if inflation <= 1.0:
        raise ConfigError(f"inflation must be > 1, got {inflation}")
    if (similarity.data < 0).any():
        raise ConfigError("similarity entries must be non-negative")
    n = similarity.nrows

    m = similarity.copy()
    if add_self_loops:
        from ..matrix.construct import identity
        from ..matrix.ops import add

        m = add(m, identity(n))
    m = _column_normalize(m)

    converged = False
    it = 0
    obs = tracer if tracer is not None else NULL_TRACER
    for it in range(1, max_iterations + 1):
        with obs.span("mcl_iteration", phase="other", iteration=it, nnz=m.nnz):
            with obs.span("expansion", phase="other"):
                expanded = spgemm(
                    m, m, algorithm=algorithm, semiring=PLUS_TIMES,
                    engine=engine, plan_cache=plan_cache, tracer=tracer,
                )
            # Inflation: elementwise power + column re-normalization.
            with obs.span("inflation", phase="other"):
                inflated = CSR(
                    expanded.shape,
                    expanded.indptr.copy(),
                    expanded.indices.copy(),
                    np.power(expanded.data, inflation),
                    sorted_rows=expanded.sorted_rows,
                )
                inflated = _column_normalize(inflated)
            with obs.span("prune", phase="other"):
                nxt = prune_small(inflated, prune_threshold)
                nxt = _column_normalize(nxt)
        # Convergence: the chaos/steady-state test via max entry change on
        # the shared support (cheap, sufficient for these sizes).
        if nxt.same_pattern(m):
            a = nxt if nxt.sorted_rows else nxt.sort_rows()
            b = m if m.sorted_rows else m.sort_rows()
            if np.abs(a.data - b.data).max(initial=0.0) < tolerance:
                m = nxt
                converged = True
                break
        m = nxt

    labels, k = _components_of_support(m)
    return MclResult(labels=labels, n_clusters=k, iterations=it, converged=converged)
