"""Terminal rendering of benchmark series (no plotting dependencies).

The benchmark harness regenerates the paper's figures as data; these helpers
render them as aligned tables and coarse ASCII line charts so the shapes are
visible directly in ``pytest benchmarks/`` output.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["render_series", "render_profile"]


def _fmt(x: float) -> str:
    if x == 0:
        return "0"
    if abs(x) >= 1000:
        return f"{x:,.0f}"
    if abs(x) >= 10:
        return f"{x:.1f}"
    return f"{x:.3g}"


def render_series(
    title: str,
    x_label: str,
    xs: "list",
    series: "dict[str, list[float]]",
    *,
    width: int = 60,
    height: int = 12,
    log_y: bool = False,
) -> str:
    """A table of values plus an ASCII chart, one letter per series."""
    lines = [f"== {title} =="]
    header = f"{x_label:>16s} | " + " ".join(f"{name:>14s}" for name in series)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{str(x):>16s} | " + " ".join(
            f"{_fmt(vals[i]):>14s}" for vals in series.values()
        )
        lines.append(row)
    # ASCII chart
    all_vals = np.array([v for vals in series.values() for v in vals], dtype=float)
    finite = all_vals[np.isfinite(all_vals) & (all_vals > 0 if log_y else True)]
    if len(finite) == 0:
        return "\n".join(lines)
    lo, hi = float(finite.min()), float(finite.max())
    if log_y:
        lo, hi = math.log10(lo), math.log10(hi)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    for si, (name, vals) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for i, v in enumerate(vals):
            if not np.isfinite(v) or (log_y and v <= 0):
                continue
            vv = math.log10(v) if log_y else v
            col = int(i / max(len(xs) - 1, 1) * (width - 1))
            row = int((vv - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines.append("")
    scale = "log10" if log_y else "linear"
    lines.append(f"  y: {_fmt(10**hi if log_y else hi)} ({scale})")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"  y: {_fmt(10**lo if log_y else lo)}   x: {xs[0]} .. {xs[-1]}")
    legend = "  legend: " + "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def render_profile(title: str, profile, *, taus=None, width: int = 60) -> str:
    """Render a :class:`~repro.profiling.perfprofile.PerformanceProfile`."""
    if taus is None:
        hi = min(profile.ratios[np.isfinite(profile.ratios)].max(), 5.0)
        taus = np.linspace(1.0, max(hi, 1.001), 9)
    lines = [f"== {title} =="]
    header = f"{'tau':>8s} | " + " ".join(f"{s:>14s}" for s in profile.solvers)
    lines.append(header)
    lines.append("-" * len(header))
    for tau in taus:
        row = f"{tau:8.2f} | " + " ".join(
            f"{profile.rho(s, tau):>14.2f}" for s in profile.solvers
        )
        lines.append(row)
    lines.append(
        "  wins@1.0: "
        + "  ".join(f"{s}={profile.wins(s):.2f}" for s in profile.solvers)
    )
    return "\n".join(lines)
