"""Speedup summaries (§5.4.4's harmonic-mean unsorted-over-sorted figures)."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["harmonic_mean_speedup", "geometric_mean"]


def harmonic_mean_speedup(
    baseline_times: "dict[str, float]", improved_times: "dict[str, float]"
) -> float:
    """Harmonic mean of ``baseline / improved`` over common problems.

    The paper reports "the harmonic mean of the speedups achieved operating
    on unsorted data over all real matrices" (1.58x for MKL, 1.63x for Hash,
    1.68x for HashVector on KNL); the harmonic mean is the conventional
    summary for ratios of times.
    """
    keys = [k for k in baseline_times if k in improved_times]
    if not keys:
        raise ConfigError("no common problems between the two time sets")
    speedups = np.array(
        [baseline_times[k] / improved_times[k] for k in keys], dtype=float
    )
    if (speedups <= 0).any():
        raise ConfigError("times must be positive")
    return float(len(speedups) / np.sum(1.0 / speedups))


def geometric_mean(values: "list[float] | np.ndarray") -> float:
    """Geometric mean (used for cross-matrix MFLOPS summaries)."""
    arr = np.asarray(values, dtype=float)
    if len(arr) == 0 or (arr <= 0).any():
        raise ConfigError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
