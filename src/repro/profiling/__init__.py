"""Performance-comparison statistics used by the paper's evaluation.

* :mod:`repro.profiling.perfprofile` — Dolan–Moré performance profiles
  (Fig. 15): for each problem, every algorithm is scored relative to the
  best; the profile curve shows, for each tolerance τ, the fraction of
  problems an algorithm solves within τ× of the best.
* :mod:`repro.profiling.speedup` — harmonic-mean speedups (§5.4.4's
  unsorted-over-sorted 1.58×/1.63×/1.68× figures) and related summaries.
* :mod:`repro.profiling.ascii_chart` — dependency-free line/profile
  rendering so benchmark output is readable in a terminal.

Also re-exported here: the observability layer's per-phase breakdown
(:func:`repro.observability.phase_breakdown` /
:func:`~repro.observability.render_breakdown`) — the *measured*
companion to the modeled Fig.-15 profiles, so the bench harness builds
both tables from one import surface.
"""

from .perfprofile import PerformanceProfile, performance_profile
from .speedup import harmonic_mean_speedup, geometric_mean
from .ascii_chart import render_series, render_profile
from ..observability import phase_breakdown, render_breakdown

__all__ = [
    "PerformanceProfile",
    "performance_profile",
    "harmonic_mean_speedup",
    "geometric_mean",
    "render_series",
    "render_profile",
    "phase_breakdown",
    "render_breakdown",
]
