"""Dolan–Moré performance profiles (Fig. 15; Dolan & Moré 2002).

"To profile the relative performance of algorithms, the best performing
algorithm for each problem is identified and assigned a relative score of 1.
Other algorithms are scored relative to the best performing algorithm, with
a higher value denoting inferior performance" (paper §5.4.5).

The profile of algorithm *s* is the cumulative distribution

    rho_s(tau) = |{problems p : ratio(p, s) <= tau}| / |problems|

where ``ratio(p, s) = time(p, s) / min_s' time(p, s')``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

__all__ = ["PerformanceProfile", "performance_profile"]


@dataclass(frozen=True)
class PerformanceProfile:
    """Computed profile curves for a set of solvers on shared problems."""

    solvers: "tuple[str, ...]"
    problems: "tuple[str, ...]"
    #: ratios[i, j] = time of solver j on problem i / best time on problem i
    ratios: np.ndarray

    def rho(self, solver: str, tau: float) -> float:
        """Fraction of problems solved within ``tau`` x of the best."""
        j = self.solvers.index(solver)
        return float(np.mean(self.ratios[:, j] <= tau))

    def curve(
        self, solver: str, taus: "np.ndarray | None" = None
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(taus, rho(tau))`` arrays for plotting."""
        if taus is None:
            hi = float(np.nanmax(self.ratios))
            taus = np.linspace(1.0, max(hi, 1.0 + 1e-9), 64)
        j = self.solvers.index(solver)
        col = self.ratios[:, j][:, None]
        return taus, np.nanmean(col <= taus[None, :], axis=0)

    def wins(self, solver: str) -> float:
        """Fraction of problems on which this solver is (tied-)best."""
        return self.rho(solver, 1.0 + 1e-12)

    def worst_ratio(self, solver: str) -> float:
        """The solver's largest slowdown factor over the per-problem best."""
        j = self.solvers.index(solver)
        return float(np.nanmax(self.ratios[:, j]))

    def ranking(self) -> "list[tuple[str, float]]":
        """Solvers sorted by area under the profile (higher = better)."""
        scores = []
        hi = float(np.nanmax(self.ratios))
        taus = np.linspace(1.0, max(hi, 1.0 + 1e-9), 256)
        for s in self.solvers:
            _, rho = self.curve(s, taus)
            scores.append((s, float(np.trapezoid(rho, taus) / (taus[-1] - taus[0] + 1e-300))))
        return sorted(scores, key=lambda kv: -kv[1])


def performance_profile(
    times: "dict[str, dict[str, float]]",
) -> PerformanceProfile:
    """Build a profile from ``{solver: {problem: time}}`` measurements.

    Every solver must report every problem (the Dolan–Moré formulation with
    failures assigns infinity — pass ``float('inf')`` explicitly if needed).
    """
    if not times:
        raise ConfigError("need at least one solver")
    solvers = tuple(times)
    problems = tuple(times[solvers[0]])
    if not problems:
        raise ConfigError("need at least one problem")
    for s in solvers:
        if tuple(times[s]) != problems:
            raise ConfigError(
                f"solver {s!r} reports a different problem set than {solvers[0]!r}"
            )
    mat = np.array([[times[s][p] for s in solvers] for p in problems], dtype=float)
    if (mat <= 0).any():
        raise ConfigError("times must be positive")
    best = mat.min(axis=1, keepdims=True)
    return PerformanceProfile(solvers, problems, mat / best)
