"""repro — high-performance SpGEMM on KNL/multicore, reproduced in Python.

A faithful, laptop-runnable reproduction of

    Nagasaka, Matsuoka, Azad, Buluç:
    "High-Performance Sparse Matrix-Matrix Products on Intel KNL and
    Multicore Architectures", ICPP 2018 (arXiv:1804.01698).

Public surface (see README for a tour):

* :func:`repro.spgemm` — one-call SpGEMM with selectable algorithm
  (hash / hashvec / heap / spa / mkl / mkl_inspector / kokkos / esc) and
  semiring, over :class:`repro.CSR` matrices;
* :mod:`repro.rmat` — ER / G500 synthetic matrix generation;
* :mod:`repro.machine` + :mod:`repro.perfmodel` — the KNL/Haswell machine
  model and the operation-level performance simulator that regenerates the
  paper's figures;
* :mod:`repro.datasets` — proxies for the SuiteSparse suite of Table 2;
* :mod:`repro.apps` — SpGEMM-powered graph algorithms (multi-source BFS,
  triangle counting, Markov clustering);
* :mod:`repro.profiling` — Dolan–Moré performance profiles and speedup
  statistics;
* :mod:`repro.observability` — phase-level span tracing across every
  kernel (enable with ``tracer=`` or ``REPRO_TRACE=1``; see
  ``docs/observability.md``).
"""

from .errors import (
    ConfigError,
    DatasetError,
    FormatError,
    PlanError,
    ReproError,
    ShapeError,
)
from .matrix import CSR, COO
from .matrix.construct import (
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
    identity,
    random_csr,
)
from .matrix.stats import compression_ratio, matrix_stats
from .semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    get_semiring,
)
from .core import (
    ChainPlan,
    KernelStats,
    MaskedSpgemmPlan,
    PlanCache,
    SpgemmOptions,
    SpgemmPlan,
    available_algorithms,
    available_engines,
    inspect,
    inspect_masked,
    masked_spgemm,
    multiply_chain,
    plan_chain,
    recommend,
    rows_to_threads,
    spgemm,
)
from .observability import (
    Span,
    Tracer,
    json_trace,
    phase_breakdown,
    render_breakdown,
    render_tree,
    tracer_from_env,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ConfigError",
    "DatasetError",
    "CSR",
    "COO",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "identity",
    "random_csr",
    "compression_ratio",
    "matrix_stats",
    "Semiring",
    "get_semiring",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "MAX_TIMES",
    "spgemm",
    "SpgemmOptions",
    "SpgemmPlan",
    "MaskedSpgemmPlan",
    "PlanCache",
    "PlanError",
    "inspect",
    "inspect_masked",
    "masked_spgemm",
    "multiply_chain",
    "plan_chain",
    "ChainPlan",
    "available_algorithms",
    "available_engines",
    "recommend",
    "rows_to_threads",
    "KernelStats",
    "Tracer",
    "Span",
    "tracer_from_env",
    "json_trace",
    "render_tree",
    "render_breakdown",
    "phase_breakdown",
    "__version__",
]
