"""repro — high-performance SpGEMM on KNL/multicore, reproduced in Python.

A faithful, laptop-runnable reproduction of

    Nagasaka, Matsuoka, Azad, Buluç:
    "High-Performance Sparse Matrix-Matrix Products on Intel KNL and
    Multicore Architectures", ICPP 2018 (arXiv:1804.01698).

Public surface (see README for a tour):

* :func:`repro.spgemm` — one-call SpGEMM with selectable algorithm
  (hash / hashvec / heap / spa / mkl / mkl_inspector / kokkos / esc) and
  semiring, over :class:`repro.CSR` matrices; configuration canonicalizes
  into frozen :class:`repro.SpgemmOptions` / :class:`repro.ChainOptions`
  values shared by every entry point (``multiply_chain``,
  ``masked_spgemm``, ``parallel_spgemm`` accept the same shape);
* :class:`repro.SpgemmPlan` / :class:`repro.PlanCache` — the
  inspector–executor plan layer: pay structure discovery once, replay it
  numeric-only on every same-structure product (``docs/plans.md``);
* :func:`repro.multiply_chain` / :func:`repro.masked_spgemm` — chain and
  masked products with streamed sandwich fusion, so R·A·P never
  materializes an intermediate (``docs/fusion.md``);
* :mod:`repro.parallel` — real process-parallel SpGEMM over zero-copy
  shared-memory operand transport, plus the warm
  :class:`repro.parallel.WorkerPool`;
* :mod:`repro.serve` — SpGEMM-as-a-service: a multi-tenant asyncio server
  on the ``repro-job/1`` wire schema, with admission control, shared plan
  cache and a metrics endpoint (``docs/serving.md``);
* :mod:`repro.rmat` — ER / G500 synthetic matrix generation;
* :mod:`repro.machine` + :mod:`repro.perfmodel` — the KNL/Haswell machine
  model and the operation-level performance simulator that regenerates the
  paper's figures;
* :mod:`repro.datasets` — proxies for the SuiteSparse suite of Table 2;
* :mod:`repro.apps` — SpGEMM-powered graph algorithms (multi-source BFS,
  triangle counting, Markov clustering);
* :mod:`repro.profiling` — Dolan–Moré performance profiles and speedup
  statistics;
* :mod:`repro.observability` — phase-level span tracing across every
  kernel (enable with ``tracer=`` or ``REPRO_TRACE=1``; see
  ``docs/observability.md``);
* :mod:`repro.analysis` — the project's own static analyzers (layering,
  race, span-discipline, hot-loop allocation and dataflow checkers) with
  SARIF output: ``python -m repro.analysis src/repro``.
"""

from .errors import (
    ConfigError,
    DatasetError,
    FormatError,
    PlanError,
    ReproError,
    ServeError,
    ShapeError,
)
from .matrix import CSR, COO
from .matrix.construct import (
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
    identity,
    random_csr,
)
from .matrix.stats import compression_ratio, matrix_stats
from .semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    get_semiring,
)
from .core import (
    ChainOptions,
    ChainPlan,
    KernelStats,
    MaskedSpgemmPlan,
    PlanCache,
    SpgemmOptions,
    SpgemmPlan,
    options_from_wire,
    available_algorithms,
    available_engines,
    inspect,
    inspect_masked,
    masked_spgemm,
    multiply_chain,
    plan_chain,
    recommend,
    rows_to_threads,
    spgemm,
)
from .observability import (
    Span,
    Tracer,
    json_trace,
    phase_breakdown,
    render_breakdown,
    render_tree,
    tracer_from_env,
)
from .autotune import (
    CalibrationProfile,
    active_profile,
    load_profile,
    recommend_calibrated,
    run_calibration,
    set_active_profile,
)
from .parallel import WorkerPool, parallel_spgemm
from .serve import Client, ServeOptions, Server, serve_in_thread, submit_job

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ConfigError",
    "DatasetError",
    "CSR",
    "COO",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "identity",
    "random_csr",
    "compression_ratio",
    "matrix_stats",
    "Semiring",
    "get_semiring",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "MAX_TIMES",
    "spgemm",
    "SpgemmOptions",
    "ChainOptions",
    "options_from_wire",
    "SpgemmPlan",
    "MaskedSpgemmPlan",
    "PlanCache",
    "PlanError",
    "inspect",
    "inspect_masked",
    "masked_spgemm",
    "multiply_chain",
    "plan_chain",
    "ChainPlan",
    "available_algorithms",
    "available_engines",
    "recommend",
    "recommend_calibrated",
    "CalibrationProfile",
    "run_calibration",
    "load_profile",
    "active_profile",
    "set_active_profile",
    "rows_to_threads",
    "KernelStats",
    "Tracer",
    "Span",
    "tracer_from_env",
    "json_trace",
    "render_tree",
    "render_breakdown",
    "phase_breakdown",
    "parallel_spgemm",
    "WorkerPool",
    "Server",
    "Client",
    "submit_job",
    "ServeOptions",
    "serve_in_thread",
    "ServeError",
    "__version__",
]
