"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``      print the algorithm registry (Table 1) and machine specs
``datasets``  list the SuiteSparse proxy suite (Table 2)
``multiply``  run a real SpGEMM on a generated or Matrix-Market input
``simulate``  price the same multiplication on the KNL/Haswell model
``recipe``    ask Table 4 which algorithm to use for an input
``calibrate`` measure this machine, write a repro-calibration/1 profile
``validate``  cross-check the performance model against the real kernels
``summa``     run the distributed 2-D Sparse SUMMA simulation
``serve``     run the multi-tenant SpGEMM server (repro-job/1 protocol)
``submit``    submit one job to a running server and print the outcome

Examples
--------
::

    python -m repro multiply --pattern g500 --scale 12 --algorithm hash --unsorted
    python -m repro simulate --pattern er --scale 14 --machine knl --threads 272
    python -m repro recipe --matrix path/to/matrix.mtx
    python -m repro datasets
    python -m repro serve --port 7070 --http-port 7071 --concurrency 4
    python -m repro submit --port 7070 --pattern er --scale 10 --algorithm hash

``multiply`` and ``submit`` build their kernel configuration through the
same ``repro-job/1`` wire parser the server uses
(:func:`repro.core.options.options_from_wire`), so a flag accepted here is
by construction a request the server accepts too.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .errors import ReproError

__all__ = ["main", "build_parser"]


def _load_input(args) -> "tuple":
    """Build (A, description) from --matrix / --dataset / --pattern."""
    if args.matrix:
        from .matrix.io import read_matrix_market

        m = read_matrix_market(args.matrix)
        return m, f"file {args.matrix}"
    if args.dataset:
        from .datasets import load_dataset

        m = load_dataset(args.dataset, max_n=args.max_n)
        return m, f"proxy dataset {args.dataset!r} (max_n={args.max_n})"
    from .rmat import er_matrix, g500_matrix

    gen = {"er": er_matrix, "g500": g500_matrix}[args.pattern]
    m = gen(args.scale, args.edge_factor, seed=args.seed)
    return m, f"{args.pattern.upper()} scale {args.scale}, edge factor {args.edge_factor}"


def _add_input_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--matrix", help="Matrix Market file to load")
    p.add_argument("--dataset", help="name of a Table-2 proxy dataset")
    p.add_argument("--max-n", type=int, default=20000, dest="max_n",
                   help="dimension cap for proxy datasets (default 20000)")
    p.add_argument("--pattern", choices=("er", "g500"), default="g500",
                   help="R-MAT pattern for generated inputs (default g500)")
    p.add_argument("--scale", type=int, default=12,
                   help="R-MAT scale: matrix is 2^scale square (default 12)")
    p.add_argument("--edge-factor", type=int, default=16, dest="edge_factor",
                   help="average nonzeros per row (default 16)")
    p.add_argument("--seed", type=int, default=0)


def cmd_info(args) -> int:
    from .core.spgemm import ALGORITHMS
    from .machine import HASWELL, KNL

    print(f"repro {__version__} — SpGEMM on KNL/multicore (Nagasaka et al., ICPP'18)")
    print("\nAlgorithms (Table 1 + extensions):")
    for info in ALGORITHMS.values():
        print("  " + info.table_row())
    print("\nModeled machines (Table 3):")
    for m in (KNL, HASWELL):
        print(
            f"  {m.name:8s} {m.cores} cores x {m.smt} SMT @ {m.clock_ghz} GHz, "
            f"{m.vector_bits}-bit SIMD, "
            f"DDR {m.mem.ddr_peak_bps / 1e9:.0f} GB/s"
            + (
                f", MCDRAM {m.mem.mcdram_peak_bps / 1e9:.0f} GB/s"
                if m.mem.mcdram_peak_bps > m.mem.ddr_peak_bps
                else ""
            )
        )
    return 0


def cmd_datasets(args) -> int:
    from .datasets import DATASETS

    print(f"{'name':<18s} {'kind':<8s} {'n (paper)':>12s} {'nnz/row':>8s} {'CR':>7s}")
    print("-" * 60)
    for spec in DATASETS.values():
        print(
            f"{spec.name:<18s} {spec.kind:<8s} {spec.paper_n:>12,d} "
            f"{spec.paper_nnz_per_row:>8.1f} {spec.paper_compression_ratio:>7.2f}"
        )
    return 0


def _wire_options(args) -> "dict":
    """CLI flags as a ``repro-job/1`` options payload (shared parser)."""
    return {
        "type": "spgemm",
        "algorithm": args.algorithm,
        "semiring": args.semiring,
        "sort_output": not args.unsorted,
        "nthreads": args.threads,
    }


def cmd_multiply(args) -> int:
    from .core import KernelStats, options_from_wire, spgemm

    a, desc = _load_input(args)
    print(f"input: {desc}: {a}")
    stats = KernelStats()
    options = options_from_wire(_wire_options(args)).replace(stats=stats)
    t0 = time.perf_counter()
    c = spgemm(a, a, options)
    dt = time.perf_counter() - t0
    print(f"C = A (x) A via {args.algorithm!r}: {c}")
    print(
        f"wall-clock {dt:.3f} s (CPython); flop={stats.flops:,}, "
        f"probes={stats.hash_probes + stats.vector_probes:,}, "
        f"heap ops={stats.heap_pushes + stats.heap_pops:,}, "
        f"sorted elements={stats.sorted_elements:,}"
    )
    return 0


def cmd_simulate(args) -> int:
    from .machine import HASWELL, KNL
    from .perfmodel import ProblemQuantities, SimConfig, simulate_spgemm

    a, desc = _load_input(args)
    machine = {"knl": KNL, "haswell": HASWELL}[args.machine]
    q = ProblemQuantities.compute(a, a)
    cfg = SimConfig(
        machine=machine,
        nthreads=args.threads,
        sort_output=not args.unsorted,
        memory_mode=args.memory_mode,
    )
    print(
        f"input: {desc}: flop={q.total_flop / 1e6:.2f}M, "
        f"nnz(C)={q.total_nnz_c / 1e6:.2f}M, CR={q.compression_ratio:.2f}"
    )
    print(
        f"simulating on {machine.name}, "
        f"{cfg.threads} threads, {cfg.memory_mode}, "
        f"{'unsorted' if args.unsorted else 'sorted'} output:"
    )
    algorithms = args.algorithm.split(",") if args.algorithm else [
        "hash", "hashvec", "heap", "mkl", "mkl_inspector", "kokkos",
    ]
    reports = [
        simulate_spgemm(alg, config=cfg, quantities=q) for alg in algorithms
    ]
    for r in sorted(reports, key=lambda r: r.seconds):
        print(f"  {r}")
    return 0


def cmd_validate(args) -> int:
    from .perfmodel import validate_counts

    a, desc = _load_input(args)
    print(f"input: {desc}")
    report = validate_counts(a, a, nthreads=args.threads)
    print(report.render())
    return 0 if report.ok else 1


def cmd_summa(args) -> int:
    from .distributed import sparse_summa

    a, desc = _load_input(args)
    print(f"input: {desc}: {a}")
    c, report = sparse_summa(a, a, args.grid, algorithm=args.algorithm)
    print(f"C = A (x) A on the grid: {c}")
    print(report.summary())
    per_rank = report.received / 1e6
    print(
        f"per-rank received: min {per_rank.min():.2f} MB, "
        f"mean {per_rank.mean():.2f} MB, max {per_rank.max():.2f} MB"
    )
    return 0


def cmd_recipe(args) -> int:
    from .core.recipe import recipe_table, recommend

    a, desc = _load_input(args)
    d = recommend(a, sort_output=not args.unsorted)
    print(f"input: {desc}")
    print(
        f"features: CR={d.compression_ratio:.2f}, edge factor={d.edge_factor:.1f}, "
        f"skew={d.skew:.1f}, output={'unsorted' if args.unsorted else 'sorted'}"
    )
    print(f"-> use algorithm {d.algorithm!r} ({d.reason})")
    if args.table:
        print()
        print(recipe_table())
    return 0


def cmd_calibrate(args) -> int:
    from .autotune import PROFILE_ENV_VAR, run_calibration
    from .perfmodel.cost import CALIBRATION_TERMS

    algorithms = None
    if args.algorithms:
        algorithms = tuple(
            name.strip() for name in args.algorithms.split(",") if name.strip()
        )
    machine = {"knl": "KNL", "haswell": "Haswell"}[args.machine]
    t0 = time.perf_counter()
    profile = run_calibration(
        scale=args.grid_scale,
        algorithms=algorithms,
        engine=args.engine,
        nthreads=args.threads,
        repeats=args.repeats,
        machine=machine,
        seed=args.seed,
    )
    elapsed = time.perf_counter() - t0
    profile.save(args.out)
    print(
        f"calibrated {len(profile.curves)} algorithm(s) on a "
        f"scale-{args.grid_scale} grid in {elapsed:.1f}s "
        f"(engine={args.engine}, threads={args.threads})"
    )
    header = "  ".join(f"{t:>13s}" for t in CALIBRATION_TERMS)
    print(f"{'algorithm':14s}{header}  {'rmse[ms]':>9s}")
    for name in sorted(profile.curves):
        curve = profile.curves[name]
        coefs = "  ".join(f"{c:13.3e}" for c in curve.coefficients)
        print(f"{name:14s}{coefs}  {curve.rmse_seconds * 1e3:9.3f}")
    print(f"profile written to {args.out}")
    print(f"activate with: export {PROFILE_ENV_VAR}={args.out}")
    return 0


def cmd_serve(args) -> int:
    from .serve import ServeOptions, serve_in_thread

    opts = ServeOptions(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        concurrency=args.concurrency,
        nworkers=args.nworkers,
        max_queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms,
        plan_cache_size=args.plan_cache_size,
    )
    handle = serve_in_thread(opts)
    endpoint = f"{handle.host}:{handle.port}"
    print(f"repro-serve listening on {endpoint} (repro-job/1)")
    if handle.http_port is not None:
        print(f"metrics: http://{handle.host}:{handle.http_port}/metrics")
    print("press Ctrl-C to drain and stop")
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("\ndraining...")
        clean = handle.stop()
        print("clean drain" if clean else "drain timed out; queued jobs failed")
        return 0 if clean else 1


def cmd_submit(args) -> int:
    import json

    from .core import options_from_wire
    from .serve import Client

    a, desc = _load_input(args)
    options = options_from_wire(_wire_options(args))
    print(f"input: {desc}: {a}")
    with Client(args.host, args.port, tenant=args.tenant) as cli:
        t0 = time.perf_counter()
        c = cli.spgemm(a, a, options, deadline_ms=args.deadline_ms)
        dt = time.perf_counter() - t0
        print(f"C = A (x) A served by {args.host}:{args.port}: {c}")
        print(f"round-trip {dt:.3f} s")
        if args.stats:
            print(json.dumps(cli.stats(), indent=2, default=str))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="algorithm registry and machine specs")
    sub.add_parser("datasets", help="list the Table-2 proxy suite")

    p_mul = sub.add_parser("multiply", help="run a real SpGEMM (A squared)")
    _add_input_args(p_mul)
    p_mul.add_argument("--algorithm", default="hash")
    p_mul.add_argument("--semiring", default="plus_times")
    p_mul.add_argument("--unsorted", action="store_true")
    p_mul.add_argument("--threads", type=int, default=1)

    p_sim = sub.add_parser("simulate", help="price A squared on the model")
    _add_input_args(p_sim)
    p_sim.add_argument("--machine", choices=("knl", "haswell"), default="knl")
    p_sim.add_argument("--threads", type=int, default=None)
    p_sim.add_argument("--unsorted", action="store_true")
    p_sim.add_argument("--memory-mode", dest="memory_mode", default="cache",
                       choices=("cache", "flat_ddr", "flat_mcdram"))
    p_sim.add_argument("--algorithm", default=None,
                       help="comma-separated list (default: the paper's set)")

    p_rec = sub.add_parser("recipe", help="apply the Table-4 recipe")
    _add_input_args(p_rec)
    p_rec.add_argument("--unsorted", action="store_true")
    p_rec.add_argument("--table", action="store_true",
                       help="also print the full Table 4")

    p_cal = sub.add_parser(
        "calibrate",
        help="measure this machine and write a repro-calibration/1 profile",
    )
    p_cal.add_argument("--out", required=True,
                       help="profile JSON path to write")
    p_cal.add_argument("--grid-scale", type=int, default=10,
                       dest="grid_scale",
                       help="calibration problems are ~2^scale rows "
                            "(default 10)")
    p_cal.add_argument("--engine", choices=("fast", "faithful"),
                       default="fast",
                       help="engine the profile is calibrated for "
                            "(default fast)")
    p_cal.add_argument("--threads", type=int, default=1)
    p_cal.add_argument("--repeats", type=int, default=2,
                       help="timed repetitions per grid point (default 2)")
    p_cal.add_argument("--machine", choices=("knl", "haswell"),
                       default="knl",
                       help="machine model the curves are expressed over")
    p_cal.add_argument("--algorithms", default=None,
                       help="comma-separated subset (default: all "
                            "candidates)")
    p_cal.add_argument("--seed", type=int, default=7)

    p_val = sub.add_parser(
        "validate", help="model-vs-kernel operation-count validation"
    )
    _add_input_args(p_val)
    p_val.add_argument("--threads", type=int, default=4)

    p_sum = sub.add_parser(
        "summa", help="distributed 2-D Sparse SUMMA simulation (A squared)"
    )
    _add_input_args(p_sum)
    p_sum.add_argument("--grid", type=int, default=2,
                       help="process grid dimension p (p*p ranks)")
    p_sum.add_argument("--algorithm", default="esc",
                       help="node-local kernel")

    p_srv = sub.add_parser(
        "serve", help="run the multi-tenant SpGEMM server"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7070)
    p_srv.add_argument("--http-port", type=int, default=None, dest="http_port",
                       help="metrics/health HTTP shim port (off by default)")
    p_srv.add_argument("--concurrency", type=int, default=2,
                       help="jobs computed simultaneously (default 2)")
    p_srv.add_argument("--nworkers", type=int, default=1,
                       help="worker processes; 1 = inline plan-cache path")
    p_srv.add_argument("--queue-depth", type=int, default=32,
                       dest="queue_depth",
                       help="admitted-but-unstarted jobs allowed (default 32)")
    p_srv.add_argument("--deadline-ms", type=int, default=30_000,
                       dest="deadline_ms",
                       help="default per-job deadline (default 30000)")
    p_srv.add_argument("--plan-cache-size", type=int, default=64,
                       dest="plan_cache_size")

    p_sub = sub.add_parser(
        "submit", help="submit one A-squared job to a running server"
    )
    _add_input_args(p_sub)
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=7070)
    p_sub.add_argument("--tenant", default="cli")
    p_sub.add_argument("--algorithm", default="hash")
    p_sub.add_argument("--semiring", default="plus_times")
    p_sub.add_argument("--unsorted", action="store_true")
    p_sub.add_argument("--threads", type=int, default=1)
    p_sub.add_argument("--deadline-ms", type=int, default=None,
                       dest="deadline_ms")
    p_sub.add_argument("--stats", action="store_true",
                       help="also print the server's metrics snapshot")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "datasets": cmd_datasets,
        "multiply": cmd_multiply,
        "simulate": cmd_simulate,
        "recipe": cmd_recipe,
        "calibrate": cmd_calibrate,
        "validate": cmd_validate,
        "summa": cmd_summa,
        "serve": cmd_serve,
        "submit": cmd_submit,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output piped into `head` etc.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
