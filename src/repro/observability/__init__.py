"""Unified phase-tracing observability layer.

One measurement spine for the whole package, replacing the scattered
ad-hoc timing the tentpole consolidates: kernels, the plan layer, the
process pool and the apps all report spans (phase-tagged timed scopes)
and counters through a :class:`Tracer`, and every consumer — the bench
harness, ``repro.profiling``, CI — reads the same exporters.

Enable with ``spgemm(..., tracer=Tracer())`` or the ``REPRO_TRACE``
environment variable (``json`` / ``tree`` / ``breakdown`` / ``on``);
see :mod:`repro.observability.tracer` and ``docs/observability.md``.
Disabled (the default) costs nothing: no span objects, no clock reads,
no per-row work of any kind.
"""

from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    reset_env_tracer,
    tracer_from_env,
)
from .export import (
    TRACE_SCHEMA_ID,
    json_trace,
    phase_breakdown,
    render_breakdown,
    render_tree,
    validate_trace_schema,
    write_json_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "tracer_from_env",
    "reset_env_tracer",
    "TRACE_SCHEMA_ID",
    "json_trace",
    "write_json_trace",
    "validate_trace_schema",
    "render_tree",
    "phase_breakdown",
    "render_breakdown",
]
