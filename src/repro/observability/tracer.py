"""Span/counter tracing — the phase-level measurement spine.

The paper's entire argument rests on *phase-level* data: Fig. 15 profiles
the symbolic/numeric/sort phases of every kernel, and §4.1/Fig. 2 price
scheduling and allocation overheads separately from compute.  This module
is the one place such measurements are produced: every executable kernel,
plan inspection/execution, pool worker and app opens :class:`Span` scopes
at its phase seams through a :class:`Tracer`, and the exporters in
:mod:`repro.observability.export` turn the span tree into a JSON trace, a
text tree, or a Fig.-15-style per-phase breakdown.

Design constraints, in order:

1. **Zero overhead when disabled.**  The disabled path is ``tracer is
   None`` — kernels hoist that test out of their row loops, so a run
   without a tracer executes *no* per-row tracing work at all (the CI
   guard ``test_noop_path_adds_no_per_row_work`` counts calls to prove
   it).  :data:`NULL_TRACER` exists for call sites that want an object
   unconditionally; its methods are constant-time no-ops returning shared
   singletons.
2. **Phase attribution is exclusive.**  A span's *exclusive* time is its
   duration minus its children's durations, so aggregating exclusive time
   by phase always sums to the root span's wall time — no phase is
   double-counted and nothing is lost, which is what makes the breakdown
   comparable to an untraced wall-clock measurement.
3. **Mergeable across processes.**  Spans serialize to plain dicts
   (:meth:`Span.to_dict` / :meth:`Span.from_dict`) so pool workers can
   trace locally and ship their subtrees back over IPC; the parent grafts
   them under its own span at the stitch.

Timing uses ``time.perf_counter`` exclusively — the monotonic form the
``determinism`` contract-linter rule sanctions for reported durations
(wall-clock ``time.time`` never appears here).
"""

from __future__ import annotations

import atexit
import os
import time
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "tracer_from_env",
    "reset_env_tracer",
]

#: Phase names with first-class meaning to the breakdown exporter.  Spans
#: may use other phases freely; these are the paper's vocabulary.
KNOWN_PHASES = (
    "symbolic", "numeric", "sort", "stitch", "mask",
    "partition", "pack", "unpack", "inspect", "execute", "other",
)


class Span:
    """One timed scope: name, phase, duration, counters, children.

    ``duration`` is inclusive (children overlap it); the breakdown
    exporter works with :meth:`exclusive_seconds`.  ``meta`` holds
    call-shape facts fixed at open time (algorithm, engine, nrows);
    ``counters`` holds quantities accumulated while the span was open
    (flop, nnz, KernelStats deltas).
    """

    __slots__ = ("name", "phase", "t0", "duration", "meta", "counters", "children")

    def __init__(self, name: str, phase: "str | None" = None, **meta: Any) -> None:
        self.name = name
        self.phase = phase if phase is not None else name
        self.t0 = 0.0
        self.duration = 0.0
        self.meta = meta
        self.counters: "dict[str, float]" = {}
        self.children: "list[Span]" = []

    def exclusive_seconds(self) -> float:
        """Duration minus children's durations (never below zero)."""
        overlap = sum(c.duration for c in self.children)
        return max(self.duration - overlap, 0.0)

    def add_counter(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Plain-dict form (JSON- and pickle-safe)."""
        return {
            "name": self.name,
            "phase": self.phase,
            "seconds": self.duration,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(str(payload["name"]), str(payload["phase"]))
        span.duration = float(payload.get("seconds", 0.0))
        span.meta = dict(payload.get("meta", {}))
        span.counters = dict(payload.get("counters", {}))
        span.children = [cls.from_dict(c) for c in payload.get("children", [])]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, phase={self.phase!r}, "
            f"seconds={self.duration:.6f}, children={len(self.children)})"
        )


class _SpanScope:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Collects a forest of :class:`Span` trees for one process.

    Not thread-safe by design: a tracer belongs to one simulated-thread
    context (each pool worker builds its own and ships spans back).
    """

    __slots__ = ("spans", "_stack")

    #: Class-level so the disabled check ``tracer.enabled`` costs one
    #: attribute load on either tracer type.
    enabled = True

    def __init__(self) -> None:
        self.spans: "list[Span]" = []
        self._stack: "list[Span]" = []

    # -- collection --------------------------------------------------------

    def span(self, name: str, phase: "str | None" = None, **meta: Any) -> _SpanScope:
        """``with tracer.span("numeric", phase="numeric"):`` timed scope."""
        return _SpanScope(self, Span(name, phase, **meta))

    def record(
        self, name: str, seconds: float, phase: "str | None" = None, **meta: Any
    ) -> Span:
        """Attach a pre-measured span (e.g. an accumulated per-row total).

        Kernels that time a sub-phase with a plain accumulator (the per-row
        output sort, say) report the total through here, so it shows up in
        the tree and the breakdown like any scoped span.
        """
        span = Span(name, phase, **meta)
        span.duration = float(seconds)
        self._attach(span)
        return span

    def counter(self, name: str, value: float) -> None:
        """Accumulate a named quantity on the innermost open span."""
        if self._stack:
            self._stack[-1].add_counter(name, value)
        else:
            root = Span("counters", "other")
            root.add_counter(name, value)
            self.spans.append(root)

    def graft(self, payload: dict, name: "str | None" = None) -> Span:
        """Merge a serialized span tree (``Span.to_dict``) as a child of
        the current span — how pool workers' traces land in the parent."""
        span = Span.from_dict(payload)
        if name is not None:
            span.name = name
        self._attach(span)
        return span

    # -- accessors ---------------------------------------------------------

    @property
    def current(self) -> "Span | None":
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self.spans = []
        self._stack = []

    def total_seconds(self) -> float:
        return sum(s.duration for s in self.spans)

    # -- internals ---------------------------------------------------------

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)

    def _push(self, span: Span) -> None:
        self._attach(span)
        self._stack.append(span)
        span.t0 = time.perf_counter()

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.t0
        # Tolerate exception-driven unwinding skipping inner pops.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()


class _NullScope:
    """Shared do-nothing context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The disabled path: every method is a constant-time no-op.

    Kernels should prefer ``tracer is None`` checks hoisted out of hot
    loops; this object exists for call sites that want to call
    unconditionally (apps, benches).
    """

    __slots__ = ()

    enabled = False
    spans: "tuple[Span, ...]" = ()
    current = None

    def span(self, name: str, phase: "str | None" = None, **meta: Any) -> _NullScope:
        return _NULL_SCOPE

    def record(self, name: str, seconds: float, phase=None, **meta: Any) -> None:
        return None

    def counter(self, name: str, value: float) -> None:
        return None

    def graft(self, payload: dict, name=None) -> None:
        return None

    def clear(self) -> None:
        return None

    def total_seconds(self) -> float:
        return 0.0


#: Process-wide disabled tracer.
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# environment activation (REPRO_TRACE / REPRO_TRACE_FILE)
# ---------------------------------------------------------------------------

#: Accepted REPRO_TRACE values and what happens at process exit.
ENV_MODES = ("json", "tree", "breakdown", "1", "on")

_env_tracer: "Tracer | None" = None
_env_mode: "str | None" = None
_atexit_registered = False


def _export_env_tracer() -> None:  # pragma: no cover - exercised via subprocess
    if _env_tracer is None or not _env_tracer.spans:
        return
    from .export import render_breakdown, render_tree, write_json_trace

    if _env_mode == "json":
        path = os.environ.get("REPRO_TRACE_FILE", "repro-trace.json")
        write_json_trace(_env_tracer, path)
    elif _env_mode == "tree":
        print(render_tree(_env_tracer))
    elif _env_mode == "breakdown":
        from .export import phase_breakdown

        print(render_breakdown("phase breakdown", phase_breakdown(_env_tracer)))
    # "1"/"on": collect only; callers read tracer_from_env() themselves.


def tracer_from_env() -> "Tracer | None":
    """The process-wide tracer selected by ``REPRO_TRACE``, or ``None``.

    Read per call (two dict probes, like ``REPRO_DEBUG_VALIDATE``) so tests
    and debugging sessions can toggle tracing without restarting.  Modes:

    * ``json`` — write a JSON trace to ``REPRO_TRACE_FILE`` (default
      ``repro-trace.json``) at process exit;
    * ``tree`` — print the span tree at process exit;
    * ``breakdown`` — print the per-phase breakdown at process exit;
    * ``1`` / ``on`` — collect only (the caller exports).

    Unknown values raise :class:`~repro.errors.ConfigError` — a silently
    ignored typo would read as "no overhead and no data", the worst
    failure mode an observability layer can have.
    """
    mode = os.environ.get("REPRO_TRACE", "").strip().lower()
    if not mode:
        return None
    if mode not in ENV_MODES:
        from ..errors import invalid_choice

        raise invalid_choice("REPRO_TRACE mode", mode, list(ENV_MODES))
    global _env_tracer, _env_mode, _atexit_registered
    if _env_tracer is None or _env_mode != mode:
        _env_tracer = Tracer()
        _env_mode = mode
        if not _atexit_registered:
            atexit.register(_export_env_tracer)
            _atexit_registered = True
    return _env_tracer


def reset_env_tracer() -> None:
    """Drop the env-selected tracer (tests use this between cases)."""
    global _env_tracer, _env_mode
    _env_tracer = None
    _env_mode = None
