"""Exporters for the tracing layer: JSON trace, text tree, phase breakdown.

Three consumers, three formats:

* :func:`json_trace` / :func:`write_json_trace` — a machine-readable
  record (schema below) for CI artifacts and cross-PR comparison;
* :func:`render_tree` — a human-readable span tree for terminals;
* :func:`phase_breakdown` / :func:`render_breakdown` — the Fig.-15-style
  per-phase table (symbolic/numeric/sort/...) aggregated over *exclusive*
  span times, so each group's phases sum exactly to its roots' wall time.
  ``repro.profiling`` re-exports the renderer and the bench harness
  records breakdowns instead of private ad-hoc timing.

JSON trace schema (validated by :func:`validate_trace_schema`)::

    {
      "schema": "repro-trace/1",
      "total_seconds": float,
      "spans": [            # recursive span objects
        {
          "name": str,
          "phase": str,
          "seconds": float,
          "meta": {str: scalar},
          "counters": {str: number},
          "children": [span, ...]
        }, ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import FormatError
from .tracer import Span, Tracer

__all__ = [
    "TRACE_SCHEMA_ID",
    "json_trace",
    "write_json_trace",
    "validate_trace_schema",
    "render_tree",
    "phase_breakdown",
    "render_breakdown",
]

TRACE_SCHEMA_ID = "repro-trace/1"

#: Column order of the breakdown table (extra phases append alphabetically).
PHASE_ORDER = (
    "symbolic", "numeric", "sort", "stitch",
    "partition", "pack", "unpack", "inspect", "execute",
)


def _spans_of(trace: "Tracer | list[Span]") -> "list[Span]":
    if isinstance(trace, Tracer):
        return list(trace.spans)
    return list(trace)


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------

def json_trace(trace: "Tracer | list[Span]") -> dict:
    """The trace as a schema-tagged plain dict (see module docstring)."""
    spans = _spans_of(trace)
    return {
        "schema": TRACE_SCHEMA_ID,
        "total_seconds": sum(s.duration for s in spans),
        "spans": [s.to_dict() for s in spans],
    }


def write_json_trace(trace: "Tracer | list[Span]", path: str) -> str:
    """Serialize the trace to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(json_trace(trace), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _validate_span_obj(obj: Any, where: str) -> None:
    if not isinstance(obj, dict):
        raise FormatError(f"{where}: span must be an object, got {type(obj).__name__}")
    for key, types in (
        ("name", str), ("phase", str), ("seconds", (int, float)),
        ("meta", dict), ("counters", dict), ("children", list),
    ):
        if key not in obj:
            raise FormatError(f"{where}: span missing key {key!r}")
        if not isinstance(obj[key], types):
            raise FormatError(
                f"{where}.{key}: expected {types}, got {type(obj[key]).__name__}"
            )
    if obj["seconds"] < 0:
        raise FormatError(f"{where}.seconds: negative duration {obj['seconds']}")
    for cname, cval in obj["counters"].items():
        if not isinstance(cval, (int, float)):
            raise FormatError(
                f"{where}.counters[{cname!r}]: expected number, "
                f"got {type(cval).__name__}"
            )
    for i, child in enumerate(obj["children"]):
        _validate_span_obj(child, f"{where}.children[{i}]")


def validate_trace_schema(payload: "dict | str") -> dict:
    """Check a JSON trace against the ``repro-trace/1`` schema.

    Accepts the dict or its JSON text; returns the dict on success and
    raises :class:`~repro.errors.FormatError` naming the offending field
    otherwise.  The CI smoke step runs a traced product, exports, and
    feeds the file through here.
    """
    obj = json.loads(payload) if isinstance(payload, str) else payload
    if not isinstance(obj, dict):
        raise FormatError(f"trace must be an object, got {type(obj).__name__}")
    if obj.get("schema") != TRACE_SCHEMA_ID:
        raise FormatError(
            f"unknown trace schema {obj.get('schema')!r}; expected {TRACE_SCHEMA_ID!r}"
        )
    if not isinstance(obj.get("total_seconds"), (int, float)):
        raise FormatError("total_seconds must be a number")
    if not isinstance(obj.get("spans"), list):
        raise FormatError("spans must be a list")
    for i, span in enumerate(obj["spans"]):
        _validate_span_obj(span, f"spans[{i}]")
    return obj


# ---------------------------------------------------------------------------
# text tree
# ---------------------------------------------------------------------------

def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.1f}µs"


def _render_span(span: Span, depth: int, lines: "list[str]") -> None:
    meta = ", ".join(f"{k}={v}" for k, v in span.meta.items())
    counters = ", ".join(
        f"{k}={int(v) if float(v).is_integer() else v}"
        for k, v in sorted(span.counters.items())
    )
    note = "  [" + "; ".join(x for x in (meta, counters) if x) + "]" if (meta or counters) else ""
    lines.append(
        f"{_fmt_seconds(span.duration)}  {'  ' * depth}{span.name}"
        f" ({span.phase}){note}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_tree(trace: "Tracer | list[Span]") -> str:
    """Indented span tree with durations, meta and counters."""
    spans = _spans_of(trace)
    if not spans:
        return "(empty trace)"
    lines: "list[str]" = []
    for span in spans:
        _render_span(span, 0, lines)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig.-15-style phase breakdown
# ---------------------------------------------------------------------------

def phase_breakdown(
    trace: "Tracer | list[Span]",
    group_by: str = "algorithm",
) -> "dict[str, dict[str, float]]":
    """Aggregate exclusive span seconds by phase, per group.

    Each *root* span forms (or joins) a group named by its ``meta[group_by]``
    (falling back to the span name), and every span in its subtree
    contributes its **exclusive** time to the group's entry for its phase.
    Because exclusive times partition the root's duration exactly::

        sum(breakdown[g].values()) == sum of g's root durations

    — the invariant that lets the bench harness compare a breakdown
    directly against an untraced wall-clock measurement (the acceptance
    bar: within 5%).
    """
    out: "dict[str, dict[str, float]]" = {}
    for root in _spans_of(trace):
        group = str(root.meta.get(group_by, root.name))
        phases = out.setdefault(group, {})
        for span in root.walk():
            phases[span.phase] = phases.get(span.phase, 0.0) + span.exclusive_seconds()
    return out


def _phase_columns(breakdown: "dict[str, dict[str, float]]") -> "list[str]":
    seen = {p for phases in breakdown.values() for p in phases}
    ordered = [p for p in PHASE_ORDER if p in seen]
    ordered += sorted(seen - set(ordered))
    return ordered


def render_breakdown(title: str, breakdown: "dict[str, dict[str, float]]") -> str:
    """Fig.-15-style table: one row per group, one column per phase.

    Times are milliseconds; the trailing column is the row total, so the
    per-phase decomposition and the wall time are read together.
    """
    cols = _phase_columns(breakdown)
    lines = [title, ""]
    header = f"{'group':<22s}" + "".join(f"{c:>12s}" for c in cols) + f"{'total':>12s}"
    lines.append(header)
    lines.append("-" * len(header))
    for group in sorted(breakdown):
        phases = breakdown[group]
        total = sum(phases.values())
        row = f"{group:<22s}" + "".join(
            f"{phases.get(c, 0.0) * 1e3:>10.3f}ms" for c in cols
        )
        lines.append(row + f"{total * 1e3:>10.3f}ms")
    return "\n".join(lines)
