"""Sparse SUMMA over a simulated 2-D grid, with exact communication counts.

At stage ``k`` of the schedule (k = 0..p-1):

* the owners of block column ``k`` of A broadcast their block along their
  grid **row** (p-1 receivers each);
* the owners of block row ``k`` of B broadcast along their grid **column**;
* every rank (i, j) computes ``A_ik (x) B_kj`` with a node-local kernel —
  the paper's contribution slots in exactly here — and semiring-adds it
  into its local ``C_ij``.

The simulation executes this schedule faithfully in one process, so the
result is exact and the byte/flop ledgers are measurements, not estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..matrix.ops import add as ewise_add
from ..matrix.stats import total_flop
from ..semiring import PLUS_TIMES, Semiring, get_semiring
from .grid import BlockDistribution, ProcessGrid, distribute

__all__ = ["CommReport", "sparse_summa"]

#: wire bytes of one stored entry, derived from the canonical contract so
#: the modeled communication volume tracks matrix/csr.py.
ENTRY_BYTES = int(np.dtype(INDEX_DTYPE).itemsize) + int(np.dtype(VALUE_DTYPE).itemsize)


@dataclass
class CommReport:
    """Measured communication and work ledger of one SUMMA run."""

    grid: ProcessGrid
    #: bytes each rank sent (broadcasts it originated)
    sent: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: bytes each rank received
    received: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: scalar multiplications each rank performed
    local_flop: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def total_comm_bytes(self) -> float:
        return float(self.received.sum())

    @property
    def max_rank_comm_bytes(self) -> float:
        return float((self.sent + self.received).max())

    @property
    def flop_imbalance(self) -> float:
        """Max over mean local flop (1.0 = perfectly balanced)."""
        mean = self.local_flop.mean()
        return float(self.local_flop.max() / mean) if mean > 0 else 1.0

    def summary(self) -> str:
        return (
            f"SUMMA on {self.grid.p}x{self.grid.p}: "
            f"comm {self.total_comm_bytes / 1e6:.2f} MB total, "
            f"max-rank {self.max_rank_comm_bytes / 1e6:.2f} MB, "
            f"flop imbalance {self.flop_imbalance:.2f}x"
        )


def sparse_summa(
    a: CSR,
    b: CSR,
    grid: "ProcessGrid | int",
    *,
    algorithm: str = "hash",
    semiring: "str | Semiring" = PLUS_TIMES,
) -> "tuple[CSR, CommReport]":
    """Multiply ``a @ b`` with the Sparse SUMMA schedule on a ``p x p`` grid.

    Returns ``(C, report)`` where C is the exact assembled product and the
    report holds per-rank communication bytes and local flop counts.
    """
    if isinstance(grid, int):
        grid = ProcessGrid(grid)
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    sr = get_semiring(semiring)
    p = grid.p
    da = distribute(a, grid)
    db = distribute(b, grid)
    if not np.array_equal(da.col_splits, db.row_splits):
        raise ConfigError("inner-dimension splits of A and B must agree")

    sent = np.zeros(grid.nranks)
    received = np.zeros(grid.nranks)
    local_flop = np.zeros(grid.nranks)
    c_blocks: "list[list[CSR | None]]" = [
        [None for _ in range(p)] for _ in range(p)
    ]

    for k in range(p):
        # broadcast A[:, k] along grid rows
        a_stage = [da.block(i, k) for i in range(p)]
        for i in range(p):
            nbytes = da.block_nbytes(i, k, ENTRY_BYTES)
            owner = grid.rank_of(i, k)
            for j in range(p):
                if j != k:
                    sent[owner] += nbytes
                    received[grid.rank_of(i, j)] += nbytes
        # broadcast B[k, :] along grid columns
        b_stage = [db.block(k, j) for j in range(p)]
        for j in range(p):
            nbytes = db.block_nbytes(k, j, ENTRY_BYTES)
            owner = grid.rank_of(k, j)
            for i in range(p):
                if i != k:
                    sent[owner] += nbytes
                    received[grid.rank_of(i, j)] += nbytes
        # local multiplies
        for i in range(p):
            for j in range(p):
                ab, bb = a_stage[i], b_stage[j]
                rank = grid.rank_of(i, j)
                if ab.nnz == 0 or bb.nnz == 0:
                    continue
                local_flop[rank] += total_flop(ab, bb)
                partial = spgemm(ab, bb, algorithm=algorithm, semiring=sr)
                if partial.nnz == 0:
                    continue
                if c_blocks[i][j] is None:
                    c_blocks[i][j] = partial
                else:
                    c_blocks[i][j] = ewise_add(c_blocks[i][j], partial, sr)

    # assemble the distributed C
    out_dist = BlockDistribution(
        grid=grid,
        nrows=a.nrows,
        ncols=b.ncols,
        row_splits=da.row_splits,
        col_splits=db.col_splits,
        blocks=[
            [
                c_blocks[i][j]
                if c_blocks[i][j] is not None
                else CSR(
                    (
                        int(da.row_splits[i + 1] - da.row_splits[i]),
                        int(db.col_splits[j + 1] - db.col_splits[j]),
                    ),
                    np.zeros(
                        int(da.row_splits[i + 1] - da.row_splits[i]) + 1,
                        dtype=INDPTR_DTYPE,
                    ),
                    np.empty(0, dtype=INDEX_DTYPE),
                    np.empty(0),
                    sorted_rows=True,
                )
                for j in range(p)
            ]
            for i in range(p)
        ],
    )
    report = CommReport(
        grid=grid, sent=sent, received=received, local_flop=local_flop
    )
    return out_dist.assemble(), report
