"""Distributed-memory SpGEMM simulation (2-D Sparse SUMMA).

The paper's kernels are the *node-level* engines of distributed SpGEMM —
its authors' Combinatorial BLAS distributes matrices over a 2-D process
grid and runs Sparse SUMMA, with a node-local multiply (heap-based in [3],
later these hash kernels) per stage.  This package completes that picture
in simulated form:

* :mod:`repro.distributed.grid` — 2-D block distribution of a CSR matrix
  over a ``p x p`` process grid;
* :mod:`repro.distributed.summa` — the Sparse SUMMA schedule: at stage k
  the k-th block column of A is broadcast along grid rows and the k-th
  block row of B along grid columns, every rank multiplies locally with
  any registered kernel, and stage results merge semiring-additively.

The execution is *sequentially simulated* (one Python process walks the
schedule), but the data movement is real: per-rank sent/received bytes,
per-rank local flop, and the resulting imbalance are measured exactly, and
the assembled result is verified against the single-node product in tests.
"""

from .grid import BlockDistribution, ProcessGrid, distribute
from .summa import CommReport, sparse_summa

__all__ = [
    "ProcessGrid",
    "BlockDistribution",
    "distribute",
    "sparse_summa",
    "CommReport",
]
