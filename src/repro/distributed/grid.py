"""2-D block distribution of sparse matrices over a process grid."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE

__all__ = ["ProcessGrid", "BlockDistribution", "distribute"]

#: wire bytes of one (column index, value) entry and one row pointer,
#: derived from the canonical contract dtypes.
ENTRY_BYTES = int(np.dtype(INDEX_DTYPE).itemsize) + int(np.dtype(VALUE_DTYPE).itemsize)
INDPTR_BYTES = int(np.dtype(INDPTR_DTYPE).itemsize)


@dataclass(frozen=True)
class ProcessGrid:
    """A square ``p x p`` grid of simulated ranks (CombBLAS-style)."""

    p: int

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ConfigError(f"grid dimension must be >= 1, got {self.p}")

    @property
    def nranks(self) -> int:
        return self.p * self.p

    def rank_of(self, i: int, j: int) -> int:
        return i * self.p + j

    def coords_of(self, rank: int) -> "tuple[int, int]":
        return divmod(rank, self.p)

    def row_ranks(self, i: int) -> "list[int]":
        """Ranks in grid row ``i`` (a broadcast group for A blocks)."""
        return [self.rank_of(i, j) for j in range(self.p)]

    def col_ranks(self, j: int) -> "list[int]":
        """Ranks in grid column ``j`` (a broadcast group for B blocks)."""
        return [self.rank_of(i, j) for i in range(self.p)]


def _splits(n: int, p: int) -> np.ndarray:
    """Near-equal boundary offsets: p+1 entries from 0 to n."""
    return np.linspace(0, n, p + 1).astype(np.int64)


@dataclass
class BlockDistribution:
    """A CSR matrix cut into ``p x p`` blocks.

    ``blocks[i][j]`` is the sub-matrix of rows ``row_splits[i]:row_splits[i+1]``
    and columns ``col_splits[j]:col_splits[j+1]``, with *local* (rebased)
    indices — exactly what each rank of the grid would own.
    """

    grid: ProcessGrid
    nrows: int
    ncols: int
    row_splits: np.ndarray
    col_splits: np.ndarray
    blocks: "list[list[CSR]]"

    def block(self, i: int, j: int) -> CSR:
        return self.blocks[i][j]

    def block_nbytes(self, i: int, j: int, entry_bytes: int = ENTRY_BYTES) -> int:
        """Wire size of one block (entries + local row pointers)."""
        b = self.blocks[i][j]
        return b.nnz * entry_bytes + (b.nrows + 1) * INDPTR_BYTES

    def assemble(self) -> CSR:
        """Reassemble the global matrix (inverse of :func:`distribute`)."""
        from ..matrix.coo import COO

        rows_parts, cols_parts, vals_parts = [], [], []
        p = self.grid.p
        for i in range(p):
            for j in range(p):
                b = self.blocks[i][j]
                if b.nnz == 0:
                    continue
                r, c, v = b.to_coo()
                rows_parts.append(r + self.row_splits[i])
                cols_parts.append(c + self.col_splits[j])
                vals_parts.append(v)
        if not rows_parts:
            return CSR(
                (self.nrows, self.ncols),
                np.zeros(self.nrows + 1, dtype=INDPTR_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0),
                sorted_rows=True,
            )
        return COO(
            self.nrows,
            self.ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        ).to_csr()


def distribute(a: CSR, grid: ProcessGrid) -> BlockDistribution:
    """Cut ``a`` into the grid's 2-D blocks (vectorized single pass)."""
    p = grid.p
    row_splits = _splits(a.nrows, p)
    col_splits = _splits(a.ncols, p)
    rows = np.repeat(np.arange(a.nrows), a.row_nnz())
    cols = a.indices
    bi = np.searchsorted(row_splits, rows, side="right") - 1
    bj = np.searchsorted(col_splits, cols, side="right") - 1
    order = np.lexsort((cols, rows, bj, bi))
    sbi, sbj = bi[order], bj[order]
    srows, scols, svals = rows[order], cols[order], a.data[order]
    blocks: "list[list[CSR]]" = []
    key = sbi * p + sbj
    boundaries = np.searchsorted(key, np.arange(p * p + 1))
    for i in range(p):
        row_of_blocks = []
        local_rows = int(row_splits[i + 1] - row_splits[i])
        for j in range(p):
            lo, hi = boundaries[i * p + j], boundaries[i * p + j + 1]
            r = srows[lo:hi] - row_splits[i]
            c = scols[lo:hi] - col_splits[j]
            counts = np.bincount(r, minlength=local_rows)
            indptr = np.zeros(local_rows + 1, dtype=INDPTR_DTYPE)
            np.cumsum(counts, out=indptr[1:])
            local_cols = int(col_splits[j + 1] - col_splits[j])
            row_of_blocks.append(
                CSR((local_rows, local_cols), indptr, c, svals[lo:hi],
                    sorted_rows=True)
            )
        blocks.append(row_of_blocks)
    return BlockDistribution(
        grid=grid,
        nrows=a.nrows,
        ncols=a.ncols,
        row_splits=row_splits,
        col_splits=col_splits,
        blocks=blocks,
    )
