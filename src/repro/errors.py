"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between shape problems, malformed sparse structures and
invalid configuration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ConfigError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Operand dimensions are incompatible (e.g. inner dimensions differ)."""


class FormatError(ReproError, ValueError):
    """A sparse matrix violates a structural invariant of its format.

    Examples: a CSR ``indptr`` that is not monotonically non-decreasing,
    column indices outside ``[0, ncols)``, or array dtypes/lengths that do
    not agree with each other.
    """


class ConfigError(ReproError, ValueError):
    """An invalid parameter was supplied (unknown algorithm, bad thread
    count, unsupported semiring for a kernel, ...)."""


class DatasetError(ReproError, ValueError):
    """A dataset name is unknown or a generator received invalid options."""
