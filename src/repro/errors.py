"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between shape problems, malformed sparse structures and
invalid configuration.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "FormatError",
    "ConfigError",
    "DatasetError",
    "PlanError",
    "SanitizerError",
    "ServeError",
    "invalid_choice",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Operand dimensions are incompatible (e.g. inner dimensions differ)."""


class FormatError(ReproError, ValueError):
    """A sparse matrix violates a structural invariant of its format.

    Examples: a CSR ``indptr`` that is not monotonically non-decreasing,
    column indices outside ``[0, ncols)``, or array dtypes/lengths that do
    not agree with each other.
    """


class ConfigError(ReproError, ValueError):
    """An invalid parameter was supplied (unknown algorithm, bad thread
    count, unsupported semiring for a kernel, ...)."""


class DatasetError(ReproError, ValueError):
    """A dataset name is unknown or a generator received invalid options."""


class PlanError(ReproError, ValueError):
    """An inspector–executor plan was applied to incompatible operands.

    Raised by :meth:`repro.core.plan.SpgemmPlan.execute` when the operands'
    sparsity structure (shape / ``indptr`` / ``indices``) does not match the
    structure the plan was inspected on — always *before* any numeric work
    touches the cached structure.
    """


class SanitizerError(ReproError, RuntimeError):
    """The shm sanitizer (``REPRO_SANITIZE=shm``) observed a violation of
    the pool's write-ownership model: an operand segment mutated under the
    workers, overlapping or out-of-claim output writes, or a leaked
    segment.  Raised at pool teardown, after the violation report has been
    written (see :mod:`repro.parallel.sanitizer`)."""


class ServeError(ReproError, RuntimeError):
    """A request to the :mod:`repro.serve` server failed server-side.

    Carries the wire-level error ``code`` (``"bad-request"``,
    ``"queue-full"``, ``"deadline-exceeded"``, ``"draining"``,
    ``"internal"``) so clients can branch on the failure class without
    parsing the message text.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def invalid_choice(kind: str, got: object, choices) -> ConfigError:
    """Build the canonical :class:`ConfigError` for an enumerated parameter.

    Every "pick one of these" parameter (``algorithm``, ``engine``,
    ``vector_bits``, ...) raises through this helper so the message shape is
    uniform across kernels: ``unknown <kind> <got>; valid choices: [...]``.
    """
    return ConfigError(f"unknown {kind} {got!r}; valid choices: {list(choices)}")
