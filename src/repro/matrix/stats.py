"""Matrix statistics used throughout the paper's evaluation.

Table 2 characterizes each input by ``n``, ``nnz(A)``, ``flop(A^2)`` and
``nnz(A^2)``; Figures 14/15/17 sort matrices by *compression ratio*
``flop / nnz(C)`` — "flop / number of non-zero elements of output" (§5.4.4).
This module computes all of them, vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .csr import CSR

__all__ = [
    "flop_per_row",
    "total_flop",
    "MatrixStats",
    "matrix_stats",
    "compression_ratio",
    "row_skew",
]


def flop_per_row(a: CSR, b: CSR) -> np.ndarray:
    """Number of scalar multiplications per output row of ``a @ b``.

    ``flop(c_i*) = sum over a_ik of nnz(b_k*)`` — the quantity the paper's
    ``RowsToThreads`` computes in its first phase (Fig. 6, lines 2-6).
    Vectorized via a cumulative sum sampled at row boundaries, which is safe
    for empty rows (unlike ``ufunc.reduceat``).
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    contrib = np.diff(b.indptr)[a.indices]
    csum = np.concatenate([[0], np.cumsum(contrib)])
    return csum[a.indptr[1:]] - csum[a.indptr[:-1]]


def total_flop(a: CSR, b: CSR) -> int:
    """Total multiplication count of ``a @ b`` (the paper's ``flop``)."""
    return int(flop_per_row(a, b).sum())


def row_skew(a: CSR) -> float:
    """Max-over-mean row nnz: 1.0 for perfectly uniform rows, large for
    power-law (G500-like) matrices.  Used by the recipe to classify inputs
    as "uniform" vs "skewed" (Table 4b)."""
    nnz = a.row_nnz()
    mean = nnz.mean() if a.nrows else 0.0
    return float(nnz.max() / mean) if mean > 0 else 1.0


@dataclass(frozen=True)
class MatrixStats:
    """The Table-2 row for a multiplication ``C = A B``.

    Attributes mirror the paper's columns (in raw counts, not millions),
    plus derived quantities used by the figures and the recipe.
    """

    name: str
    n: int
    nnz_a: int
    nnz_b: int
    flop: int
    nnz_c: int

    @property
    def compression_ratio(self) -> float:
        """``flop / nnz(C)`` — x-axis of Figures 14 and 17."""
        return self.flop / self.nnz_c if self.nnz_c else 0.0

    @property
    def edge_factor(self) -> float:
        """Average nonzeros per row of A (the generator's ``edge factor``)."""
        return self.nnz_a / self.n if self.n else 0.0

    def table_row(self, *, millions: bool = True) -> str:
        """Format like Table 2 (counts in millions when ``millions``)."""
        if millions:
            s = 1e-6
            return (
                f"{self.name:<22s} {self.n * s:>8.3f} {self.nnz_a * s:>10.2f} "
                f"{self.flop * s:>12.2f} {self.nnz_c * s:>10.2f}"
            )
        return (
            f"{self.name:<22s} {self.n:>10d} {self.nnz_a:>12d} "
            f"{self.flop:>14d} {self.nnz_c:>12d}"
        )


def matrix_stats(name: str, a: CSR, b: CSR | None = None, *, nnz_c: int | None = None) -> MatrixStats:
    """Compute the Table-2 statistics for ``C = A B`` (default ``B = A``).

    ``nnz_c`` may be supplied when already known; otherwise it is computed
    with the vectorized symbolic kernel (:func:`repro.core.symbolic.symbolic_nnz`).
    """
    if b is None:
        b = a
    if nnz_c is None:
        from ..core.symbolic import symbolic_row_nnz

        nnz_c = int(symbolic_row_nnz(a, b).sum())
    return MatrixStats(
        name=name,
        n=a.nrows,
        nnz_a=a.nnz,
        nnz_b=b.nnz,
        flop=total_flop(a, b),
        nnz_c=nnz_c,
    )


def compression_ratio(a: CSR, b: CSR | None = None) -> float:
    """``flop / nnz(C)`` for the product ``a @ b`` (default: squaring)."""
    return matrix_stats("", a, b).compression_ratio
