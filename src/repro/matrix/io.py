"""Matrix Market I/O.

The paper's real-matrix suite comes from the SuiteSparse collection, which is
distributed in Matrix Market (``.mtx``) format.  We cannot download the
collection here (no network), but downstream users can: this module gives
them a loader that produces :class:`~repro.matrix.csr.CSR` directly, plus a
writer so generated proxy datasets can be persisted and shared.

Supported features: ``matrix coordinate`` with ``real``/``integer``/
``pattern`` fields and ``general``/``symmetric``/``skew-symmetric`` symmetry.
``array`` (dense) and ``complex`` are intentionally rejected with clear
errors — SpGEMM inputs in this domain are sparse and real.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from ..errors import FormatError
from ..semiring import PLUS_TIMES
from .coo import COO
from .csr import CSR

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "save_npz",
    "load_npz",
]


def save_npz(matrix: CSR, path: "str | Path") -> None:
    """Persist a CSR matrix as a compressed ``.npz`` (fast native format).

    Matrix Market is the interchange format; ``.npz`` is the working format
    for large generated inputs (orders of magnitude faster to load, and it
    preserves the sortedness flag).
    """
    import numpy as _np

    _np.savez_compressed(
        path,
        shape=_np.asarray(matrix.shape, dtype=_np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
        sorted_rows=_np.asarray([matrix.sorted_rows]),
    )


def load_npz(path: "str | Path") -> CSR:
    """Load a CSR matrix saved by :func:`save_npz`."""
    import numpy as _np

    with _np.load(path) as archive:
        required = {"shape", "indptr", "indices", "data", "sorted_rows"}
        missing = required - set(archive.files)
        if missing:
            raise FormatError(
                f"{path}: not a repro CSR archive (missing {sorted(missing)})"
            )
        return CSR(
            tuple(int(x) for x in archive["shape"]),
            archive["indptr"],
            archive["indices"],
            archive["data"],
            sorted_rows=bool(archive["sorted_rows"][0]),
        )


def _open_maybe_gzip(path: Path, mode: str) -> IO:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _data_lines(fh: IO) -> Iterator[str]:
    for line in fh:
        line = line.strip()
        if line and not line.startswith("%"):
            yield line


def read_matrix_market(path: "str | Path") -> CSR:
    """Read a Matrix Market coordinate file (optionally ``.gz``) as CSR.

    Symmetric and skew-symmetric storage are expanded to full general form,
    matching how the paper treats SuiteSparse adjacency matrices.
    """
    path = Path(path)
    with _open_maybe_gzip(path, "r") as fh:
        header = fh.readline().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise FormatError(f"{path}: missing %%MatrixMarket header")
        _, obj, fmt, field, symmetry = [h.lower() for h in header[:5]]
        if obj != "matrix":
            raise FormatError(f"{path}: unsupported object {obj!r}")
        if fmt != "coordinate":
            raise FormatError(
                f"{path}: only 'coordinate' format is supported, got {fmt!r}"
            )
        if field not in ("real", "integer", "pattern"):
            raise FormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise FormatError(f"{path}: unsupported symmetry {symmetry!r}")
        lines = _data_lines(fh)
        try:
            size_line = next(lines)
        except StopIteration:
            raise FormatError(f"{path}: missing size line") from None
        parts = size_line.split()
        if len(parts) != 3:
            raise FormatError(f"{path}: malformed size line {size_line!r}")
        nrows, ncols, nnz = (int(p) for p in parts)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        pattern = field == "pattern"
        for k in range(nnz):
            try:
                entry = next(lines).split()
            except StopIteration:
                raise FormatError(
                    f"{path}: expected {nnz} entries, file ended after {k}"
                ) from None
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            if not pattern:
                vals[k] = float(entry[2])
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows, mirror_cols, mirror_vals = cols[off], rows[off], sign * vals[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])
    return COO(nrows, ncols, rows, cols, vals).to_csr(PLUS_TIMES)


def write_matrix_market(matrix: CSR, path: "str | Path", *, comment: str = "") -> None:
    """Write a CSR matrix as a general real coordinate Matrix Market file."""
    path = Path(path)
    rows, cols, vals = matrix.to_coo()
    with _open_maybe_gzip(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{matrix.nrows} {matrix.ncols} {matrix.nnz}\n")
        for r, c, v in zip(rows, cols, vals):
            fh.write(f"{int(r) + 1} {int(c) + 1} {v:.17g}\n")
