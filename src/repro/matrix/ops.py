"""Structural and elementwise operations on CSR matrices.

These are the substrate operations the paper's evaluation scenarios require:

* :func:`transpose` — CSC<->CSR conversion used by preprocessing;
* :func:`permute_columns` / :func:`permute_rows` — the paper produces
  "unsorted" benchmark inputs by randomly permuting column indices (§5.1);
* :func:`select_columns` / :func:`hstack_columns` — building the tall-skinny
  right-hand side for the multi-source-BFS scenario (§5.5);
* :func:`tril_strict` / :func:`triu_strict` / :func:`triangular_split` and
  :func:`degree_reorder` — the triangle-counting preprocessing ``A = L + U``
  after sorting rows by degree (§5.6);
* :func:`add` / :func:`elementwise_multiply` — semiring elementwise ops used
  by the apps (masking, MCL inflation support).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..semiring import PLUS_TIMES, Semiring
from .coo import COO
from .csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE

__all__ = [
    "kron",
    "diag_vector",
    "is_structurally_symmetric",
    "symmetrize",
    "transpose",
    "permute_columns",
    "permute_rows",
    "select_columns",
    "hstack_columns",
    "tril_strict",
    "triu_strict",
    "triangular_split",
    "degree_reorder",
    "add",
    "elementwise_multiply",
    "pattern",
    "pattern_filter",
    "vstack_rows",
    "spmv",
    "prune",
    "scale_rows",
    "scale_columns",
]


def kron(a: CSR, b: CSR) -> CSR:
    """Kronecker product ``a (x) b`` (the generative model behind R-MAT:
    a Graph500 graph is asymptotically a Kronecker power of the seed).

    Fully vectorized: every entry of the product is indexed by a pair of
    one entry from each operand.
    """
    ra, ca, va = a.to_coo()
    m = b.nrows
    n = b.ncols
    rb, cb, vb = b.to_coo()
    rows = (np.repeat(ra, len(rb)) * m + np.tile(rb, len(ra))).astype(INDEX_DTYPE)
    cols = (np.repeat(ca, len(cb)) * n + np.tile(cb, len(ca))).astype(INDEX_DTYPE)
    vals = np.repeat(va, len(vb)) * np.tile(vb, len(va))
    return COO(a.nrows * m, a.ncols * n, rows, cols, vals).to_csr()


def diag_vector(a: CSR) -> np.ndarray:
    """The main diagonal as a dense vector (implicit zeros included)."""
    n = min(a.nrows, a.ncols)
    out = np.zeros(n)
    rows = np.repeat(np.arange(a.nrows), a.row_nnz())
    on_diag = (rows == a.indices) & (rows < n)
    out[rows[on_diag]] = a.data[on_diag]
    return out


def is_structurally_symmetric(a: CSR) -> bool:
    """True iff the nonzero *pattern* is symmetric (values may differ)."""
    if a.nrows != a.ncols:
        return False
    return a.same_pattern(transpose(a))


def symmetrize(a: CSR, semiring: Semiring = PLUS_TIMES) -> CSR:
    """``a (+) a^T`` — the standard way to turn a directed adjacency into an
    undirected one before triangle counting or clustering."""
    if a.nrows != a.ncols:
        raise ShapeError("symmetrize requires a square matrix")
    return add(a, transpose(a), semiring)


def transpose(a: CSR) -> CSR:
    """Return ``a.T`` (always row-sorted, via a counting sort by column)."""
    nrows, ncols = a.shape
    counts = np.bincount(a.indices, minlength=ncols)
    indptr = np.zeros(ncols + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    rows = np.repeat(np.arange(nrows, dtype=INDEX_DTYPE), a.row_nnz())
    # Stable argsort by column gives, within each output row (= input column),
    # entries ordered by original row — i.e. sorted output rows.
    order = np.argsort(a.indices, kind="stable")
    return CSR((ncols, nrows), indptr, rows[order], a.data[order], sorted_rows=True)


def permute_columns(a: CSR, perm: np.ndarray, *, sort_rows: bool = False) -> CSR:
    """Relabel columns: new column of an entry is ``perm[old_column]``.

    ``perm`` must be a permutation of ``range(ncols)``.  The result is
    unsorted unless ``sort_rows=True`` (this is exactly the paper's recipe
    for producing unsorted inputs).
    """
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    if len(perm) != a.ncols:
        raise ShapeError(f"perm length {len(perm)} != ncols {a.ncols}")
    # sorted_rows=None: the constructor detects — a permutation may happen
    # to preserve order, and the flag must stay truthful either way.
    out = CSR(
        a.shape,
        a.indptr.copy(),
        perm[a.indices],
        a.data.copy(),
        sorted_rows=None,
    )
    if sort_rows:
        out.sort_rows(inplace=True)
    return out


def permute_rows(a: CSR, perm: np.ndarray) -> CSR:
    """Reorder rows: output row ``i`` is input row ``perm[i]``."""
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    if len(perm) != a.nrows:
        raise ShapeError(f"perm length {len(perm)} != nrows {a.nrows}")
    row_sizes = a.row_nnz()[perm]
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(row_sizes, out=indptr[1:])
    # Gather source ranges: vectorized "copy row perm[i] to slot i".
    src_starts = a.indptr[perm]
    take = (
        np.repeat(src_starts, row_sizes)
        + np.arange(int(indptr[-1]))
        - np.repeat(indptr[:-1], row_sizes)
    )
    return CSR(
        a.shape, indptr, a.indices[take], a.data[take], sorted_rows=a.sorted_rows
    )


def select_columns(a: CSR, columns: np.ndarray) -> CSR:
    """Extract the submatrix ``a[:, columns]`` with relabeled columns.

    Used to build the tall-skinny operand of §5.5 by "randomly selecting
    columns from the graph itself".  ``columns`` need not be sorted; output
    column ``j`` corresponds to input column ``columns[j]``.
    """
    columns = np.asarray(columns, dtype=INDEX_DTYPE)
    lut = np.full(a.ncols, -1, dtype=INDEX_DTYPE)
    lut[columns] = np.arange(len(columns), dtype=INDEX_DTYPE)
    new_col = lut[a.indices]
    keep = new_col >= 0
    counts = np.bincount(
        np.repeat(np.arange(a.nrows), a.row_nnz())[keep], minlength=a.nrows
    )
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    # sorted_rows=None: column relabeling scrambles order in general, but
    # the constructor's detection keeps the flag truthful when it survives.
    return CSR(
        (a.nrows, len(columns)),
        indptr,
        new_col[keep],
        a.data[keep],
        sorted_rows=None,
    )


def hstack_columns(mats: "list[CSR]") -> CSR:
    """Concatenate matrices horizontally (same nrows, summed ncols)."""
    if not mats:
        raise ShapeError("hstack_columns needs at least one matrix")
    nrows = mats[0].nrows
    if any(m.nrows != nrows for m in mats):
        raise ShapeError("all matrices must have the same number of rows")
    offsets = np.cumsum([0] + [m.ncols for m in mats])
    rows_parts, cols_parts, vals_parts = [], [], []
    for off, m in zip(offsets[:-1], mats):
        r, c, v = m.to_coo()
        rows_parts.append(r)
        cols_parts.append(c + off)
        vals_parts.append(v)
    return COO(
        nrows,
        int(offsets[-1]),
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    ).to_csr()


def _triangular_filter(a: CSR, keep: np.ndarray) -> CSR:
    counts = np.bincount(
        np.repeat(np.arange(a.nrows), a.row_nnz())[keep], minlength=a.nrows
    )
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR(
        a.shape, indptr, a.indices[keep], a.data[keep], sorted_rows=a.sorted_rows
    )


def tril_strict(a: CSR) -> CSR:
    """Strictly-lower-triangular part (entries with col < row)."""
    rows = np.repeat(np.arange(a.nrows), a.row_nnz())
    return _triangular_filter(a, a.indices < rows)


def triu_strict(a: CSR) -> CSR:
    """Strictly-upper-triangular part (entries with col > row)."""
    rows = np.repeat(np.arange(a.nrows), a.row_nnz())
    return _triangular_filter(a, a.indices > rows)


def triangular_split(a: CSR) -> "tuple[CSR, CSR]":
    """Split ``a`` into ``(L, U)`` with ``A = L + U`` (diagonal dropped).

    This is the triangle-counting preprocessing of §5.6: the adjacency matrix
    of an undirected graph has an empty diagonal, so ``A = L + U`` exactly.
    """
    return tril_strict(a), triu_strict(a)


def degree_reorder(a: CSR, *, ascending: bool = True) -> "tuple[CSR, np.ndarray]":
    """Symmetrically permute a square matrix so rows are ordered by degree.

    Returns ``(P A P^T, perm)`` where ``perm[i]`` is the original index of
    new row ``i``.  The paper reorders "rows with increasing number of
    nonzeros" before splitting for triangle counting (§5.6).  A stable sort
    keeps ties deterministic.
    """
    if a.nrows != a.ncols:
        raise ShapeError("degree_reorder requires a square matrix")
    deg = a.row_nnz()
    perm = np.argsort(deg if ascending else -deg, kind="stable").astype(INDEX_DTYPE)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(a.nrows, dtype=INDEX_DTYPE)
    out = permute_rows(a, perm)
    out = permute_columns(out, inv, sort_rows=a.sorted_rows)
    return out, perm


def add(a: CSR, b: CSR, semiring: Semiring = PLUS_TIMES) -> CSR:
    """Elementwise ``a (+) b`` under the semiring's additive monoid."""
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    ra, ca, va = a.to_coo()
    rb, cb, vb = b.to_coo()
    return COO(
        a.nrows,
        a.ncols,
        np.concatenate([ra, rb]),
        np.concatenate([ca, cb]),
        np.concatenate([va, vb]),
    ).to_csr(semiring)


def elementwise_multiply(a: CSR, b: CSR, semiring: Semiring = PLUS_TIMES) -> CSR:
    """Elementwise (Hadamard) ``a (*) b``: intersection of patterns.

    Triangle counting uses this as the mask step ``A .* (L U)``.
    """
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    sa = a if a.sorted_rows else a.sort_rows()
    sb = b if b.sorted_rows else b.sort_rows()
    ra, ca, va = sa.to_coo()
    rb, cb, vb = sb.to_coo()
    # Coordinates are (row-major, col-sorted) in both: merge by key.
    ka = ra * a.ncols + ca
    kb = rb * b.ncols + cb
    ia = np.isin(ka, kb, assume_unique=True)
    ib = np.isin(kb, ka, assume_unique=True)
    vals = semiring.mul(va[ia], vb[ib])
    counts = np.bincount(ra[ia], minlength=a.nrows)
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR(a.shape, indptr, ca[ia], np.asarray(vals), sorted_rows=True)


def pattern(a: CSR) -> CSR:
    """The sparsity *pattern* of ``a``: same coordinates, all values 1.0.

    Shares ``indptr``/``indices`` with the receiver (zero copy — covered by
    the CSR immutability contract); only the all-ones ``data`` is fresh.
    The chain planner multiplies patterns over the boolean semiring to price
    candidate associations, and triangle counting masks with one.
    """
    return CSR(
        a.shape,
        a.indptr,
        a.indices,
        np.ones(a.nnz, dtype=VALUE_DTYPE),
        sorted_rows=a.sorted_rows,
    )


def pattern_filter(a: CSR, mask: CSR, *, complement: bool = False) -> CSR:
    """Keep the entries of ``a`` whose coordinates are stored in ``mask``.

    Unlike :func:`elementwise_multiply`, the surviving values are ``a``'s
    **verbatim** (no semiring combine with the mask's values) and the entry
    order within each row is preserved — which makes this the exact unfused
    comparator for the fused ``masked_spgemm``: ``pattern_filter(spgemm(a, b),
    mask)`` is bit-identical to ``masked_spgemm(a, b, mask)``.  With
    ``complement=True`` entries *not* in the mask survive instead.
    """
    if a.shape != mask.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {mask.shape}")
    rows = np.repeat(np.arange(a.nrows, dtype=INDEX_DTYPE), a.row_nnz())
    mrows = np.repeat(np.arange(mask.nrows, dtype=INDEX_DTYPE), mask.row_nnz())
    ka = rows * a.ncols + a.indices
    km = np.sort(mrows * mask.ncols + mask.indices)
    pos = np.searchsorted(km, ka)
    valid = pos < len(km)
    keep = np.zeros(len(ka), dtype=bool)
    keep[valid] = km[pos[valid]] == ka[valid]
    if complement:
        np.logical_not(keep, out=keep)
    counts = np.bincount(rows[keep], minlength=a.nrows)
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR(
        a.shape, indptr, a.indices[keep], a.data[keep], sorted_rows=a.sorted_rows
    )


def vstack_rows(mats: "list[CSR]") -> CSR:
    """Concatenate matrices vertically (same ncols, summed nrows).

    The fused chain executor evaluates a sandwich product in row blocks and
    stacks the results; each block's arrays are concatenated verbatim, so
    stacking the row blocks of one product reproduces that product exactly.
    """
    if not mats:
        raise ShapeError("vstack_rows needs at least one matrix")
    ncols = mats[0].ncols
    if any(m.ncols != ncols for m in mats):
        raise ShapeError("all matrices must have the same number of columns")
    nrows = sum(m.nrows for m in mats)
    indptr_parts = [np.zeros(1, dtype=INDPTR_DTYPE)]
    nnz_off = 0
    for m in mats:
        indptr_parts.append(m.indptr[1:] + nnz_off)
        nnz_off += m.nnz
    return CSR(
        (nrows, ncols),
        np.concatenate(indptr_parts),
        np.concatenate([m.indices for m in mats]) if mats else np.empty(0),
        np.concatenate([m.data for m in mats]) if mats else np.empty(0),
        sorted_rows=all(m.sorted_rows for m in mats),
    )


def spmv(a: CSR, x: np.ndarray, semiring: Semiring = PLUS_TIMES) -> np.ndarray:
    """Sparse matrix-(dense) vector product under a semiring.

    Provided for app-level convenience (e.g. MCL column sums via ``A^T 1``).
    """
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if len(x) != a.ncols:
        raise ShapeError(f"vector length {len(x)} != ncols {a.ncols}")
    out = np.full(a.nrows, semiring.zero, dtype=VALUE_DTYPE)
    prods = semiring.mul(a.data, x[a.indices])
    nnz_per_row = a.row_nnz()
    nonempty = np.flatnonzero(nnz_per_row)
    if len(nonempty):
        starts = a.indptr[nonempty]
        # SpMV has no scalar-kernel twin to stay bit-identical with; rows are
        # segment boundaries exactly as at the ESC merge, so pairwise is fine.
        out[nonempty] = semiring.add.reduceat(np.asarray(prods), starts)  # repro-lint: disable=accum-order
    return out


def prune(a: CSR, threshold: float) -> CSR:
    """Drop entries with absolute value <= ``threshold`` (MCL pruning)."""
    keep = np.abs(a.data) > threshold
    counts = np.bincount(
        np.repeat(np.arange(a.nrows), a.row_nnz())[keep], minlength=a.nrows
    )
    indptr = np.zeros(a.nrows + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR(
        a.shape, indptr, a.indices[keep], a.data[keep], sorted_rows=a.sorted_rows
    )


def scale_rows(a: CSR, s: np.ndarray) -> CSR:
    """Multiply row ``i`` by ``s[i]``."""
    s = np.asarray(s, dtype=VALUE_DTYPE)
    if len(s) != a.nrows:
        raise ShapeError(f"scale length {len(s)} != nrows {a.nrows}")
    return CSR(
        a.shape,
        a.indptr.copy(),
        a.indices.copy(),
        a.data * np.repeat(s, a.row_nnz()),
        sorted_rows=a.sorted_rows,
    )


def scale_columns(a: CSR, s: np.ndarray) -> CSR:
    """Multiply column ``j`` by ``s[j]`` (MCL column normalization)."""
    s = np.asarray(s, dtype=VALUE_DTYPE)
    if len(s) != a.ncols:
        raise ShapeError(f"scale length {len(s)} != ncols {a.ncols}")
    return CSR(
        a.shape,
        a.indptr.copy(),
        a.indices.copy(),
        a.data * s[a.indices],
        sorted_rows=a.sorted_rows,
    )
