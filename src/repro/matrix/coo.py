"""Coordinate-format staging container.

COO is the natural output of the R-MAT edge generator and of the ESC
(expand-sort-compress) kernel's expansion phase.  This module provides a thin
validated container plus the vectorized *compress* step (sort by (row, col),
merge duplicates under a semiring's ``add``) that converts COO to CSR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError, ShapeError
from ..semiring import PLUS_TIMES, Semiring
from .csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE

__all__ = ["COO"]


@dataclass
class COO:
    """An ``(rows, cols, vals)`` triple with a shape.

    Duplicate coordinates are permitted (they are merged on conversion to
    CSR), which is exactly what the R-MAT generator and the ESC expansion
    produce.
    """

    nrows: int
    ncols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        if self.nrows < 0 or self.ncols < 0:
            raise ShapeError(f"negative dimension ({self.nrows}, {self.ncols})")
        self.rows = np.ascontiguousarray(self.rows, dtype=INDEX_DTYPE)
        self.cols = np.ascontiguousarray(self.cols, dtype=INDEX_DTYPE)
        self.vals = np.ascontiguousarray(self.vals, dtype=VALUE_DTYPE)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise FormatError(
                "rows, cols and vals must have equal length, got "
                f"{len(self.rows)}/{len(self.cols)}/{len(self.vals)}"
            )
        if len(self.rows):
            if self.rows.min() < 0 or self.rows.max() >= self.nrows:
                raise FormatError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.ncols:
                raise FormatError("column index out of range")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def __len__(self) -> int:
        return len(self.rows)

    def to_csr(self, semiring: Semiring = PLUS_TIMES, *, sort_rows: bool = True) -> CSR:
        """Convert to CSR, merging duplicate coordinates with ``semiring.add``.

        This is the "sort + compress" half of the ESC algorithm: a single
        ``lexsort`` orders entries by (row, col); boundaries of equal
        coordinate runs are found vectorized; ``add.reduceat`` merges runs.

        Parameters
        ----------
        semiring:
            Supplies the duplicate-merging ``add`` (default: arithmetic sum).
        sort_rows:
            The compress step inherently sorts rows; pass ``False`` to follow
            it with a random within-row shuffle — convenient when staging
            unsorted benchmark inputs.
        """
        nrows, ncols = self.shape
        if len(self) == 0:
            return CSR(
                self.shape,
                np.zeros(nrows + 1, dtype=INDPTR_DTYPE),
                np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0, dtype=VALUE_DTYPE),
                sorted_rows=True,
            )
        order = np.lexsort((self.cols, self.rows))
        r = self.rows[order]
        c = self.cols[order]
        v = self.vals[order]
        # Run boundaries: first element, plus every coordinate change.
        new_run = np.empty(len(r), dtype=bool)
        new_run[0] = True
        np.not_equal(r[1:], r[:-1], out=new_run[1:])
        np.logical_or(new_run[1:], c[1:] != c[:-1], out=new_run[1:])
        starts = np.flatnonzero(new_run)
        # ESC sort boundary: duplicate-merge order is defined by the lexsort,
        # not by any scalar kernel's arrival order — pairwise is legitimate.
        merged_vals = semiring.reduce_segments(v, starts)  # repro-lint: disable=accum-order
        merged_rows = r[starts]
        merged_cols = c[starts]
        counts = np.bincount(merged_rows, minlength=nrows)
        indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        out = CSR(self.shape, indptr, merged_cols, merged_vals, sorted_rows=True)
        if not sort_rows:
            out = out.shuffle_rows()
        return out
