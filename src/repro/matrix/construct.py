"""Constructors for :class:`~repro.matrix.csr.CSR` matrices."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, FormatError
from ..semiring import PLUS_TIMES, Semiring
from .coo import COO
from .csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE

__all__ = [
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "identity",
    "diagonal",
    "random_csr",
]


def csr_from_coo(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray | None = None,
    *,
    semiring: Semiring = PLUS_TIMES,
    sort_rows: bool = True,
) -> CSR:
    """Build CSR from coordinate triples, merging duplicates with ``add``.

    ``vals=None`` stores the semiring's ``one`` for every coordinate (pattern
    matrices / unweighted graphs).
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE)
    cols = np.asarray(cols, dtype=INDEX_DTYPE)
    if vals is None:
        vals = np.full(len(rows), semiring.one, dtype=VALUE_DTYPE)
    return COO(nrows, ncols, rows, cols, np.asarray(vals)).to_csr(
        semiring, sort_rows=sort_rows
    )


def csr_from_dense(dense: np.ndarray, *, zero: float = 0.0) -> CSR:
    """Build CSR from a dense 2-D array, dropping entries equal to ``zero``.

    ``zero`` lets callers build e.g. min-plus matrices where the implicit
    value is ``inf`` rather than 0.
    """
    dense = np.asarray(dense, dtype=VALUE_DTYPE)
    if dense.ndim != 2:
        raise FormatError(f"expected a 2-D array, got ndim={dense.ndim}")
    if np.isnan(zero):
        mask = ~np.isnan(dense)
    else:
        mask = dense != zero
    rows, cols = np.nonzero(mask)
    counts = np.bincount(rows, minlength=dense.shape[0])
    indptr = np.zeros(dense.shape[0] + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSR(
        dense.shape,
        indptr,
        cols.astype(INDEX_DTYPE),
        dense[rows, cols],
        sorted_rows=True,
    )


def csr_from_scipy(mat) -> CSR:
    """Build from any :mod:`scipy.sparse` matrix (converted to CSR)."""
    m = mat.tocsr()
    m.sum_duplicates()
    # The arrays go in raw: the CSR constructor canonicalizes dtypes in one
    # place (ascontiguousarray onto INDPTR/INDEX/VALUE_DTYPE), so scipy's
    # int32 indices widen and integer data converts without a second copy.
    return CSR(
        m.shape,
        m.indptr,
        m.indices,
        m.data,
        sorted_rows=bool(m.has_sorted_indices),
    )


def identity(n: int, *, value: float = 1.0) -> CSR:
    """The n-by-n identity (or a scaled identity)."""
    return CSR(
        (n, n),
        np.arange(n + 1, dtype=INDPTR_DTYPE),
        np.arange(n, dtype=INDEX_DTYPE),
        np.full(n, value, dtype=VALUE_DTYPE),
        sorted_rows=True,
    )


def diagonal(values: np.ndarray) -> CSR:
    """A square matrix with ``values`` on the main diagonal.

    Zeros in ``values`` are kept as explicit entries: diagonal matrices are
    used as scaling operators where the pattern should stay fixed.
    """
    values = np.asarray(values, dtype=VALUE_DTYPE)
    n = len(values)
    return CSR(
        (n, n),
        np.arange(n + 1, dtype=INDPTR_DTYPE),
        np.arange(n, dtype=INDEX_DTYPE),
        values.copy(),
        sorted_rows=True,
    )


def random_csr(
    nrows: int,
    ncols: int,
    density: float,
    *,
    seed: int = 0,
    sort_rows: bool = True,
    values: str = "uniform",
) -> CSR:
    """An Erdős–Rényi-style random matrix with expected ``density``.

    Each of the ``nrows * ncols`` cells is present independently with
    probability ``density``.  For the scales used in tests this exact
    cell-sampling model is affordable and gives clean statistics; large-scale
    synthetic inputs come from :mod:`repro.rmat` instead.

    Parameters
    ----------
    values:
        ``"uniform"`` → U(0,1); ``"ones"`` → all 1.0; ``"pm1"`` → ±1 chosen
        uniformly (useful to exercise numerical cancellation).
    """
    if not 0.0 <= density <= 1.0:
        raise ConfigError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    nnz_target = rng.binomial(nrows * ncols, density) if nrows * ncols else 0
    flat = rng.choice(nrows * ncols, size=nnz_target, replace=False) if nnz_target else np.empty(0, dtype=np.int64)
    rows, cols = np.divmod(flat, ncols) if ncols else (flat, flat)
    if values == "uniform":
        vals = rng.random(len(flat))
    elif values == "ones":
        vals = np.ones(len(flat))
    elif values == "pm1":
        vals = rng.choice([-1.0, 1.0], size=len(flat))
    else:
        raise ConfigError(f"unknown values mode {values!r}")
    return csr_from_coo(nrows, ncols, rows, cols, vals, sort_rows=sort_rows)
