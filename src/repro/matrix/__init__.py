"""Sparse matrix substrate: CSR/COO containers, constructors, ops, I/O, stats.

The paper stores every matrix in Compressed Sparse Row (CSR) format and
explicitly distinguishes matrices whose rows are *sorted* by column index from
*unsorted* ones (Table 1 and §5.4.4 quantify the cost of sortedness).  Our
:class:`~repro.matrix.csr.CSR` carries that distinction as a first-class
``sorted_rows`` flag, which the kernels honour and the benchmarks toggle.
"""

from .coo import COO
from .csr import CSR
from .construct import (
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
    identity,
    diagonal,
    random_csr,
)
from .ops import (
    add,
    elementwise_multiply,
    hstack_columns,
    permute_columns,
    permute_rows,
    select_columns,
    spmv,
    transpose,
    tril_strict,
    triu_strict,
    triangular_split,
    degree_reorder,
)
from .io import read_matrix_market, write_matrix_market
from .stats import MatrixStats, matrix_stats, compression_ratio

__all__ = [
    "COO",
    "CSR",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "identity",
    "diagonal",
    "random_csr",
    "add",
    "elementwise_multiply",
    "hstack_columns",
    "permute_columns",
    "permute_rows",
    "select_columns",
    "spmv",
    "transpose",
    "tril_strict",
    "triu_strict",
    "triangular_split",
    "degree_reorder",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixStats",
    "matrix_stats",
    "compression_ratio",
]
