"""Compressed Sparse Row container with an explicit row-sortedness flag.

The CSR format is three arrays (§2 of the paper):

* ``indptr`` — row pointers, length ``nrows + 1``;
* ``indices`` — column indices, length ``nnz``;
* ``data`` — values, length ``nnz``.

The format "does not specify whether this range should be sorted with
increasing column indices; that decision has been left to the library
implementation" (paper, §2).  The paper shows significant performance wins
from operating on unsorted CSR, so :class:`CSR` tracks sortedness explicitly
in :attr:`CSR.sorted_rows` and all kernels propagate it.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..errors import FormatError, ShapeError
from ..semiring import ACCUM_DTYPE

__all__ = ["CSR"]

# The canonical numeric contract.  These three constants (with
# ``semiring.ACCUM_DTYPE``) are the only sanctioned dtype sources in the
# tree: kernels, wire decoders and the traffic model all derive from them,
# and the ``numeric-*`` checker family enforces that statically.
#: dtype used for row pointers (``flop`` counts overflow int32 at scale).
INDPTR_DTYPE = np.int64
#: dtype used for column indices.
INDEX_DTYPE = np.int64
#: dtype used for values.
VALUE_DTYPE = np.float64

if np.dtype(VALUE_DTYPE) != np.dtype(ACCUM_DTYPE):  # pragma: no cover
    raise FormatError(
        "VALUE_DTYPE must match semiring.ACCUM_DTYPE: the stored values and "
        "the semiring accumulator share one numeric domain"
    )


class CSR:
    """A sparse matrix in Compressed Sparse Row format.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr, indices, data:
        The three CSR arrays.  They are converted to the canonical dtypes
        (int64/int64/float64) but **not** copied when already canonical.
    sorted_rows:
        Whether every row's column indices are in strictly increasing order.
        Pass ``None`` (default) to have the constructor *detect* sortedness;
        pass ``True``/``False`` when the caller already knows (kernels do,
        and detection costs a pass over ``indices``).
    check:
        If True, run full structural validation (monotone indptr, index
        bounds, no duplicate column within a row).  Duplicate detection
        requires a sort for unsorted matrices, so ``check=True`` is intended
        for tests and input boundaries, not inner loops.

    Notes
    -----
    Instances are *logically immutable*: no public method mutates the arrays
    in place (except :meth:`sort_rows` with ``inplace=True``, which is
    documented loudly).  This keeps sharing safe across the simulated-thread
    execution paths.
    """

    __slots__ = ("nrows", "ncols", "indptr", "indices", "data", "sorted_rows")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        sorted_rows: bool | None = None,
        check: bool = False,
    ) -> None:
        nrows, ncols = int(shape[0]), int(shape[1])
        if nrows < 0 or ncols < 0:
            raise ShapeError(f"negative dimension in shape {shape!r}")
        self.nrows = nrows
        self.ncols = ncols
        self.indptr = np.ascontiguousarray(indptr, dtype=INDPTR_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        if self.indptr.ndim != 1 or self.indices.ndim != 1 or self.data.ndim != 1:
            raise FormatError("CSR arrays must be one-dimensional")
        if len(self.indptr) != nrows + 1:
            raise FormatError(
                f"indptr has length {len(self.indptr)}, expected nrows+1={nrows + 1}"
            )
        if len(self.indices) != len(self.data):
            raise FormatError(
                f"indices (len {len(self.indices)}) and data (len {len(self.data)})"
                " must have equal length"
            )
        if sorted_rows is None:
            sorted_rows = self._detect_sorted()
        self.sorted_rows = bool(sorted_rows)
        if check:
            self.validate()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        """``nnz / (nrows * ncols)``; 0.0 for an empty shape."""
        cells = self.nrows * self.ncols
        return self.nnz / cells if cells else 0.0

    def row_nnz(self) -> np.ndarray:
        """Per-row stored-entry counts, shape ``(nrows,)``."""
        return np.diff(self.indptr)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of row *i*'s ``(column indices, values)``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, cols, vals)`` for every row (views, not copies)."""
        indptr, indices, data = self.indptr, self.indices, self.data
        for i in range(self.nrows):
            lo, hi = indptr[i], indptr[i + 1]
            yield i, indices[lo:hi], data[lo:hi]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _detect_sorted(self) -> bool:
        """True iff every row's indices are strictly increasing."""
        if len(self.indices) < 2:
            return True
        # A row boundary legitimately allows a decrease; mask those positions.
        decreasing = self.indices[1:] <= self.indices[:-1]
        if not decreasing.any():
            return True
        row_starts = self.indptr[1:-1]  # positions where a new row begins
        boundary = np.zeros(len(self.indices) - 1, dtype=bool)
        valid = (row_starts > 0) & (row_starts < len(self.indices))
        boundary[row_starts[valid] - 1] = True
        return bool(~(decreasing & ~boundary).any())

    def validate(self) -> None:
        """Raise :class:`FormatError` if any CSR invariant is violated.

        Checks the canonical dtype contract first: the constructor
        canonicalizes, so a non-canonical array here means someone mutated
        a field after construction — exactly the narrowing bug class the
        ``REPRO_DEBUG_VALIDATE=1`` spgemm entry/exit hooks exist to catch.
        """
        for name, arr, want in (
            ("indptr", self.indptr, INDPTR_DTYPE),
            ("indices", self.indices, INDEX_DTYPE),
            ("data", self.data, VALUE_DTYPE),
        ):
            if arr.dtype != np.dtype(want):
                raise FormatError(
                    f"{name} dtype {arr.dtype} violates the canonical "
                    f"contract ({np.dtype(want)}); CSR fields must not be "
                    "re-bound to non-canonical arrays after construction"
                )
        if self.indptr[0] != 0:
            raise FormatError(f"indptr[0] must be 0, got {self.indptr[0]}")
        if (np.diff(self.indptr) < 0).any():
            raise FormatError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices):
            raise FormatError(
                f"indptr[-1]={self.indptr[-1]} does not match nnz={len(self.indices)}"
            )
        if self.nnz:
            lo, hi = self.indices.min(), self.indices.max()
            if lo < 0 or hi >= self.ncols:
                raise FormatError(
                    f"column index out of range: found [{lo}, {hi}] for ncols={self.ncols}"
                )
        if self.sorted_rows and not self._detect_sorted():
            raise FormatError("sorted_rows=True but a row is not sorted")
        self._check_no_duplicates()

    def _check_no_duplicates(self) -> None:
        if self.nnz < 2:
            return
        if self.sorted_rows:
            same = self.indices[1:] == self.indices[:-1]
            if not same.any():
                return
            # exclude row boundaries
            boundary = np.zeros(len(self.indices) - 1, dtype=bool)
            row_starts = self.indptr[1:-1]
            valid = (row_starts > 0) & (row_starts < len(self.indices))
            boundary[row_starts[valid] - 1] = True
            if (same & ~boundary).any():
                raise FormatError("duplicate column index within a row")
        else:
            rows = np.repeat(np.arange(self.nrows), self.row_nnz())
            order = np.lexsort((self.indices, rows))
            r, c = rows[order], self.indices[order]
            dup = (r[1:] == r[:-1]) & (c[1:] == c[:-1])
            if dup.any():
                raise FormatError("duplicate column index within a row")

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float64 array (small matrices / tests)."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(np.arange(self.nrows), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (copies arrays)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, vals)`` coordinate arrays (copies)."""
        rows = np.repeat(np.arange(self.nrows, dtype=INDEX_DTYPE), self.row_nnz())
        return rows, self.indices.copy(), self.data.copy()

    def copy(self) -> "CSR":
        """Deep copy."""
        return CSR(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            sorted_rows=self.sorted_rows,
        )

    def row_block(self, row_start: int, row_end: int) -> "CSR":
        """Rows ``[row_start, row_end)`` as a CSR of shape
        ``(row_end - row_start, ncols)``.

        ``indices``/``data`` are *views* into the receiver (zero copy; only
        the rebased ``indptr`` is allocated), which is what lets the fused
        chain executor stream a product block-by-block without duplicating
        the operand.  The usual immutability contract covers the views.
        """
        if not (0 <= row_start <= row_end <= self.nrows):
            raise ShapeError(
                f"row block [{row_start}, {row_end}) out of range for "
                f"{self.nrows} rows"
            )
        lo = int(self.indptr[row_start])
        hi = int(self.indptr[row_end])
        return CSR(
            (row_end - row_start, self.ncols),
            self.indptr[row_start : row_end + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
            sorted_rows=self.sorted_rows,
        )

    # ------------------------------------------------------------------
    # Sortedness management
    # ------------------------------------------------------------------
    def sort_rows(self, *, inplace: bool = False) -> "CSR":
        """Return a matrix whose rows are sorted by column index.

        With ``inplace=True`` the receiver's own arrays are permuted (this is
        the one mutating operation on CSR; callers own the instance).
        """
        if self.sorted_rows:
            return self if inplace else self.copy()
        rows = np.repeat(np.arange(self.nrows), self.row_nnz())
        order = np.lexsort((self.indices, rows))
        indices = self.indices[order]
        data = self.data[order]
        if inplace:
            self.indices = indices
            self.data = data
            self.sorted_rows = True
            return self
        return CSR(self.shape, self.indptr.copy(), indices, data, sorted_rows=True)

    def shuffle_rows(self, seed: int = 0) -> "CSR":
        """Return a copy with entries *within each row* randomly permuted.

        The paper evaluates unsorted kernels by randomly permuting column
        indices of the inputs (§5.1); this helper produces such inputs while
        keeping the matrix mathematically identical.
        """
        rng = np.random.default_rng(seed)
        perm = np.arange(self.nnz)
        indptr = self.indptr
        for i in range(self.nrows):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            if hi - lo > 1:
                rng.shuffle(perm[lo:hi])
        out = CSR(
            self.shape,
            self.indptr.copy(),
            self.indices[perm],
            self.data[perm],
            sorted_rows=False,
        )
        # A shuffled matrix may coincidentally still be sorted (tiny rows);
        # recompute so the flag stays truthful.
        out.sorted_rows = out._detect_sorted()
        return out

    # ------------------------------------------------------------------
    # Comparison helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def same_pattern(self, other: "CSR") -> bool:
        """True iff both matrices store exactly the same coordinates."""
        if self.shape != other.shape:
            return False
        a = self if self.sorted_rows else self.sort_rows()
        b = other if other.sorted_rows else other.sort_rows()
        return bool(
            np.array_equal(a.indptr, b.indptr) and np.array_equal(a.indices, b.indices)
        )

    def allclose(self, other: "CSR", rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """True iff both matrices are numerically equal (pattern + values).

        Sortedness is normalized before comparison, so a sorted and an
        unsorted representation of the same matrix compare equal.
        """
        if self.shape != other.shape:
            return False
        a = self if self.sorted_rows else self.sort_rows()
        b = other if other.sorted_rows else other.sort_rows()
        return bool(
            np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.allclose(a.data, b.data, rtol=rtol, atol=atol, equal_nan=True)
        )

    def __repr__(self) -> str:
        kind = "sorted" if self.sorted_rows else "unsorted"
        return (
            f"CSR(shape={self.shape}, nnz={self.nnz}, {kind}, "
            f"density={self.density:.3g})"
        )
