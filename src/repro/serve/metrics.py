"""Server-side counters, latency percentiles and the metrics schema.

Everything here is updated from multiple threads (the asyncio loop admits
and rejects; compute threads complete), so :class:`ServerMetrics` guards
its state with one lock and exposes a single consistent
:meth:`~ServerMetrics.snapshot` — the payload behind both the ``stats``
job kind and the HTTP shim's ``GET /metrics``.
"""

from __future__ import annotations

import math
import threading

from ..core.instrument import KernelStats
from ..errors import ConfigError

__all__ = [
    "METRICS_SCHEMA",
    "LatencyReservoir",
    "ServerMetrics",
    "validate_metrics_schema",
]

#: Version tag of the metrics snapshot payload.
METRICS_SCHEMA = "repro-metrics/1"

#: Top-level keys every snapshot must carry (schema contract for CI).
_REQUIRED_KEYS = (
    "schema", "counters", "latency_ms", "plan_cache", "kernel_totals",
    "queue", "tenants",
)

_REQUIRED_COUNTERS = (
    "received", "completed", "failed", "rejected_queue_full",
    "rejected_draining", "deadline_exceeded",
)

_REQUIRED_LATENCY = ("count", "p50", "p90", "p99", "max")


class LatencyReservoir:
    """Bounded ring of latency samples with percentile readout.

    A fixed-size ring keeps memory constant under unbounded traffic while
    still answering p50/p99 over the most recent ``size`` requests — the
    window an operator actually wants when watching a live server.  Not
    thread-safe on its own; :class:`ServerMetrics` serializes access.
    """

    def __init__(self, size: int = 2048) -> None:
        if size < 1:
            raise ConfigError(f"reservoir size must be >= 1, got {size}")
        self._ring: "list[float]" = [0.0] * size
        self._count = 0

    def add(self, latency_ms: float) -> None:
        self._ring[self._count % len(self._ring)] = float(latency_ms)
        self._count += 1

    def _window(self) -> "list[float]":
        n = min(self._count, len(self._ring))
        return sorted(self._ring[:n])

    def percentile(self, p: float) -> "float | None":
        """Nearest-rank percentile over the window (None while empty).

        Nearest-rank: the smallest sample such that at least ``p`` percent
        of the window is <= it — ``window[ceil(p/100 * n)]`` one-indexed.
        The rank is clamped to [1, n], so p=0 reads the minimum, p=100 the
        maximum, and a single-sample window answers every p with that
        sample.  ``round()`` would bank-round half-ranks down (n=10, p=45
        lands on the 4th sample instead of the 5th), so ``ceil`` it is.
        """
        window = self._window()
        if not window:
            return None
        n = len(window)
        rank = min(n, max(1, math.ceil(p / 100.0 * n)))
        return window[rank - 1]

    def summary(self) -> dict:
        window = self._window()
        if not window:
            return {"count": 0, "p50": None, "p90": None, "p99": None,
                    "max": None}
        return {
            "count": self._count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": window[-1],
        }


class ServerMetrics:
    """All mutable serving-tier telemetry, behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.received = 0
        self.completed = 0
        self.failed = 0
        self.rejected_queue_full = 0
        self.rejected_draining = 0
        self.deadline_exceeded = 0
        self.by_kind: "dict[str, int]" = {}
        self.by_tenant: "dict[str, int]" = {}
        self.latency = LatencyReservoir()
        #: Process-wide kernel counter totals, merged from each request's
        #: per-call :class:`KernelStats` collector.
        self.kernel_totals = KernelStats()

    def admitted(self, kind: str, tenant: str) -> None:
        with self._lock:
            self.received += 1
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            self.by_tenant[tenant] = self.by_tenant.get(tenant, 0) + 1

    def rejected(self, code: str) -> None:
        with self._lock:
            if code == "queue-full":
                self.rejected_queue_full += 1
            elif code == "draining":
                self.rejected_draining += 1
            else:
                self.failed += 1

    def finished(
        self,
        *,
        ok: bool,
        latency_ms: float,
        code: "str | None" = None,
        stats: "KernelStats | None" = None,
    ) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            elif code == "deadline-exceeded":
                self.deadline_exceeded += 1
            else:
                self.failed += 1
            self.latency.add(latency_ms)
            if stats is not None:
                self.kernel_totals.merge(stats)

    def snapshot(
        self,
        *,
        queue_depth: int,
        in_flight: int,
        draining: bool,
        plan_cache,
    ) -> dict:
        """One consistent ``repro-metrics/1`` payload."""
        with self._lock:
            hits, misses = plan_cache.hits, plan_cache.misses
            lookups = hits + misses
            return {
                "schema": METRICS_SCHEMA,
                "counters": {
                    "received": self.received,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected_queue_full": self.rejected_queue_full,
                    "rejected_draining": self.rejected_draining,
                    "deadline_exceeded": self.deadline_exceeded,
                },
                "by_kind": dict(self.by_kind),
                "latency_ms": self.latency.summary(),
                "plan_cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (hits / lookups) if lookups else None,
                    "entries": len(plan_cache),
                },
                "kernel_totals": self.kernel_totals.scalar_snapshot(),
                "queue": {
                    "depth": queue_depth,
                    "in_flight": in_flight,
                    "draining": draining,
                },
                "tenants": dict(self.by_tenant),
            }


def validate_metrics_schema(payload: dict) -> None:
    """Raise :class:`ConfigError` unless ``payload`` is a valid snapshot.

    Used by the CI smoke job to pin the exported shape: top-level keys,
    counter names and latency fields must all be present, and the schema
    tag must be exactly :data:`METRICS_SCHEMA`.
    """
    if not isinstance(payload, dict):
        raise ConfigError(
            f"metrics payload must be a dict, got {type(payload).__name__}"
        )
    if payload.get("schema") != METRICS_SCHEMA:
        raise ConfigError(
            f"metrics schema must be {METRICS_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise ConfigError(f"metrics payload is missing keys {missing}")
    counters = payload["counters"]
    missing = [k for k in _REQUIRED_COUNTERS if k not in counters]
    if missing:
        raise ConfigError(f"metrics counters are missing {missing}")
    latency = payload["latency_ms"]
    missing = [k for k in _REQUIRED_LATENCY if k not in latency]
    if missing:
        raise ConfigError(f"metrics latency summary is missing {missing}")
