"""Blocking client for the ``repro-job/1`` protocol.

A thin socket wrapper: build a job with :func:`repro.serve.protocol.build_job`,
send one line, read one line.  Convenience methods mirror the library's
local entry points — ``client.spgemm(a, b, opts)`` accepts the same
frozen options / loose keywords as :func:`repro.spgemm` and returns a
:class:`~repro.matrix.csr.CSR` — so swapping local compute for remote
compute is a one-line change at the call site.

Error responses raise :class:`~repro.errors.ServeError` carrying the wire
error code (``queue-full``, ``deadline-exceeded``, ...), so callers can
implement backpressure without parsing message text.
"""

from __future__ import annotations

import itertools
import socket

from ..core.options import ChainOptions, SpgemmOptions
from ..errors import ConfigError, ServeError
from ..matrix.csr import CSR
from .protocol import (
    WIRE_SCHEMA,
    build_job,
    csr_from_wire,
    csr_to_wire,
    decode_message,
    encode_message,
)

__all__ = ["Client", "submit_job"]

_JOB_IDS = itertools.count(1)


class Client:
    """One connection to a :class:`repro.serve.Server`.

    Requests on a single client are sequential (send, then wait for the
    response); open several clients for concurrency.  Usable as a context
    manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: "float | None" = 120.0,
    ):
        if not isinstance(tenant, str) or not tenant:
            raise ConfigError(f"tenant must be a non-empty string, got {tenant!r}")
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._closed = False

    # -- transport ---------------------------------------------------------

    def submit(self, job: dict) -> dict:
        """Send one job envelope, return the raw response body.

        Raises :class:`ServeError` when the server answered ``ok: false``,
        and :class:`ConfigError` on transport-level protocol violations.
        """
        if self._closed:
            raise ConfigError("client is closed")
        self._file.write(encode_message(job))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("internal", "server closed the connection")
        response = decode_message(line)
        if response.get("schema") != WIRE_SCHEMA:
            raise ConfigError(
                f"unexpected response schema {response.get('schema')!r}"
            )
        if response.get("id") != job.get("id"):
            raise ConfigError(
                f"response id {response.get('id')!r} does not match "
                f"request id {job.get('id')!r}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "internal"),
                error.get("message", "unspecified server error"),
            )
        return response

    def _job_id(self) -> str:
        return f"{self.tenant}-{next(_JOB_IDS)}"

    # -- convenience mirrors of the local API ------------------------------

    def spgemm(
        self,
        a: CSR,
        b: CSR,
        opts: "SpgemmOptions | None" = None,
        *,
        deadline_ms: "int | None" = None,
        **kwargs,
    ) -> CSR:
        """``C = A (x) B`` computed by the server."""
        options = SpgemmOptions.from_kwargs(opts, **kwargs)
        job = build_job(
            "spgemm", job_id=self._job_id(), tenant=self.tenant,
            options=options, deadline_ms=deadline_ms, a=a, b=b,
        )
        return csr_from_wire(self.submit(job)["result"]["c"])

    def chain(
        self,
        matrices: "list[CSR]",
        opts: "ChainOptions | None" = None,
        *,
        mask: "CSR | None" = None,
        deadline_ms: "int | None" = None,
        **kwargs,
    ) -> CSR:
        """A chain product (optionally masked) computed by the server."""
        options = ChainOptions.from_kwargs(opts, **kwargs)
        job = build_job(
            "chain", job_id=self._job_id(), tenant=self.tenant,
            options=options, deadline_ms=deadline_ms,
            matrices=matrices, mask=mask,
        )
        return csr_from_wire(self.submit(job)["result"]["c"])

    def masked(
        self,
        a: CSR,
        b: CSR,
        mask: CSR,
        opts: "ChainOptions | None" = None,
        *,
        deadline_ms: "int | None" = None,
        **kwargs,
    ) -> CSR:
        """``C<M> = A (x) B`` computed by the server."""
        options = ChainOptions.from_kwargs(opts, **kwargs)
        job = build_job(
            "masked", job_id=self._job_id(), tenant=self.tenant,
            options=options, deadline_ms=deadline_ms, a=a, b=b, mask=mask,
        )
        return csr_from_wire(self.submit(job)["result"]["c"])

    def app(
        self,
        name: str,
        adjacency: CSR,
        *,
        deadline_ms: "int | None" = None,
        **args,
    ) -> dict:
        """Run a registered app job; returns its JSON result dict."""
        job = build_job(
            "app", job_id=self._job_id(), tenant=self.tenant,
            deadline_ms=deadline_ms, app=name, args=args,
        )
        job["adjacency"] = csr_to_wire(adjacency)
        return self.submit(job)["result"]

    def stats(self) -> dict:
        """The server's ``repro-metrics/1`` snapshot."""
        job = build_job("stats", job_id=self._job_id(), tenant=self.tenant)
        return self.submit(job)["result"]

    def ping(self) -> bool:
        job = build_job("ping", job_id=self._job_id(), tenant=self.tenant)
        return self.submit(job)["result"] == "pong"

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def submit_job(host: str, port: int, job: dict, **client_kwargs) -> dict:
    """One-shot convenience: connect, submit one envelope, disconnect."""
    with Client(host, port, **client_kwargs) as client:
        if "id" not in job:
            job = {**job, "id": client._job_id()}
        return client.submit(job)
