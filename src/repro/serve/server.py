"""The asyncio SpGEMM server: admission, fair dispatch, warm execution.

Architecture
------------
One asyncio event loop owns the sockets and *never* computes:

* Each connection is read line-by-line; frames are handled concurrently,
  so one connection can pipeline many jobs and receive responses
  out-of-order (matched by ``id``).
* Admission runs in the loop: a job arriving while draining is refused
  (``"draining"``), one arriving at ``max_queue_depth`` admitted-but-
  unstarted jobs is refused (``"queue-full"``); otherwise it joins its
  tenant's FIFO queue.
* A single dispatcher task round-robins across tenants — a tenant
  flooding the queue delays only itself, not the others — and starts at
  most ``concurrency`` jobs at once.
* The job body (operand decode, kernel, result encode) runs in a
  compute thread via :func:`_execute_job`; deadlines are enforced with
  ``asyncio.wait_for`` measured **from admission**, so queue wait counts
  against a request's budget.

Warm state shared by every request: a process-wide
:class:`~repro.core.plan.PlanCache` (repeated-structure traffic replays
plans numeric-only, across tenants) and — when ``nworkers > 1`` — a warm
:class:`~repro.parallel.WorkerPool` whose processes outlive requests.

Tracing: when the server has a tracer, each request runs under its own
:class:`~repro.observability.Tracer` in the compute thread and its span
forest is grafted into the server's tracer from the event loop — the
same cross-process graft idiom the pool uses, so one trace interleaves
every request's phase decomposition.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from ..apps.triangles import count_triangles, triangle_counts_per_vertex
from ..autotune import active_profile
from ..core.chain import multiply_chain
from ..core.instrument import KernelStats
from ..core.plan import PlanCache
from ..errors import ConfigError, ReproError, invalid_choice
from ..observability import Tracer
from ..parallel.pool import WorkerPool
from .metrics import ServerMetrics
from .options import ServeOptions
from .protocol import (
    JOB_KINDS,
    WIRE_SCHEMA,
    csr_to_wire,
    decode_message,
    encode_message,
    parse_job,
)

__all__ = ["Server", "ServerHandle", "serve_in_thread"]


def _error_body(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


# --------------------------------------------------------------------------
# job execution (compute-thread side)
# --------------------------------------------------------------------------

def _app_triangles(adjacency, plan_cache, args):
    return {"value": int(count_triangles(
        adjacency, plan_cache=plan_cache, **args
    ))}


def _app_triangles_per_vertex(adjacency, plan_cache, args):
    counts = triangle_counts_per_vertex(
        adjacency, plan_cache=plan_cache, **args
    )
    return {"values": [int(v) for v in counts]}


#: App jobs the server will run: registry name -> callable taking
#: ``(adjacency, plan_cache, args)`` and returning a JSON-able result.
_APP_REGISTRY = {
    "count_triangles": _app_triangles,
    "triangle_counts_per_vertex": _app_triangles_per_vertex,
}


def _execute_job(server: "Server", payload: dict):
    """Parse, compute and encode one job (runs on a compute thread).

    Returns ``(body, stats, trace_payload)`` where ``body`` is the
    response body (``ok`` + ``result``/``stats``/``elapsed_ms``),
    ``stats`` is the request's :class:`KernelStats` (or None) for the
    server-wide totals, and ``trace_payload`` is the request tracer's
    serialized span forest (or None).  Module-level — not a method — so
    tests can monkeypatch it with a deterministic slow/failing stand-in.
    """
    t0 = time.perf_counter()
    job = parse_job(payload)
    kind = job["kind"]
    stats: "KernelStats | None" = KernelStats()
    server_tracer = server.tracer
    wtracer = (
        Tracer() if server_tracer is not None and server_tracer.enabled
        else None
    )
    if kind == "spgemm":
        options = job["options"]
        if server._pool is not None:
            # Pool path: stats/plan_cache are process-local and cannot
            # follow the operands to the workers, so kernel counters are
            # not collected here (the pool's tracer spans still are).
            stats = None
            c = server._pool.spgemm(
                job["a"], job["b"], options.replace(tracer=wtracer)
            )
        else:
            c = server._plan_cache.execute(
                job["a"], job["b"],
                options.replace(stats=stats, tracer=wtracer),
            )
        result = {"c": csr_to_wire(c)}
    elif kind == "chain":
        options = job["options"].replace(
            stats=stats, tracer=wtracer, plan_cache=server._plan_cache,
        )
        c = multiply_chain(job["matrices"], options, mask=job["mask"])
        result = {"c": csr_to_wire(c)}
    elif kind == "masked":
        options = job["options"]
        engine = "fast" if options.engine == "auto" else options.engine
        c = server._plan_cache.execute_masked(
            job["a"], job["b"], job["mask"],
            semiring=options.semiring, complement=options.complement,
            sort_output=options.sort_output, engine=engine,
            nthreads=options.nthreads, stats=stats, tracer=wtracer,
        )
        result = {"c": csr_to_wire(c)}
    elif kind == "app":
        fn = _APP_REGISTRY.get(job["app"])
        if fn is None:
            raise invalid_choice("app", job["app"], sorted(_APP_REGISTRY))
        try:
            result = fn(job["adjacency"], server._plan_cache, job["args"])
        except TypeError as exc:
            raise ConfigError(
                f"bad args for app {job['app']!r}: {exc}"
            ) from exc
    else:  # stats/ping are answered in the event loop, never queued
        raise ConfigError(f"job kind {kind!r} is not a compute kind")
    body = {
        "ok": True,
        "result": result,
        "elapsed_ms": (time.perf_counter() - t0) * 1000.0,
        "stats": stats.scalar_snapshot() if stats is not None else None,
    }
    trace = (
        [s.to_dict() for s in wtracer.spans]
        if wtracer is not None and wtracer.spans else None
    )
    return body, stats, trace


# --------------------------------------------------------------------------
# the server
# --------------------------------------------------------------------------

class Server:
    """Multi-tenant SpGEMM server over the ``repro-job/1`` protocol.

    Construct with a :class:`~repro.serve.options.ServeOptions` (or loose
    keywords), ``await start()`` inside a running loop, and ``await
    shutdown()`` to drain and stop.  For synchronous callers (tests, the
    CLI, benchmarks) use :func:`serve_in_thread`, which runs the loop on
    a daemon thread and hands back a :class:`ServerHandle`.
    """

    def __init__(self, options: "ServeOptions | None" = None, **kwargs):
        self.options = ServeOptions.from_kwargs(options, **kwargs)
        self.tracer = self.options.tracer
        self.port: "int | None" = None
        self.http_port: "int | None" = None
        self._plan_cache = PlanCache(maxsize=self.options.plan_cache_size)
        self._metrics = ServerMetrics()
        self._pool: "WorkerPool | None" = None
        self._threads: "ThreadPoolExecutor | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._tcp = None
        self._http = None
        self._dispatcher: "asyncio.Task | None" = None
        self._tasks: "set[asyncio.Task]" = set()
        self._conns: "set[asyncio.Task]" = set()
        self._tenants: "dict[str, deque]" = {}
        self._rr: "deque[str]" = deque()
        self._queued = 0
        self._in_flight = 0
        self._draining = False
        self._closed = False
        self._work: "asyncio.Event | None" = None
        self._sem: "asyncio.Semaphore | None" = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind sockets, warm the worker pool, start the dispatcher."""
        opts = self.options
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._sem = asyncio.Semaphore(opts.concurrency)
        self._threads = ThreadPoolExecutor(
            max_workers=opts.concurrency, thread_name_prefix="repro-serve"
        )
        if opts.nworkers > 1:
            # Warm the pool before accepting traffic so the first request
            # does not pay process startup.
            self._pool = await self._loop.run_in_executor(
                None, lambda: WorkerPool(opts.nworkers, share=opts.share)
            )
        self._tcp = await asyncio.start_server(
            self._handle_conn, opts.host, opts.port,
            limit=opts.max_request_bytes,
        )
        self.port = self._tcp.sockets[0].getsockname()[1]
        if opts.http_port is not None:
            self._http = await asyncio.start_server(
                self._handle_http, opts.host, opts.http_port
            )
            self.http_port = self._http.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> bool:
        """Refuse new jobs, wait for the backlog; True on a clean drain.

        Waits up to ``drain_timeout_s`` for queued + in-flight jobs to
        finish.  On timeout the still-queued jobs are failed with
        ``"draining"`` (their clients get a response, not a hang) and
        False is returned; in-flight compute threads are left to finish
        in the background — they cannot be interrupted safely.
        """
        self._draining = True
        deadline = self._loop.time() + self.options.drain_timeout_s
        while (self._queued or self._in_flight) and self._loop.time() < deadline:
            await asyncio.sleep(0.02)
        clean = not (self._queued or self._in_flight)
        while True:
            entry = self._next_entry()
            if entry is None:
                break
            if not entry["future"].done():
                entry["future"].set_result(_error_body(
                    "draining", "server drained before this job started"
                ))
        return clean

    async def shutdown(self, *, drain: bool = True) -> bool:
        """Drain (optionally), then stop sockets, dispatcher and workers."""
        clean = await self.drain() if drain else True
        if not drain:
            self._draining = True
            while True:
                entry = self._next_entry()
                if entry is None:
                    break
                if not entry["future"].done():
                    entry["future"].set_result(_error_body(
                        "draining", "server stopped before this job started"
                    ))
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        for srv in (self._tcp, self._http):
            if srv is not None:
                srv.close()
                await srv.wait_closed()
        # wait_closed() does not cover per-connection handler tasks; cancel
        # them now, while the loop is still running, so their cleanup code
        # (writer.close) never fires against a closed loop.
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        if self._threads is not None:
            self._threads.shutdown(wait=False)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        return clean

    # -- admission + dispatch ----------------------------------------------

    def _enqueue(self, tenant: str, entry: dict) -> None:
        if tenant not in self._tenants:
            self._tenants[tenant] = deque()
            self._rr.append(tenant)
        self._tenants[tenant].append(entry)
        self._queued += 1
        self._work.set()

    def _next_entry(self) -> "dict | None":
        """Pop the next job, round-robin across tenants with backlog."""
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            q = self._tenants.get(tenant)
            if q:
                entry = q.popleft()
                if not q:
                    del self._tenants[tenant]
                    self._rr.remove(tenant)
                self._queued -= 1
                return entry
            if q is not None:
                del self._tenants[tenant]
                self._rr.remove(tenant)
        return None

    def _expired_in_queue(self, entry: dict) -> bool:
        """True when ``entry``'s deadline elapsed before dispatch."""
        if entry["deadline_ms"] is None:
            return False
        waited = self._loop.time() - entry["admitted_at"]
        return waited >= entry["deadline_ms"] / 1000.0

    def _fail_expired(self, entry: dict) -> None:
        latency_ms = (self._loop.time() - entry["admitted_at"]) * 1000.0
        self._metrics.finished(
            ok=False, latency_ms=latency_ms, code="deadline-exceeded"
        )
        if not entry["future"].done():
            entry["future"].set_result(_error_body(
                "deadline-exceeded", "deadline expired while queued"
            ))

    async def _dispatch_loop(self) -> None:
        while not self._closed:
            await self._work.wait()
            if self._closed:
                return
            await self._sem.acquire()
            entry = self._next_entry()
            if entry is None:
                self._sem.release()
                self._work.clear()
                continue
            # Fail jobs whose deadline elapsed while queued *before* they
            # consume the concurrency slot we just acquired — dispatching
            # them would burn executor time on a response nobody can use.
            if self._expired_in_queue(entry):
                self._fail_expired(entry)
                self._sem.release()
                continue
            self._in_flight += 1
            task = asyncio.create_task(self._run_entry(entry))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_entry(self, entry: dict) -> None:
        loop = self._loop
        stats = trace = None
        try:
            timeout = None
            if entry["deadline_ms"] is not None:
                timeout = (
                    entry["deadline_ms"] / 1000.0
                    - (loop.time() - entry["admitted_at"])
                )
            if timeout is not None and timeout <= 0:
                body = _error_body(
                    "deadline-exceeded", "deadline expired while queued"
                )
            else:
                try:
                    body, stats, trace = await asyncio.wait_for(
                        loop.run_in_executor(
                            self._threads, _execute_job, self, entry["payload"]
                        ),
                        timeout=timeout,
                    )
                except asyncio.TimeoutError:
                    # The compute thread cannot be interrupted; it finishes
                    # in the background and its result is discarded.
                    body = _error_body(
                        "deadline-exceeded",
                        f"deadline of {entry['deadline_ms']} ms exceeded",
                    )
                except ConfigError as exc:
                    body = _error_body("bad-request", str(exc))
                except ReproError as exc:
                    body = _error_body(
                        "internal", f"{type(exc).__name__}: {exc}"
                    )
                # Server boundary: any other failure must become an error
                # response, never a silent dropped request.
                except Exception as exc:  # repro-lint: disable=overbroad-except
                    body = _error_body(
                        "internal", f"{type(exc).__name__}: {exc}"
                    )
            latency_ms = (loop.time() - entry["admitted_at"]) * 1000.0
            error = body.get("error") or {}
            self._metrics.finished(
                ok=bool(body.get("ok")), latency_ms=latency_ms,
                code=error.get("code"), stats=stats,
            )
            if trace and self.tracer is not None:
                rid = entry["payload"].get("id")
                for sub in trace:
                    self.tracer.graft(sub, name=f"request[{rid}]:{sub['name']}")
            if not entry["future"].done():
                entry["future"].set_result(body)
        finally:
            self._in_flight -= 1
            self._sem.release()
            self._work.set()

    # -- protocol front-end ------------------------------------------------

    def _snapshot(self) -> dict:
        snapshot = self._metrics.snapshot(
            queue_depth=self._queued, in_flight=self._in_flight,
            draining=self._draining, plan_cache=self._plan_cache,
        )
        # Optional section: calibrated-selector state, present only while a
        # calibration profile is active (the "auto" jobs route through it).
        profile = active_profile()
        if profile is not None:
            snapshot["autotune"] = {
                "machine": profile.machine,
                "engine": profile.engine,
                "curves": sorted(profile.curves),
                "refiner": profile.refiner.snapshot(),
            }
        return snapshot

    async def _send(self, writer, wlock: asyncio.Lock, obj: dict) -> None:
        data = encode_message(obj)
        async with wlock:
            writer.write(data)
            await writer.drain()

    async def _handle_conn(self, reader, writer) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._conns.add(me)
        wlock = asyncio.Lock()
        pending: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(writer, wlock, {
                        "schema": WIRE_SCHEMA, "id": None,
                        **_error_body(
                            "bad-request",
                            f"request exceeds max_request_bytes="
                            f"{self.options.max_request_bytes}",
                        ),
                    })
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_frame(line, writer, wlock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        except asyncio.CancelledError:
            # Shutdown cancels connection tasks; finish normally so the
            # streams machinery's done-callback (which calls
            # task.exception()) does not log a spurious CancelledError.
            pass
        finally:
            if me is not None:
                self._conns.discard(me)
            if pending:
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
            # The loop may already be tearing down when a GC'd handler
            # reaches this point; closing must never raise then.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _handle_frame(self, line: bytes, writer, wlock) -> None:
        try:
            payload = decode_message(line)
        except ConfigError as exc:
            await self._send(writer, wlock, {
                "schema": WIRE_SCHEMA, "id": None,
                **_error_body("bad-request", str(exc)),
            })
            return
        rid = payload.get("id")

        async def reply(body: dict) -> None:
            await self._send(
                writer, wlock, {"schema": WIRE_SCHEMA, "id": rid, **body}
            )

        kind = payload.get("kind")
        # Control kinds bypass the queue: operators need liveness and
        # metrics even while the server is saturated or draining.
        if kind == "ping":
            await reply({"ok": True, "result": "pong"})
            return
        if kind == "stats":
            await reply({"ok": True, "result": self._snapshot()})
            return
        if kind not in JOB_KINDS:
            await reply(_error_body(
                "bad-request",
                f"unknown job kind {kind!r}; valid choices: {list(JOB_KINDS)}",
            ))
            return
        if self._draining:
            self._metrics.rejected("draining")
            await reply(_error_body("draining", "server is draining"))
            return
        if self._queued >= self.options.max_queue_depth:
            self._metrics.rejected("queue-full")
            await reply(_error_body(
                "queue-full",
                f"queue depth {self.options.max_queue_depth} reached",
            ))
            return
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            deadline_ms = self.options.default_deadline_ms
        elif not isinstance(deadline_ms, int) or deadline_ms < 1:
            await reply(_error_body(
                "bad-request",
                f"deadline_ms must be a positive integer, got {deadline_ms!r}",
            ))
            return
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            tenant = "default"
        entry = {
            "payload": payload,
            "future": self._loop.create_future(),
            "deadline_ms": deadline_ms,
            "admitted_at": self._loop.time(),
        }
        self._metrics.admitted(kind, tenant)
        self._enqueue(tenant, entry)
        body = await entry["future"]
        await reply(body)

    # -- HTTP shim ---------------------------------------------------------

    async def _handle_http(self, reader, writer) -> None:
        """Minimal HTTP/1.1 for ``GET /metrics`` and ``GET /healthz``."""
        try:
            request_line = await reader.readline()
            while True:  # drain headers; the shim ignores them
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.split("?")[0] == "/metrics":
                status, body = "200 OK", json.dumps(self._snapshot())
            elif path.split("?")[0] == "/healthz":
                status, body = "200 OK", json.dumps(
                    {"ok": True, "draining": self._draining}
                )
            else:
                status, body = "404 Not Found", json.dumps(
                    {"error": f"no route {path!r}"}
                )
            raw = body.encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(raw)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1") + raw
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# --------------------------------------------------------------------------
# synchronous harness
# --------------------------------------------------------------------------

class ServerHandle:
    """A running server on a daemon thread: addresses + a blocking stop."""

    def __init__(self, server: Server, loop, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_result: "bool | None" = None

    @property
    def host(self) -> str:
        return self.server.options.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> "int | None":
        return self.server.http_port

    def stop(self, *, drain: bool = True, timeout: "float | None" = None) -> bool:
        """Drain and stop the server, then join its loop thread.

        Idempotent: a second call (including the context-manager exit
        after an explicit ``stop()``) returns the first call's result.
        """
        if self._stop_result is not None:
            return self._stop_result
        if timeout is None:
            timeout = self.server.options.drain_timeout_s + 30.0
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop
        )
        clean = fut.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._stop_result = clean
        return clean

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    options: "ServeOptions | None" = None, **kwargs
) -> ServerHandle:
    """Start a :class:`Server` on a daemon thread and wait until it binds.

    The synchronous entry point used by tests, benchmarks and the CLI:
    returns a :class:`ServerHandle` whose ``port``/``http_port`` are the
    resolved (possibly ephemeral) addresses.
    """
    opts = ServeOptions.from_kwargs(options, **kwargs)
    started = threading.Event()
    box: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = Server(opts)
        try:
            loop.run_until_complete(server.start())
        # Startup failure must release the waiter, not hang it; the error
        # is re-raised in the caller below.
        except Exception as exc:  # repro-lint: disable=overbroad-except
            box["error"] = exc
            started.set()
            loop.close()
            return
        box["server"] = server
        box["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # A *thread* target never pickles, so the closure is safe here — the
    # spawn-capture hazard applies to process targets only.
    # repro-lint: disable-next-line=race-spawn-capture
    thread = threading.Thread(
        target=run, name="repro-serve-loop", daemon=True
    )
    thread.start()
    if not started.wait(timeout=60.0):
        raise ConfigError("server failed to start within 60 s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(box["server"], box["loop"], thread)
