"""Frozen, validated configuration for the :mod:`repro.serve` server.

Mirrors the :class:`repro.core.options.SpgemmOptions` pattern — one frozen
dataclass, every knob validated in ``__post_init__``, loose keywords
canonicalized through :meth:`ServeOptions.from_kwargs` — so the serving
tier's configuration surface behaves exactly like the kernel tier's.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigError, invalid_choice
from ..parallel.pool import SHARE_MODES

__all__ = ["ServeOptions"]

#: Transports a :class:`~repro.parallel.pool.WorkerPool` can use (``"fork"``
#: is excluded: a persistent pool's workers predate the operands).
_POOL_SHARES = tuple(m for m in SHARE_MODES if m != "fork")


@dataclass(frozen=True)
class ServeOptions:
    """Configuration for one :class:`repro.serve.Server`.

    Attributes
    ----------
    host:
        Bind address for both the job port and the metrics shim.
    port:
        TCP port for the newline-delimited JSON job protocol; ``0`` binds
        an ephemeral port (read it back from ``Server.port`` after start).
    http_port:
        Port for the stdlib-only HTTP shim serving ``GET /metrics`` and
        ``GET /healthz``; ``None`` disables the shim, ``0`` is ephemeral.
    concurrency:
        Jobs computed simultaneously (compute-thread count).  Admission
        beyond this waits in the per-tenant queues.
    max_queue_depth:
        Admitted-but-not-started jobs allowed across *all* tenants; a job
        arriving at a full queue is rejected with ``"queue-full"`` instead
        of growing an unbounded backlog.
    default_deadline_ms:
        Deadline applied to jobs that do not carry their own, measured
        from admission (queue wait counts).  ``None`` means no default.
    nworkers:
        ``1`` computes jobs inline on the compute threads (the plan-cache
        path); ``> 1`` keeps a warm :class:`~repro.parallel.WorkerPool`
        of that many processes and routes ``spgemm`` jobs through it.
    share:
        Operand transport for the worker pool (``"fork"`` is invalid for
        a persistent pool; see :class:`~repro.parallel.WorkerPool`).
    plan_cache_size:
        Capacity of the process-wide :class:`~repro.core.plan.PlanCache`
        shared by every inline job — repeated-structure traffic replays
        plans numeric-only across tenants.
    drain_timeout_s:
        How long a graceful drain waits for queued + in-flight jobs before
        failing the stragglers with ``"draining"``.
    max_request_bytes:
        Upper bound on one request line; larger requests are refused.
    tracer:
        Optional :class:`repro.observability.Tracer`; per-request span
        forests are grafted under it (compare-excluded, process-local).
    """

    host: str = "127.0.0.1"
    port: int = 0
    http_port: "int | None" = None
    concurrency: int = 2
    max_queue_depth: int = 32
    default_deadline_ms: "int | None" = 30_000
    nworkers: int = 1
    share: str = "auto"
    plan_cache_size: int = 64
    drain_timeout_s: float = 10.0
    max_request_bytes: int = 64 * 1024 * 1024
    tracer: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for name in ("concurrency", "max_queue_depth", "nworkers",
                     "plan_cache_size"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        for name in ("port", "http_port"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or not 0 <= value <= 65535:
                raise ConfigError(
                    f"{name} must be a port number in [0, 65535], got {value!r}"
                )
        if self.default_deadline_ms is not None and (
            not isinstance(self.default_deadline_ms, int)
            or self.default_deadline_ms < 1
        ):
            raise ConfigError(
                f"default_deadline_ms must be a positive integer or None, "
                f"got {self.default_deadline_ms!r}"
            )
        if not isinstance(self.drain_timeout_s, (int, float)) or (
            self.drain_timeout_s <= 0
        ):
            raise ConfigError(
                f"drain_timeout_s must be a positive number, "
                f"got {self.drain_timeout_s!r}"
            )
        if not isinstance(self.max_request_bytes, int) or (
            self.max_request_bytes < 1024
        ):
            raise ConfigError(
                f"max_request_bytes must be an integer >= 1024, "
                f"got {self.max_request_bytes!r}"
            )
        if self.share not in _POOL_SHARES:
            raise invalid_choice("share", self.share, list(_POOL_SHARES))
        if self.tracer is not None and not hasattr(self.tracer, "span"):
            raise ConfigError(
                f"tracer must provide .span(name, phase=...), "
                f"got {type(self.tracer).__name__}"
            )

    @classmethod
    def from_kwargs(
        cls, opts: "ServeOptions | None" = None, **kwargs: Any
    ) -> "ServeOptions":
        """Canonicalize an options object and/or loose keywords.

        Same override semantics as
        :meth:`repro.core.options.SpgemmOptions.from_kwargs`: keywords
        apply on top of ``opts``; unknown keywords raise
        :class:`~repro.errors.ConfigError` listing the valid names.
        """
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - valid
        if unknown:
            raise ConfigError(
                f"unknown serve option(s) {sorted(unknown)}; "
                f"valid options: {sorted(valid)}"
            )
        if opts is None:
            return cls(**kwargs)
        if not isinstance(opts, cls):
            raise ConfigError(
                f"opts must be {cls.__name__} or None, got {type(opts).__name__}"
            )
        return dataclasses.replace(opts, **kwargs) if kwargs else opts

    def replace(self, **changes: Any) -> "ServeOptions":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)
