"""The ``repro-job/1`` wire protocol: framing, matrices, jobs, responses.

One request or response is **one line of JSON** (newline-delimited, UTF-8).
CSR operands travel as base64 of their three raw arrays plus shape and
dtype tags — lossless for the canonical int64/float64 arrays, and any
other dtype a client sends is cast by the :class:`~repro.matrix.csr.CSR`
constructor's normal canonicalization.

A job envelope::

    {"schema": "repro-job/1", "id": "...", "tenant": "...",
     "kind": "spgemm" | "chain" | "masked" | "app" | "stats" | "ping",
     "deadline_ms": 2000,                 # optional; server default applies
     "options": {"type": "spgemm", ...},  # SpgemmOptions/ChainOptions wire
     ... kind-specific operands ...}

Kind-specific operand fields:

* ``spgemm`` — ``a``, ``b`` (wire CSRs)
* ``chain``  — ``matrices`` (list of wire CSRs), optional ``mask``
* ``masked`` — ``a``, ``b``, ``mask``
* ``app``    — ``app`` (registry name), ``adjacency``, optional ``args``
* ``stats`` / ``ping`` — no operands

A response echoes ``schema`` and ``id`` and carries either ``"ok": true``
with ``result``/``stats``/``elapsed_ms``, or ``"ok": false`` with
``error: {"code", "message"}`` (codes: ``bad-request``, ``queue-full``,
``deadline-exceeded``, ``draining``, ``internal``).

The options sub-dict is parsed by
:func:`repro.core.options.options_from_wire` — the same validated entry
path ``python -m repro`` uses — so a wire request cannot reach a kernel
less checked than a local call.
"""

from __future__ import annotations

import base64
import json

import numpy as np

from ..core.options import ChainOptions, SpgemmOptions, options_from_wire
from ..errors import ConfigError, invalid_choice
from ..matrix.csr import CSR

__all__ = [
    "WIRE_SCHEMA",
    "JOB_KINDS",
    "ERROR_CODES",
    "csr_to_wire",
    "csr_from_wire",
    "encode_message",
    "decode_message",
    "build_job",
    "parse_job",
]

#: Version tag every request and response carries.
WIRE_SCHEMA = "repro-job/1"

#: Request kinds the server understands.
JOB_KINDS = ("spgemm", "chain", "masked", "app", "stats", "ping")

#: Error codes a failed response may carry.
ERROR_CODES = (
    "bad-request", "queue-full", "deadline-exceeded", "draining", "internal",
)

#: Which options class each compute kind parses (stats/ping carry none).
_KIND_OPTIONS = {
    "spgemm": SpgemmOptions,
    "chain": ChainOptions,
    "masked": ChainOptions,
    "app": None,
    "stats": None,
    "ping": None,
}


# --------------------------------------------------------------------------
# matrices
# --------------------------------------------------------------------------

def _array_to_wire(arr: np.ndarray) -> dict:
    return {
        "dtype": arr.dtype.str,
        "b64": base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode(
            "ascii"
        ),
    }


def _validate_wire_dtype(dt: np.dtype, what: str) -> None:
    """Reject dtype tags outside the canonical set for this field's role.

    Accepted tags are exactly those the CSR constructor can canonicalize
    **losslessly**: index fields take signed integers up to 64 bits (and
    unsigned up to 32 — u64 cannot hold the -1 sentinel after widening);
    data takes floats up to 64 bits, integers up to 32 bits (int64 values
    above 2^53 would silently lose precision in float64) and bool.
    Anything else — floats in an index field, complex, strings, objects —
    raises a clean ConfigError naming the field, never a silent narrow.
    """
    kind, size = dt.kind, dt.itemsize
    if what in ("indptr", "indices"):
        ok = (kind == "i" and size <= 8) or (kind == "u" and size <= 4)
    else:
        ok = (
            (kind == "f" and size <= 8)
            or (kind in "iu" and size <= 4)
            or kind == "b"
        )
    if not ok:
        raise ConfigError(
            f"wire CSR field {what!r} has dtype tag {dt.str!r} outside the "
            "canonical set; it cannot be canonicalized without silent "
            "narrowing (indices: signed ints <= 64 bit or unsigned <= 32 "
            "bit; data: floats <= 64 bit, ints <= 32 bit, bool)"
        )


def _array_from_wire(payload: dict, what: str) -> np.ndarray:
    if not isinstance(payload, dict) or "b64" not in payload:
        raise ConfigError(f"wire CSR field {what!r} must be a dict with 'b64'")
    try:
        dt = np.dtype(payload.get("dtype", "<i8"))
    except (ValueError, TypeError) as exc:
        raise ConfigError(
            f"wire CSR field {what!r} has unparseable dtype tag "
            f"{payload.get('dtype')!r}: {exc}"
        ) from exc
    _validate_wire_dtype(dt, what)
    try:
        raw = base64.b64decode(payload["b64"], validate=True)
        return np.frombuffer(raw, dtype=dt)
    except (ValueError, TypeError) as exc:
        raise ConfigError(f"wire CSR field {what!r} is malformed: {exc}") from exc


def csr_to_wire(m: CSR) -> dict:
    """Lossless JSON-able form of a CSR matrix (raw arrays, base64)."""
    return {
        "shape": [int(m.nrows), int(m.ncols)],
        "sorted": m.sorted_rows,
        "indptr": _array_to_wire(m.indptr),
        "indices": _array_to_wire(m.indices),
        "data": _array_to_wire(m.data),
    }


def csr_from_wire(payload: dict) -> CSR:
    """Rebuild a CSR from :func:`csr_to_wire` output.

    The arrays pass through the CSR constructor's full structural
    validation — a malformed wire matrix fails here, before any kernel
    sees it — and ``sorted_rows`` is re-detected when absent.
    """
    if not isinstance(payload, dict):
        raise ConfigError(
            f"wire CSR must be a dict, got {type(payload).__name__}"
        )
    for key in ("shape", "indptr", "indices", "data"):
        if key not in payload:
            raise ConfigError(f"wire CSR is missing field {key!r}")
    shape = payload["shape"]
    if (
        not isinstance(shape, (list, tuple)) or len(shape) != 2
        or not all(isinstance(d, int) and d >= 0 for d in shape)
    ):
        raise ConfigError(f"wire CSR shape must be [nrows, ncols], got {shape!r}")
    return CSR(
        (shape[0], shape[1]),
        _array_from_wire(payload["indptr"], "indptr"),
        _array_from_wire(payload["indices"], "indices"),
        _array_from_wire(payload["data"], "data"),
        sorted_rows=payload.get("sorted"),
    )


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------

def encode_message(obj: dict) -> bytes:
    """One protocol frame: compact JSON, UTF-8, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one frame; malformed JSON raises :class:`ConfigError`."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConfigError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ConfigError(
            f"protocol frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# --------------------------------------------------------------------------
# jobs
# --------------------------------------------------------------------------

def build_job(
    kind: str,
    *,
    job_id: str,
    tenant: str = "default",
    options: "SpgemmOptions | None" = None,
    deadline_ms: "int | None" = None,
    a: "CSR | None" = None,
    b: "CSR | None" = None,
    mask: "CSR | None" = None,
    matrices: "list[CSR] | None" = None,
    app: "str | None" = None,
    args: "dict | None" = None,
) -> dict:
    """Assemble a job envelope (client side of :func:`parse_job`)."""
    if kind not in JOB_KINDS:
        raise invalid_choice("job kind", kind, list(JOB_KINDS))
    job: dict = {
        "schema": WIRE_SCHEMA, "id": job_id, "tenant": tenant, "kind": kind,
    }
    if deadline_ms is not None:
        job["deadline_ms"] = deadline_ms
    if options is not None:
        job["options"] = options.to_wire()
    if a is not None:
        job["a"] = csr_to_wire(a)
    if b is not None:
        job["b"] = csr_to_wire(b)
    if mask is not None:
        job["mask"] = csr_to_wire(mask)
    if matrices is not None:
        job["matrices"] = [csr_to_wire(m) for m in matrices]
    if app is not None:
        job["app"] = app
    if args is not None:
        job["args"] = args
    return job


def parse_job(payload: dict) -> dict:
    """Validate a job envelope and decode its operands and options.

    Returns a plain dict with the decoded ``options`` object and CSR
    operands under the same keys the envelope used.  Every failure is a
    :class:`~repro.errors.ConfigError` (mapped to a ``bad-request``
    response by the server) naming the offending field.
    """
    schema = payload.get("schema", WIRE_SCHEMA)
    if schema != WIRE_SCHEMA:
        raise invalid_choice("schema", schema, [WIRE_SCHEMA])
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise invalid_choice("job kind", kind, list(JOB_KINDS))
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ConfigError(f"tenant must be a non-empty string, got {tenant!r}")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, int) or deadline_ms < 1
    ):
        raise ConfigError(
            f"deadline_ms must be a positive integer, got {deadline_ms!r}"
        )
    job: dict = {
        "id": payload.get("id"),
        "tenant": tenant,
        "kind": kind,
        "deadline_ms": deadline_ms,
    }
    opts_cls = _KIND_OPTIONS[kind]
    if opts_cls is not None:
        wire_opts = payload.get("options")
        if wire_opts is None:
            job["options"] = opts_cls()
        else:
            options = options_from_wire(wire_opts)
            # A chain/masked job may send plain spgemm-typed options;
            # promote them so the chain-tier knobs get their defaults.
            job["options"] = opts_cls.from_kwargs(options)
    if kind == "spgemm":
        job["a"] = _required_csr(payload, "a")
        job["b"] = _required_csr(payload, "b")
    elif kind == "chain":
        mats = payload.get("matrices")
        if not isinstance(mats, list) or len(mats) < 2:
            raise ConfigError(
                "chain jobs need a 'matrices' list of at least 2 wire CSRs"
            )
        job["matrices"] = [csr_from_wire(m) for m in mats]
        job["mask"] = (
            csr_from_wire(payload["mask"]) if payload.get("mask") else None
        )
    elif kind == "masked":
        job["a"] = _required_csr(payload, "a")
        job["b"] = _required_csr(payload, "b")
        job["mask"] = _required_csr(payload, "mask")
    elif kind == "app":
        app = payload.get("app")
        if not isinstance(app, str) or not app:
            raise ConfigError("app jobs need an 'app' registry name")
        args = payload.get("args", {})
        if not isinstance(args, dict):
            raise ConfigError(f"app args must be an object, got {args!r}")
        job["app"] = app
        job["args"] = args
        job["adjacency"] = _required_csr(payload, "adjacency")
    return job


def _required_csr(payload: dict, key: str) -> CSR:
    if key not in payload:
        raise ConfigError(f"{payload.get('kind')} jobs need operand {key!r}")
    return csr_from_wire(payload[key])
