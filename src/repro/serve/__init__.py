"""SpGEMM-as-a-service: a multi-tenant server on the unified options API.

The serving tier turns the library's warm state — inspector-executor
plans, worker processes — into amortized state: a long-lived process that
answers ``spgemm`` / ``chain`` / ``masked`` / ``app`` jobs over a
newline-delimited JSON protocol (``repro-job/1``), sharing one
process-wide :class:`~repro.core.plan.PlanCache` and (optionally) one
warm :class:`~repro.parallel.WorkerPool` across every tenant's requests.

Quick start::

    from repro.serve import serve_in_thread, Client

    with serve_in_thread(concurrency=4) as handle:
        with Client(handle.host, handle.port, tenant="alice") as cli:
            c = cli.spgemm(a, b, algorithm="hash", engine="fast")

Or from a shell: ``python -m repro serve --port 7070 --http-port 7071``
and scrape ``GET /metrics``.  See ``docs/serving.md`` for the protocol,
the admission-control model (bounded queue, per-tenant round-robin,
deadlines measured from admission, graceful drain) and the metrics
schema.
"""

from .client import Client, submit_job
from .metrics import METRICS_SCHEMA, ServerMetrics, validate_metrics_schema
from .options import ServeOptions
from .protocol import (
    JOB_KINDS,
    WIRE_SCHEMA,
    build_job,
    csr_from_wire,
    csr_to_wire,
    decode_message,
    encode_message,
    parse_job,
)
from .server import Server, ServerHandle, serve_in_thread

__all__ = [
    "Server",
    "ServerHandle",
    "serve_in_thread",
    "Client",
    "submit_job",
    "ServeOptions",
    "ServerMetrics",
    "METRICS_SCHEMA",
    "validate_metrics_schema",
    "WIRE_SCHEMA",
    "JOB_KINDS",
    "build_job",
    "parse_job",
    "csr_to_wire",
    "csr_from_wire",
    "encode_message",
    "decode_message",
]
