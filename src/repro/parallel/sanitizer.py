"""Dynamic shm sanitizer: runtime enforcement of the write-ownership model.

The static ``race`` checker family proves the pool's discipline over the
code that exists; this module enforces it over the code that *runs* —
including extension kernels, monkeypatched workers and anything else the
AST cannot see.  Activated by ``REPRO_SANITIZE=shm``, it audits one
:func:`repro.parallel.pool.parallel_spgemm` call end to end:

* **operand integrity** — the packed shared-memory segment is digested
  (SHA-256) right after packing and re-digested after the pool drains; any
  byte difference means a worker wrote operand memory, even if it flipped
  ``flags.writeable`` back on first (``sanitize-operand-write``);
* **claim tracking** — each dispatched block registers its output row
  interval; overlapping claims (``sanitize-claim-overlap``) and result
  blocks whose row count disagrees with their claim
  (``sanitize-out-of-claim``) are violations;
* **segment lifecycle** — segments registered but never released by
  teardown are leaks (``sanitize-segment-leak``).

Violations are appended as JSON lines to ``REPRO_SANITIZE_REPORT`` (when
set) and then raised as :class:`repro.errors.SanitizerError`.  The report
is the bridge to the static half: ``repro.analysis.dynamic`` converts each
line into the same :class:`~repro.analysis.findings.Finding` objects the
checkers yield, so ``python -m repro.analysis --dynamic report.jsonl``
merges both halves into one SARIF run.  Layering note: the bridge imports
*this* module (lazily), never the reverse — ``parallel`` must not depend
on the dev-tool layer.

The sanitizer is observational by construction: it never mutates operands
or results, so a sanitized run is bit-identical to an unsanitized one
(property-tested in ``tests/test_sanitizer.py``).  Its cost is two digests
of the packed segment per pool call plus O(workers) bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
import os

from ..errors import SanitizerError

__all__ = [
    "SANITIZER_RULES",
    "SanitizeSession",
    "begin",
    "enabled",
]

#: Environment flag; the only recognized value today is ``"shm"``.
ENV_FLAG = "REPRO_SANITIZE"

#: Optional path; violations (and a per-call summary) append as JSON lines.
ENV_REPORT = "REPRO_SANITIZE_REPORT"

RULE_OPERAND_WRITE = "sanitize-operand-write"
RULE_CLAIM_OVERLAP = "sanitize-claim-overlap"
RULE_OUT_OF_CLAIM = "sanitize-out-of-claim"
RULE_SEGMENT_LEAK = "sanitize-segment-leak"

#: Rule id -> description.  This table is the dynamic half's contribution
#: to the shared reporting pipeline: ``repro.analysis.dynamic`` re-exports
#: it into the SARIF rule metadata (a test asserts the two stay equal).
SANITIZER_RULES: "dict[str, str]" = {
    RULE_OPERAND_WRITE: (
        "a packed operand segment's bytes changed while workers ran — some "
        "worker wrote shared operand memory"
    ),
    RULE_CLAIM_OVERLAP: (
        "two workers claimed overlapping output row intervals — block "
        "ownership is not disjoint"
    ),
    RULE_OUT_OF_CLAIM: (
        "a worker's result block does not match its claimed row interval — "
        "it wrote rows it does not own"
    ),
    RULE_SEGMENT_LEAK: (
        "a shared-memory segment registered during the call was never "
        "released by pool teardown"
    ),
}


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests the shm sanitizer."""
    tokens = {
        t.strip() for t in os.environ.get(ENV_FLAG, "").split(",") if t.strip()
    }
    return "shm" in tokens


def begin(mode: str) -> "SanitizeSession | None":
    """A fresh session when the sanitizer is enabled, else ``None``.

    The single call site in ``parallel_spgemm`` guards every hook with
    ``if san is not None`` — the disabled path costs one env lookup.
    """
    return SanitizeSession(mode) if enabled() else None


class SanitizeSession:
    """Audit state for one ``parallel_spgemm`` call.

    The session lives entirely in the parent process.  Workers need no
    cooperation: operand integrity is verified by digest comparison and
    claim conformance by inspecting the result blocks they ship back.
    """

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self.checks = 0
        self.findings: "list[dict]" = []
        #: segment name -> {"digest", "nbytes", "released", "verified"}
        self._segments: "dict[str, dict]" = {}
        #: worker id -> (start, end) claimed output rows
        self._claims: "dict[int, tuple[int, int]]" = {}

    # -- violations ------------------------------------------------------

    def _violate(self, rule: str, message: str, **detail) -> None:
        self.findings.append({"rule": rule, "message": message, "detail": detail})

    # -- operand integrity -----------------------------------------------

    def register_segment(self, shm) -> None:
        """Digest a freshly packed segment (call before workers start)."""
        self.checks += 1
        self._segments[shm.name] = {
            "digest": hashlib.sha256(bytes(shm.buf)).hexdigest(),
            "nbytes": len(shm.buf),
            "released": False,
            "verified": False,
        }

    def verify_segment(self, shm) -> None:
        """Re-digest after the pool drains; any difference is a violation."""
        entry = self._segments.get(shm.name)
        if entry is None or entry["verified"]:
            return
        self.checks += 1
        entry["verified"] = True
        digest = hashlib.sha256(bytes(shm.buf)).hexdigest()
        if digest != entry["digest"]:
            self._violate(
                RULE_OPERAND_WRITE,
                "operand segment bytes changed while workers ran — a worker "
                "wrote shared operand memory (read-only views can be "
                "circumvented; the digest cannot)",
                segment=shm.name,
                nbytes=entry["nbytes"],
            )

    def release_segment(self, name: str) -> None:
        entry = self._segments.get(name)
        if entry is not None:
            entry["released"] = True

    # -- claim tracking --------------------------------------------------

    def claim(self, worker_id: int, start: int, end: int) -> None:
        """Record that ``worker_id`` owns output rows ``[start, end)``."""
        self.checks += 1
        for other, (s, e) in self._claims.items():
            if start < e and s < end:
                self._violate(
                    RULE_CLAIM_OVERLAP,
                    f"worker {worker_id} claimed rows [{start}, {end}) "
                    f"overlapping worker {other}'s claim [{s}, {e})",
                    workers=[other, worker_id],
                    intervals=[[s, e], [start, end]],
                )
        self._claims[worker_id] = (start, end)

    def check_block(self, worker_id: int, block_indptr) -> None:
        """Verify a result block's row count against the worker's claim."""
        self.checks += 1
        claim = self._claims.get(worker_id)
        rows = len(block_indptr) - 1
        if claim is None:
            self._violate(
                RULE_OUT_OF_CLAIM,
                f"worker {worker_id} produced a {rows}-row block without "
                "any claimed interval",
                worker=worker_id,
                rows=rows,
            )
            return
        start, end = claim
        if rows != end - start:
            self._violate(
                RULE_OUT_OF_CLAIM,
                f"worker {worker_id} produced {rows} rows for claim "
                f"[{start}, {end}) ({end - start} rows) — it wrote rows it "
                "does not own",
                worker=worker_id,
                rows=rows,
                claim=[start, end],
            )

    # -- teardown --------------------------------------------------------

    def finish(self, span=None) -> None:
        """Close the audit: leak check, counters, report, raise on findings.

        ``span`` is the pool's open observability span (or ``None`` /
        a null span); check and violation totals are stamped as counters so
        sanitized traces show the audit ran.  The JSON-lines report is
        written *before* raising, so a failing CI run still uploads the
        findings it died on.
        """
        for name, entry in sorted(self._segments.items()):
            self.checks += 1
            if not entry["released"]:
                self._violate(
                    RULE_SEGMENT_LEAK,
                    "shared-memory segment was never released by pool "
                    "teardown — a long-lived process accumulates mappings",
                    segment=name,
                    nbytes=entry["nbytes"],
                )
        if span is not None:
            span.add_counter("sanitize_checks", float(self.checks))
            span.add_counter("sanitize_violations", float(len(self.findings)))
        self._write_report()
        if self.findings:
            lines = "; ".join(
                f"[{f['rule']}] {f['message']}" for f in self.findings
            )
            raise SanitizerError(
                f"shm sanitizer: {len(self.findings)} violation(s) under "
                f"share={self.mode!r}: {lines}"
            )

    def _write_report(self) -> None:
        path = os.environ.get(ENV_REPORT, "").strip()
        if not path:
            return
        record = {
            "version": 1,
            "kind": "repro-sanitize/1",
            "mode": self.mode,
            "checks": self.checks,
            "findings": self.findings,
        }
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
