"""Real (wall-clock) parallel execution of SpGEMM row blocks.

The simulated-thread path in :mod:`repro.perfmodel` reproduces the paper's
figures; this package provides *actual* parallelism for users who want
wall-clock speedups on real cores: the output row space is partitioned with
the paper's flop-balanced scheduler and each block is computed in a worker
process (CPython threads cannot run the kernels concurrently).
"""

from .pool import WorkerPool, parallel_spgemm

__all__ = ["parallel_spgemm", "WorkerPool"]
