"""Process-pool SpGEMM: flop-balanced row blocks, one worker per block.

Operand transport — how each worker gets A and B — is selectable and
defaults to zero-copy:

* ``"shm"`` — the six CSR arrays of A and B are packed once into a single
  :class:`multiprocessing.shared_memory.SharedMemory` segment (64-byte
  aligned, mirroring cache-line alignment of the paper's scratch buffers);
  each worker maps the segment and reconstructs zero-copy numpy views.
  Nothing of the operands is pickled — only the segment name and a small
  metadata header travel to the workers.
* ``"fork"`` — operands are published in a module global before the pool
  starts and inherited by forked children through copy-on-write pages.
  Used automatically where ``shared_memory`` is unavailable.
* ``"pickle"`` — the legacy transport: each worker receives a pickled copy
  of its A block and of all of B.  Kept for debugging and as a behavioural
  baseline; this is exactly the per-worker allocation storm that the
  paper's Fig. 4 warns about at the thread level.

``share="auto"`` (the default) picks the first available mode in the order
above; the ``REPRO_POOL_SHARE`` environment variable overrides the choice
without code changes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from . import sanitizer as _sanitizer
from ..core.options import SpgemmOptions
from ..core.scheduler import rows_to_threads
from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..observability import NULL_TRACER, Tracer, tracer_from_env
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE

__all__ = ["parallel_spgemm", "row_block", "WorkerPool", "SHARE_MODES"]

try:  # pragma: no cover - import guard exercised implicitly
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover - absent only on exotic platforms
    _shm_module = None

#: Operand transports accepted by ``parallel_spgemm(..., share=...)``.
SHARE_MODES = ("auto", "shm", "fork", "pickle")

#: Shared-memory segment alignment for each packed array (cache line).
_ALIGN = 64


def row_block(a: CSR, start: int, end: int) -> CSR:
    """The sub-matrix of rows ``[start, end)`` as a standalone CSR.

    The block's ``sorted_rows`` flag carries per-block state: a sorted
    parent yields sorted blocks for free, while a block cut from an
    unsorted parent is re-detected — its own rows may well be sorted even
    when some other row of the parent is not.
    """
    if not 0 <= start <= end <= a.nrows:
        raise ConfigError(
            f"row_block range [{start}, {end}) invalid for {a.nrows} rows"
        )
    lo, hi = int(a.indptr[start]), int(a.indptr[end])
    return CSR(
        (end - start, a.ncols),
        a.indptr[start : end + 1] - a.indptr[start],
        a.indices[lo:hi],
        a.data[lo:hi],
        sorted_rows=True if a.sorted_rows else None,
    )


# --------------------------------------------------------------------------
# operand transport
# --------------------------------------------------------------------------

def _pack_layout(arrays: "list[np.ndarray]") -> "tuple[list, int]":
    """Aligned (offset, dtype, size) for each array and the total bytes."""
    metas = []
    offset = 0
    for arr in arrays:
        offset = -(-offset // _ALIGN) * _ALIGN
        metas.append((offset, arr.dtype.str, int(arr.size)))
        offset += arr.nbytes
    return metas, max(offset, 1)


def _csr_arrays(m: CSR) -> "list[np.ndarray]":
    return [m.indptr, m.indices, m.data]


def _pack_shm(a: CSR, b: CSR):
    """Copy both operands into one shared segment; return (shm, header)."""
    arrays = _csr_arrays(a) + _csr_arrays(b)
    metas, total = _pack_layout(arrays)
    shm = _shm_module.SharedMemory(create=True, size=total)
    try:
        for (off, dtype, size), arr in zip(metas, arrays):
            view = np.ndarray(size, dtype=dtype, buffer=shm.buf, offset=off)
            view[:] = arr
    # Cleanup-and-reraise: the segment exists only in this function so far,
    # and even a KeyboardInterrupt mid-copy must not leak it in /dev/shm —
    # hence BaseException, with an unconditional re-raise.
    except BaseException:  # repro-lint: disable=overbroad-except
        _release_shm(shm)
        raise
    header = (a.shape, a.sorted_rows, b.shape, b.sorted_rows, metas)
    return shm, header


def _release_shm(shm) -> None:
    """Close and unlink a segment, tolerating an already-unlinked one.

    ``unlink`` after the resource tracker (or an earlier failure path) got
    there first raises ``FileNotFoundError``; releasing twice must stay
    harmless so every error path can call this unconditionally.
    """
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


#: Worker-side cache of attached segments.  A handle must not be closed
#: while numpy views borrow its mapped buffer: current numpy keeps only an
#: object reference to the mmap (no buffer-protocol export), so ``close()``
#: would *succeed* and the next view access would fault on the dangling
#: pointer.  Eviction is therefore deferred and refcount-guarded: when a
#: *new* segment arrives — meaning the previous request's views are dead,
#: their results already shipped back — every other cached handle whose
#: mapping has no remaining borrowers is swept.  A long-lived worker (the
#: serving-layer shape) thus holds at most the mapping it is actively
#: computing on, instead of one mapping per request it ever served.
_SHM_HANDLES: "dict[str, object]" = {}

#: ``sys.getrefcount`` of each cached handle's mmap at attach time, before
#: any view was built over it.  Every live top-level ndarray view adds one
#: reference (slices chain through ``base``, adding none), so a count back
#: at its baseline proves the mapping has no borrowers left.
_SHM_MMAP_BASELINES: "dict[str, int]" = {}


def _evict_stale_handles(current: str) -> None:
    """Close and drop every cached handle except ``current``.

    A handle whose mmap refcount still exceeds its attach-time baseline has
    live views borrowing the mapping (e.g. an operand kept alive across
    requests); it is kept and retried on the next sweep rather than pulling
    the mapping out from under them.  ``BufferError`` covers runtimes where
    ``close()`` does take a buffer-protocol export on the mmap.
    """
    for name in [n for n in _SHM_HANDLES if n != current]:
        shm = _SHM_HANDLES[name]
        mm = getattr(shm, "_mmap", None)
        if mm is not None and sys.getrefcount(mm) > _SHM_MMAP_BASELINES.get(
            name, 0
        ):
            continue
        try:
            shm.close()
        except BufferError:
            continue
        # Sanctioned: worker-private cache, same ownership as the attach
        # below; the entry's views are provably dead (refcount baseline).
        # repro-lint: disable-next-line=race-global-mutation
        del _SHM_HANDLES[name]
        # repro-lint: disable-next-line=race-global-mutation
        _SHM_MMAP_BASELINES.pop(name, None)


def _attach_shm(name: str):
    _evict_stale_handles(name)
    shm = _SHM_HANDLES.get(name)
    if shm is None:
        # The parent owns the segment's lifetime (it unlinks after the pool
        # drains).  Attaching must therefore not register with the resource
        # tracker: a fork worker shares the parent's tracker and its
        # unregister would race the parent's unlink, while a spawn worker's
        # private tracker would warn about a "leak" it does not own.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        try:
            # Sanctioned monkeypatch: scoped to this attach, restored in the
            # finally below, and only ever runs on the worker's own tracker.
            # repro-lint: disable-next-line=race-global-mutation
            resource_tracker.register = (
                lambda n, rtype: None
                if rtype == "shared_memory"
                else original_register(n, rtype)
            )
            shm = _shm_module.SharedMemory(name=name)
        finally:
            # repro-lint: disable-next-line=race-global-mutation
            resource_tracker.register = original_register
        # Sanctioned setup path: the cache is worker-private (each process
        # fills its own copy after fork/spawn) and reads are idempotent.
        # repro-lint: disable-next-line=race-global-mutation
        _SHM_HANDLES[name] = shm
        mm = getattr(shm, "_mmap", None)
        if mm is not None:
            # repro-lint: disable-next-line=race-global-mutation
            _SHM_MMAP_BASELINES[name] = sys.getrefcount(mm)
    return shm


def _unpack_shm(shm, header) -> "tuple[CSR, CSR]":
    a_shape, a_sorted, b_shape, b_sorted, metas = header
    views = [
        np.ndarray(size, dtype=dtype, buffer=shm.buf, offset=off)
        for off, dtype, size in metas
    ]
    # Operands travel read-only, unconditionally: every worker maps the same
    # segment, so one stray in-place write would corrupt its siblings'
    # inputs.  (The CSR constructor's ascontiguousarray is a no-copy
    # passthrough for these canonical-dtype views, preserving the flag.)
    for view in views:
        view.flags.writeable = False
    a = CSR(a_shape, views[0], views[1], views[2], sorted_rows=a_sorted)
    b = CSR(b_shape, views[3], views[4], views[5], sorted_rows=b_sorted)
    return a, b


#: Fork-inheritance mailbox: operands published here before the pool forks
#: are visible to children via copy-on-write, with zero serialization.
_FORK_OPERANDS: "dict[int, tuple[CSR, CSR]]" = {}
_FORK_TOKENS = itertools.count()


def _resolve_share(share: str) -> str:
    """Validate ``share`` and resolve ``"auto"`` to a concrete transport."""
    if share == "auto":
        share = os.environ.get("REPRO_POOL_SHARE", "").strip() or "auto"
    if share not in SHARE_MODES:
        raise ConfigError(
            f"unknown share mode {share!r}; available: {list(SHARE_MODES)}"
        )
    fork_ok = "fork" in multiprocessing.get_all_start_methods()
    if share == "auto":
        if _shm_module is not None:
            return "shm"
        if fork_ok:
            return "fork"
        return "pickle"
    if share == "shm" and _shm_module is None:
        raise ConfigError("shared_memory is unavailable on this platform")
    if share == "fork" and not fork_ok:
        raise ConfigError("fork start method is unavailable on this platform")
    return share


# --------------------------------------------------------------------------
# workers (top-level so every start method can pickle them)
# --------------------------------------------------------------------------

def _trace_payload(wtracer: "Tracer | None"):
    """Serialized span forest of a worker-local tracer (None when untraced)."""
    if wtracer is None or not wtracer.spans:
        return None
    return [s.to_dict() for s in wtracer.spans]


def _compute_block(
    a: CSR, b: CSR, start: int, end: int,
    algorithm: str, semiring_name: str, sort_output: bool, engine: str,
    trace: bool,
):
    wtracer = Tracer() if trace else None
    c = spgemm(
        row_block(a, start, end), b,
        algorithm=algorithm, semiring=semiring_name,
        sort_output=sort_output, engine=engine, tracer=wtracer,
    )
    return c.indptr, c.indices, c.data, _trace_payload(wtracer)


def _worker_shm(args):
    (shm_name, header, start, end,
     algorithm, sr_name, sort_output, engine, trace) = args
    wtracer = Tracer() if trace else None
    if wtracer is None:
        a, b = _unpack_shm(_attach_shm(shm_name), header)
    else:
        with wtracer.span("unpack", phase="unpack", transport="shm"):
            a, b = _unpack_shm(_attach_shm(shm_name), header)
    c = spgemm(
        row_block(a, start, end), b,
        algorithm=algorithm, semiring=sr_name,
        sort_output=sort_output, engine=engine, tracer=wtracer,
    )
    return c.indptr, c.indices, c.data, _trace_payload(wtracer)


def _worker_fork(args):
    token, start, end, algorithm, sr_name, sort_output, engine, trace = args
    a, b = _FORK_OPERANDS[token]
    return _compute_block(
        a, b, start, end, algorithm, sr_name, sort_output, engine, trace
    )


def _worker_pickle(args):
    a_block, b, algorithm, sr_name, sort_output, engine, trace = args
    wtracer = Tracer() if trace else None
    c = spgemm(
        a_block, b,
        algorithm=algorithm, semiring=sr_name,
        sort_output=sort_output, engine=engine, tracer=wtracer,
    )
    return c.indptr, c.indices, c.data, _trace_payload(wtracer)


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def parallel_spgemm(
    a: CSR,
    b: CSR,
    opts: SpgemmOptions | None = None,
    *,
    nworkers: int | None = None,
    share: str = "auto",
    executor=None,
    **kwargs,
) -> CSR:
    """Compute ``C = A (x) B`` across ``nworkers`` OS processes.

    Rows are split with the paper's flop-balanced scheduler so workers
    finish together even on skewed inputs.  The default ``esc`` kernel is
    the fastest executable one under the faithful engine; pair the hash
    family with ``engine="fast"`` for the batched implementation.

    Kernel configuration arrives the same way as :func:`repro.spgemm`'s: a
    frozen :class:`~repro.core.options.SpgemmOptions`, loose keywords
    (``algorithm``, ``semiring``, ``sort_output``, ``engine``, ``tracer``),
    or both — keywords override the options object's fields, validated by
    :meth:`SpgemmOptions.from_kwargs`.  ``algorithm`` defaults to ``"esc"``
    here (not ``"auto"``); an explicit ``"auto"`` resolves through the
    Table-4 recipe once, on the full operands, before dispatch.  The
    process-local fields ``partition``, ``stats``, ``plan`` and
    ``plan_cache`` are not supported across the process boundary and raise
    :class:`~repro.errors.ConfigError`; ``nthreads`` is ignored (``nworkers``
    is this function's parallelism knob).

    Parameters
    ----------
    nworkers:
        Process count (default: min(cores, 8)).  Must be >= 1; counts
        beyond the row count are clamped — no silent empty blocks.
    share:
        Operand transport: ``"shm"`` (zero-copy shared memory),
        ``"fork"`` (copy-on-write inheritance), ``"pickle"`` (legacy
        serialized copies), or ``"auto"`` to pick the best available,
        overridable via the ``REPRO_POOL_SHARE`` environment variable.
    executor:
        Optional already-running :class:`concurrent.futures.ProcessPoolExecutor`
        (usually a :class:`WorkerPool`'s) to dispatch on instead of forking
        a fresh pool per call — the long-lived serving shape.  Not valid
        with the ``"fork"`` transport, whose operand mailbox must be
        published *before* the workers fork.
    tracer:
        Optional :class:`repro.observability.Tracer` (also activated by
        ``REPRO_TRACE``).  The parent traces partition, operand packing and
        the stitch; each worker traces its own block and ships the span
        tree back with its result, where it is grafted under the pool span
        — so one trace shows the per-worker phase decomposition *and* the
        transport cost around it.  Worker spans run concurrently, so their
        durations can sum past the pool's wall time.

    Notes
    -----
    Only the *output* blocks travel back over IPC; under ``"shm"``/
    ``"fork"`` the operands are never serialized, so the setup cost is one
    memcpy (or none) instead of ``nworkers`` pickled copies of B.
    """
    options = SpgemmOptions.from_kwargs(opts, **kwargs)
    if opts is None and "algorithm" not in kwargs:
        options = options.replace(algorithm="esc")
    for name in ("partition", "stats", "plan", "plan_cache"):
        if getattr(options, name) is not None:
            raise ConfigError(
                f"parallel_spgemm does not support {name!r}: it is "
                "process-local and cannot follow the operands to the workers"
            )
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if options.algorithm == "auto":
        from ..core.recipe import recommend

        options = options.replace(
            algorithm=recommend(a, b, sort_output=options.sort_output).algorithm
        )
    algorithm = options.algorithm
    sr = options.semiring
    sort_output = options.sort_output
    engine = options.engine
    tracer = options.tracer
    if nworkers is None:
        nworkers = min(os.cpu_count() or 1, 8)
    if nworkers < 1:
        raise ConfigError(f"nworkers must be >= 1, got {nworkers}")
    mode = _resolve_share(share)
    if executor is not None and mode == "fork":
        raise ConfigError(
            "a persistent executor cannot use the fork transport: its "
            "workers forked before the operands were published; use shm "
            "or pickle"
        )
    nworkers = min(nworkers, max(a.nrows, 1))
    if tracer is None:
        tracer = tracer_from_env()
    if nworkers == 1 or a.nrows == 0:
        return spgemm(
            a, b, algorithm=algorithm, semiring=sr,
            sort_output=sort_output, engine=engine, tracer=tracer,
        )
    # The pool path opens a constant number of spans per call (never one per
    # row), so tracing unconditionally through NULL_TRACER is free enough.
    obs = tracer if tracer is not None else NULL_TRACER
    trace = obs.enabled
    san = _sanitizer.begin(mode)
    with obs.span(
        "parallel_spgemm", phase="other",
        algorithm=algorithm, engine=engine, share=mode, nworkers=nworkers,
        nrows=a.nrows,
    ) as pool_span:
        with obs.span("partition", phase="partition"):
            partition = rows_to_threads(a, b, nworkers)
            partition.validate(a.nrows)
        blocks = [
            (int(partition.offsets[t]), int(partition.offsets[t + 1]))
            for t in range(nworkers)
        ]
        work = [(s, e) for s, e in blocks if e > s]
        if san is not None:
            for wid, (s, e) in enumerate(work):
                san.claim(wid, s, e)

        if mode == "shm":
            with obs.span("pack", phase="pack", transport="shm"):
                shm, header = _pack_shm(a, b)
            if san is not None:
                san.register_segment(shm)
            tasks = [
                (shm.name, header, s, e,
                 algorithm, sr.name, sort_output, engine, trace)
                for s, e in work
            ]
            try:
                with obs.span("workers", phase="execute", transport="shm"):
                    if executor is not None:
                        results = list(executor.map(_worker_shm, tasks))
                    else:
                        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                            results = list(pool.map(_worker_shm, tasks))
            finally:
                if san is not None:
                    # Digest check precedes release: the mapping must still
                    # be alive to compare bytes against the packed digest.
                    san.verify_segment(shm)
                _release_shm(shm)
                if san is not None:
                    san.release_segment(shm.name)
        elif mode == "fork":
            token = next(_FORK_TOKENS)
            # Sanctioned setup path: published before the fork so children
            # inherit it copy-on-write; only the parent ever mutates, under
            # a fresh token, and the finally below removes it.
            # repro-lint: disable-next-line=race-global-mutation
            _FORK_OPERANDS[token] = (a, b)
            tasks = [
                (token, s, e, algorithm, sr.name, sort_output, engine, trace)
                for s, e in work
            ]
            try:
                ctx = multiprocessing.get_context("fork")
                with obs.span("workers", phase="execute", transport="fork"):
                    with ProcessPoolExecutor(
                        max_workers=len(tasks), mp_context=ctx
                    ) as pool:
                        results = list(pool.map(_worker_fork, tasks))
            finally:
                # Parent-only cleanup of the parent-only mailbox entry.
                # repro-lint: disable-next-line=race-global-mutation
                del _FORK_OPERANDS[token]
        else:  # pickle
            with obs.span("pack", phase="pack", transport="pickle"):
                tasks = [
                    (row_block(a, s, e), b,
                     algorithm, sr.name, sort_output, engine, trace)
                    for s, e in work
                ]
            with obs.span("workers", phase="execute", transport="pickle"):
                if executor is not None:
                    results = list(executor.map(_worker_pickle, tasks))
                else:
                    with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
                        results = list(pool.map(_worker_pickle, tasks))

        # Preallocated single-pass stitch: sizes first, then one copy per
        # block.
        payloads: "list[tuple[int, list]]" = []
        with obs.span("stitch", phase="stitch"):
            nrows = a.nrows
            indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
            total = 0
            it = iter(results)
            block_results = []
            wid = 0
            for s, e in blocks:
                if e <= s:
                    block_results.append(None)
                    continue
                bi, bc, bv, payload = next(it)
                if san is not None:
                    san.check_block(wid, bi)
                block_results.append((bi, bc, bv))
                indptr[s + 1 : e + 1] = total + bi[1:]
                total += int(bi[-1])
                if payload:
                    payloads.append((wid, payload))
                wid += 1
            out_indices = np.empty(total, dtype=INDEX_DTYPE)
            out_data = np.empty(total, dtype=VALUE_DTYPE)
            cursor = 0
            for blk in block_results:
                if blk is None:
                    continue
                _, bc, bv = blk
                out_indices[cursor : cursor + len(bc)] = bc
                out_data[cursor : cursor + len(bv)] = bv
                cursor += len(bc)
        # Graft worker traces under the pool span (not the stitch — their
        # concurrent wall time would masquerade as stitch time otherwise).
        for wid, payload in payloads:
            for sub in payload:
                obs.graft(sub, name=f"worker[{wid}]:{sub['name']}")
        if san is not None:
            # Leak check + counters + report, then raise on any violation.
            san.finish(pool_span)
    sortedness = sort_output or algorithm in ("heap", "esc")
    return CSR((nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sortedness)


# --------------------------------------------------------------------------
# persistent worker set
# --------------------------------------------------------------------------

def _warm_worker() -> int:
    """No-op task that forces a worker process to exist and import numpy."""
    return os.getpid()


class WorkerPool:
    """A warm, long-lived process pool for repeated :func:`parallel_spgemm`.

    ``parallel_spgemm`` alone forks a fresh pool per call — fine for one
    big product, ruinous for a server answering thousands of small ones.
    ``WorkerPool`` keeps ``nworkers`` processes alive across calls and
    hands its executor to ``parallel_spgemm``, so each request pays only
    the operand memcpy (shm) or pickle, never process startup.

    The ``"fork"`` transport is rejected at construction: its operand
    mailbox is inherited at fork time, which a persistent pool's workers
    predate.  ``"auto"`` therefore resolves to shm or pickle only.

    Use as a context manager or call :meth:`shutdown` explicitly; a pool
    abandoned without shutdown leaks its worker processes until GC.
    """

    def __init__(
        self,
        nworkers: int | None = None,
        *,
        share: str = "auto",
        warm: bool = True,
    ):
        if nworkers is None:
            nworkers = min(os.cpu_count() or 1, 8)
        if nworkers < 1:
            raise ConfigError(f"nworkers must be >= 1, got {nworkers}")
        mode = _resolve_share(share)
        if mode == "fork":
            raise ConfigError(
                "WorkerPool cannot use the fork transport: operands are "
                "published after its workers fork; use shm or pickle"
            )
        self.nworkers = nworkers
        self.share = mode
        self._executor = ProcessPoolExecutor(max_workers=nworkers)
        self._closed = False
        if warm:
            # One round of no-ops: the pool is forked/spawned and has
            # imported this module before the first real request.  (A fast
            # worker may absorb several no-ops, so this warms the *pool*,
            # not necessarily every individual worker.)
            futures = [self._executor.submit(_warm_worker) for _ in range(nworkers)]
            self.worker_pids = tuple(sorted({f.result(timeout=120) for f in futures}))
        else:
            self.worker_pids = ()

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigError("WorkerPool is shut down")
        return self._executor

    def spgemm(
        self,
        a: CSR,
        b: CSR,
        opts: SpgemmOptions | None = None,
        **kwargs,
    ) -> CSR:
        """``parallel_spgemm`` on this pool's warm workers."""
        return parallel_spgemm(
            a, b, opts,
            nworkers=self.nworkers, share=self.share,
            executor=self.executor, **kwargs,
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; idempotent."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "warm"
        return (
            f"WorkerPool(nworkers={self.nworkers}, share={self.share!r}, "
            f"{state})"
        )
