"""Process-pool SpGEMM: flop-balanced row blocks, one worker per block."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.scheduler import rows_to_threads
from ..core.spgemm import spgemm
from ..errors import ConfigError, ShapeError
from ..matrix.csr import CSR, INDEX_DTYPE, INDPTR_DTYPE, VALUE_DTYPE
from ..semiring import PLUS_TIMES, Semiring, get_semiring

__all__ = ["parallel_spgemm", "row_block"]


def row_block(a: CSR, start: int, end: int) -> CSR:
    """The sub-matrix of rows ``[start, end)`` as a standalone CSR."""
    lo, hi = int(a.indptr[start]), int(a.indptr[end])
    return CSR(
        (end - start, a.ncols),
        a.indptr[start : end + 1] - a.indptr[start],
        a.indices[lo:hi],
        a.data[lo:hi],
        sorted_rows=a.sorted_rows,
    )


def _worker(args) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    a_block, b, algorithm, semiring_name, sort_output = args
    c = spgemm(
        a_block, b,
        algorithm=algorithm, semiring=semiring_name, sort_output=sort_output,
    )
    return c.indptr, c.indices, c.data


def parallel_spgemm(
    a: CSR,
    b: CSR,
    *,
    algorithm: str = "esc",
    semiring: "str | Semiring" = PLUS_TIMES,
    sort_output: bool = True,
    nworkers: int | None = None,
) -> CSR:
    """Compute ``C = A (x) B`` across ``nworkers`` OS processes.

    Rows are split with the paper's flop-balanced scheduler so workers
    finish together even on skewed inputs.  The default ``esc`` kernel is
    the fastest executable one; any registered algorithm works.

    Notes
    -----
    Workers receive pickled copies of their A block and of all of B, so
    speedups require the per-block compute to dominate the one-time IPC
    cost — true for the scales where parallelism matters.
    """
    if a.ncols != b.nrows:
        raise ShapeError(f"inner dimensions differ: {a.shape} x {b.shape}")
    sr = get_semiring(semiring)
    if nworkers is None:
        nworkers = min(os.cpu_count() or 1, 8)
    if nworkers < 1:
        raise ConfigError(f"nworkers must be >= 1, got {nworkers}")
    if nworkers == 1 or a.nrows == 0:
        return spgemm(
            a, b, algorithm=algorithm, semiring=sr, sort_output=sort_output
        )
    partition = rows_to_threads(a, b, nworkers)
    blocks = [
        (int(partition.offsets[t]), int(partition.offsets[t + 1]))
        for t in range(nworkers)
    ]
    tasks = [
        (row_block(a, s, e), b, algorithm, sr.name, sort_output)
        for s, e in blocks
        if e > s
    ]
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        results = list(pool.map(_worker, tasks))

    # Stitch the block outputs back together.
    nrows = a.nrows
    indptr = np.zeros(nrows + 1, dtype=INDPTR_DTYPE)
    total = 0
    it = iter(results)
    block_results = []
    for s, e in blocks:
        if e <= s:
            block_results.append(None)
            continue
        bi, bc, bv = next(it)
        block_results.append((bi, bc, bv))
        indptr[s + 1 : e + 1] = total + bi[1:]
        total += int(bi[-1])
    out_indices = np.empty(total, dtype=INDEX_DTYPE)
    out_data = np.empty(total, dtype=VALUE_DTYPE)
    cursor = 0
    for blk in block_results:
        if blk is None:
            continue
        _, bc, bv = blk
        out_indices[cursor : cursor + len(bc)] = bc
        out_data[cursor : cursor + len(bv)] = bv
        cursor += len(bc)
    sortedness = sort_output or algorithm in ("heap", "esc")
    return CSR((nrows, b.ncols), indptr, out_indices, out_data, sorted_rows=sortedness)
