#!/usr/bin/env python
"""Markov clustering (MCL) of a modular graph — the A² scenario of §5.4.

"Markov clustering ... requires A² for a given doubly-stochastic similarity
matrix."  This example builds a planted-partition graph (dense communities,
sparse inter-community noise), clusters it with MCL — whose expansion step
is the SpGEMM this library optimizes — and scores the result against the
planted truth.

Run:  python examples/markov_clustering.py
"""

import numpy as np

from repro import csr_from_coo
from repro.apps import markov_cluster


def planted_partition(n_communities=6, size=25, p_in=0.5, p_out=0.01, seed=0):
    """A graph with dense communities and sparse noise between them."""
    rng = np.random.default_rng(seed)
    n = n_communities * size
    membership = np.repeat(np.arange(n_communities), size)
    block = membership[:, None] == membership[None, :]
    prob = np.where(block, p_in, p_out)
    upper = (rng.random((n, n)) < prob) & (np.triu(np.ones((n, n)), 1) > 0)
    rows, cols = np.nonzero(upper | upper.T)
    return csr_from_coo(n, n, rows, cols), membership


def pair_accuracy(labels, truth) -> float:
    """Rand index: fraction of vertex pairs both clusterings agree on."""
    same_label = labels[:, None] == labels[None, :]
    same_truth = truth[:, None] == truth[None, :]
    n = len(labels)
    mask = np.triu(np.ones((n, n), dtype=bool), 1)
    return float((same_label == same_truth)[mask].mean())


def main() -> None:
    graph, truth = planted_partition()
    print(
        f"planted-partition graph: {graph.nrows} vertices, "
        f"{graph.nnz // 2} edges, {truth.max() + 1} planted communities"
    )
    result = markov_cluster(
        graph, inflation=2.0, prune_threshold=1e-4, algorithm="hash"
    )
    print(
        f"MCL: {result.n_clusters} clusters in {result.iterations} iterations "
        f"(converged: {result.converged})"
    )
    acc = pair_accuracy(result.labels, truth)
    print(f"pairwise agreement with the planted communities: {acc:.1%}")
    sizes = np.bincount(result.labels)
    print(f"cluster sizes: {sorted(sizes.tolist(), reverse=True)}")

    print("\ninflation controls granularity:")
    for inflation in (1.4, 2.0, 3.5):
        r = markov_cluster(graph, inflation=inflation)
        print(f"  inflation {inflation:>3.1f} -> {r.n_clusters:>3d} clusters")


if __name__ == "__main__":
    main()
