#!/usr/bin/env python
"""Quickstart: multiply sparse matrices with every algorithm of the paper.

Covers the core public API in ~60 lines:

* building CSR matrices (random, R-MAT, from dense);
* `spgemm` with algorithm selection, sorted/unsorted output, semirings;
* the Table-4 recipe (`recommend` / `algorithm="auto"`);
* operation-count instrumentation (`KernelStats`).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KernelStats,
    available_algorithms,
    csr_from_dense,
    matrix_stats,
    recommend,
    spgemm,
)
from repro.rmat import g500_matrix


def main() -> None:
    # --- 1. build an input: a Graph500-style power-law matrix ------------
    a = g500_matrix(scale=10, edge_factor=8, seed=42)
    print(f"input: {a}")
    stats = matrix_stats("g500_s10", a)
    print(
        f"squaring it needs {stats.flop:,} multiplications and produces "
        f"{stats.nnz_c:,} nonzeros (compression ratio {stats.compression_ratio:.2f})"
    )

    # --- 2. every algorithm computes the same product --------------------
    reference = spgemm(a, a, algorithm="esc")
    for algorithm in available_algorithms():
        c = spgemm(a, a, algorithm=algorithm, nthreads=4)
        assert c.allclose(reference), algorithm
        print(f"  {algorithm:<14s} -> nnz={c.nnz:,} sorted={c.sorted_rows}")

    # --- 3. the paper's headline trick: skip the output sort -------------
    counters = KernelStats()
    spgemm(a, a, algorithm="hash", sort_output=False, stats=counters)
    print(
        f"\nhash kernel: {counters.flops:,} flops, "
        f"{counters.hash_probes:,} probes "
        f"(collision factor {counters.collision_factor():.2f}), "
        f"sort skipped ({counters.sorted_elements} elements sorted)"
    )

    # --- 4. ask the recipe (Table 4) which algorithm to use --------------
    decision = recommend(a, sort_output=False)
    print(
        f"\nrecipe says: use {decision.algorithm!r} — {decision.reason} "
        f"(CR={decision.compression_ratio:.2f}, skew={decision.skew:.1f})"
    )
    auto = spgemm(a, a, algorithm="auto", sort_output=False)
    assert auto.allclose(reference)

    # --- 5. semirings: boolean reachability in one call ------------------
    pattern = csr_from_dense((a.to_dense() != 0).astype(float))
    two_hop = spgemm(pattern, pattern, algorithm="hash", semiring="or_and")
    print(
        f"\nboolean A^2: {two_hop.nnz:,} vertex pairs connected by a 2-path "
        f"(values are exactly 0/1: {set(np.unique(two_hop.data)) <= {0.0, 1.0}})"
    )


if __name__ == "__main__":
    main()
