#!/usr/bin/env python
"""Multi-source BFS over a power-law graph — the §5.5 scenario, end to end.

The paper motivates the square x tall-skinny SpGEMM benchmark with
algorithms that "perform multiple breadth-first searches in parallel".
This example runs the real thing: 64 simultaneous BFS traversals of a
Graph500-style graph, expressed as boolean-semiring SpGEMMs, and reports
the level structure — then shows why *unsorted* output is the right choice
for this pipeline.

Run:  python examples/multi_source_bfs.py
"""

import numpy as np

from repro import KernelStats
from repro.apps import multi_source_bfs
from repro.rmat import g500_matrix


def main() -> None:
    scale, edge_factor, n_sources = 11, 8, 64
    graph = g500_matrix(scale, edge_factor, seed=7, symmetrize=True,
                        drop_diagonal=True)
    n = graph.nrows
    rng = np.random.default_rng(0)
    sources = rng.choice(n, size=n_sources, replace=False)
    print(f"graph: {n:,} vertices, {graph.nnz:,} edges (G500, scale {scale})")
    print(f"running {n_sources} BFS traversals simultaneously ...")

    levels = multi_source_bfs(graph, sources, algorithm="hash")

    reached = (levels >= 0).sum(axis=0)
    eccentricity = levels.max(axis=0)
    print(f"  mean vertices reached per search: {reached.mean():,.0f} / {n:,}")
    print(f"  max BFS depth over all searches:  {eccentricity.max()}")
    hist = np.bincount(levels[levels >= 0].ravel())
    print("  vertices per level (aggregated over searches):")
    for depth, count in enumerate(hist):
        print(f"    level {depth}: {'#' * max(1, int(40 * count / hist.max()))} {count:,}")

    # The frontier products only need membership, never ordering — this is
    # the paper's argument for unsorted SpGEMM.  Count the sort work saved:
    stats_sorted = KernelStats()
    stats_unsorted = KernelStats()
    from repro import spgemm
    from repro.matrix.ops import transpose
    from repro.rmat import tall_skinny_from_columns

    frontier = tall_skinny_from_columns(graph, n_sources, seed=1)
    at = transpose(graph)
    spgemm(at, frontier, algorithm="hash", semiring="or_and",
           sort_output=True, stats=stats_sorted)
    spgemm(at, frontier, algorithm="hash", semiring="or_and",
           sort_output=False, stats=stats_unsorted)
    print(
        f"\none frontier expansion sorts {stats_sorted.sorted_elements:,} "
        f"entries when sorted output is requested — all skippable "
        f"({stats_unsorted.sorted_elements} sorted in unsorted mode), "
        "which is why BFS pipelines run hash-unsorted."
    )


if __name__ == "__main__":
    main()
