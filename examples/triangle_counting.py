#!/usr/bin/env python
"""Triangle counting via the L·U wedge product — the §5.6 scenario.

Reproduces the paper's triangle-counting pipeline on a real graph workload:
degree reordering, triangular split A = L + U, the L·U SpGEMM, and the
elementwise mask — and shows what the degree reordering buys (it shrinks
flop(L·U), which is exactly why the paper applies it).

Run:  python examples/triangle_counting.py
"""

import numpy as np

from repro.apps import count_triangles, triangle_counts_per_vertex
from repro.matrix.ops import degree_reorder, triangular_split
from repro.matrix.stats import total_flop
from repro.rmat import g500_matrix


def main() -> None:
    graph = g500_matrix(11, 12, seed=3, symmetrize=True, drop_diagonal=True,
                        values="ones")
    n = graph.nrows
    print(f"graph: {n:,} vertices, {graph.nnz // 2:,} undirected edges")

    total = count_triangles(graph, algorithm="hash")
    print(f"triangles: {total:,}")

    per_vertex = triangle_counts_per_vertex(graph)
    assert per_vertex.sum() == 3 * total  # each triangle touches 3 vertices
    top = np.argsort(per_vertex)[-5:][::-1]
    print("top-5 vertices by triangle participation:")
    for v in top:
        print(f"  vertex {v:<8d} {per_vertex[v]:,} triangles "
              f"(degree {graph.row_nnz()[v]})")

    # What the degree reordering buys: flop(L·U) with and without it.
    plain_low, plain_up = triangular_split(graph.sort_rows())
    flop_plain = total_flop(plain_low, plain_up)
    reordered, _ = degree_reorder(graph, ascending=True)
    r_low, r_up = triangular_split(reordered.sort_rows())
    flop_reordered = total_flop(r_low, r_up)
    print(
        f"\nwedge-product work (flop of L·U):\n"
        f"  natural order:  {flop_plain:>12,}\n"
        f"  degree order:   {flop_reordered:>12,}  "
        f"({flop_plain / flop_reordered:.1f}x less work)"
    )
    print("degree reordering makes the lowest-degree vertex the wedge middle"
          " — the preprocessing the paper applies 'for optimal performance'.")


if __name__ == "__main__":
    main()
