#!/usr/bin/env python
"""A tour of the KNL/Haswell performance model — the paper in five minutes.

Walks through the machine simulator that regenerates the paper's figures:
microbenchmark curves (scheduling, allocator, MCDRAM), a mini algorithm
shoot-out on ER vs G500 inputs on both machines, strong scaling to 272
threads, and the sorted-vs-unsorted gap.

Run:  python examples/performance_tour.py
"""

from repro.machine import (
    HASWELL,
    KNL,
    MemoryMode,
    deallocation_cost,
    loop_scheduling_cost,
    stanza_bandwidth,
)
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.rmat import er_matrix, g500_matrix


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("1. Why the paper avoids dynamic scheduling (Fig. 2)")
    for machine in (KNL, HASWELL):
        st = loop_scheduling_cost(machine, "static", 2**19) * 1e3
        dy = loop_scheduling_cost(machine, "dynamic", 2**19) * 1e3
        print(f"  {machine.name:8s} empty loop of 2^19 iters: "
              f"static {st:7.3f} ms   dynamic {dy:7.3f} ms  ({dy / st:.0f}x)")

    section("2. Why scratch is freed per-thread (Fig. 4)")
    for scheme in ("single", "parallel"):
        c = deallocation_cost(KNL, 8 << 30, scheme=scheme, nthreads=256) * 1e3
        print(f"  freeing 8 GB, {scheme:8s}: {c:9.3f} ms")

    section("3. Why MCDRAM only helps dense-ish matrices (Fig. 5)")
    for stanza in (8, 64, 1024, 16384):
        ddr = stanza_bandwidth(KNL, stanza, MemoryMode.FLAT_DDR) / 1e9
        mcd = stanza_bandwidth(KNL, stanza, MemoryMode.CACHE) / 1e9
        print(f"  stanza {stanza:>6d} B: DDR {ddr:6.1f} GB/s   "
              f"MCDRAM-cache {mcd:6.1f} GB/s  ({mcd / ddr:.2f}x)")

    section("4. Algorithm shoot-out (mini Fig. 11/12)")
    algorithms = ("hash", "hashvec", "heap", "mkl", "mkl_inspector", "kokkos")
    for gname, gen in (("ER", er_matrix), ("G500", g500_matrix)):
        a = gen(13, 16, seed=1)
        q = ProblemQuantities.compute(a, a)
        print(f"  {gname} scale 13, edge factor 16 "
              f"(CR {q.compression_ratio:.2f}):")
        for machine in (KNL, HASWELL):
            cfg = SimConfig(machine=machine, sort_output=False)
            row = {
                alg: simulate_spgemm(alg, config=cfg, quantities=q).mflops
                for alg in algorithms
            }
            best = max(row, key=row.get)
            cells = "  ".join(f"{alg}={v:6.0f}" for alg, v in row.items())
            print(f"    {machine.name:8s} [MFLOPS] {cells}   <- best: {best}")

    section("5. Strong scaling on KNL (Fig. 13)")
    a = g500_matrix(13, 16, seed=2)
    q = ProblemQuantities.compute(a, a)
    base = simulate_spgemm(
        "hash", config=SimConfig(machine=KNL, nthreads=1), quantities=q
    ).seconds
    for t in (1, 8, 64, 68, 136, 272):
        r = simulate_spgemm(
            "hash", config=SimConfig(machine=KNL, nthreads=t), quantities=q
        )
        print(f"  {t:>4d} threads: {r.seconds * 1e3:8.2f} ms  "
              f"speedup {base / r.seconds:6.1f}x")

    section("6. The headline: skip the output sort")
    for alg in ("hash", "hashvec"):
        s = simulate_spgemm(
            alg, config=SimConfig(machine=KNL, sort_output=True), quantities=q
        ).seconds
        u = simulate_spgemm(
            alg, config=SimConfig(machine=KNL, sort_output=False), quantities=q
        ).seconds
        print(f"  {alg:8s}: sorted {s * 1e3:7.2f} ms  unsorted {u * 1e3:7.2f} ms"
              f"  -> {s / u:.2f}x from not sorting")


if __name__ == "__main__":
    main()
