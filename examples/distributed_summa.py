#!/usr/bin/env python
"""Sparse SUMMA: the distributed context the paper's kernels serve.

The hash/heap kernels of this paper are node-level engines for distributed
SpGEMM (the authors' Combinatorial BLAS).  This example distributes a graph
over growing 2-D process grids, runs the Sparse SUMMA schedule (the local
multiplies use the paper's hash kernel family via `esc` for speed), and
reads off the two facts that shape distributed SpGEMM design:

* per-rank communication shrinks ~1/sqrt(P) while total volume grows;
* power-law inputs create flop imbalance across ranks — which is why the
  node-level kernel underneath must also handle skew (the paper's G500
  results, one level down).

Run:  python examples/distributed_summa.py
"""

from repro import spgemm
from repro.distributed import sparse_summa
from repro.rmat import er_matrix, g500_matrix


def main() -> None:
    inputs = {
        "ER (uniform)": er_matrix(10, 8, seed=5),
        "G500 (power-law)": g500_matrix(10, 8, seed=5),
    }
    for name, a in inputs.items():
        print(f"\n=== {name}: {a.nrows:,} rows, {a.nnz:,} nonzeros ===")
        reference = spgemm(a, a, algorithm="esc")
        header = (
            f"{'grid':>6s} {'ranks':>6s} {'total comm':>12s} "
            f"{'per-rank':>10s} {'flop imbalance':>15s}"
        )
        print(header)
        print("-" * len(header))
        for p in (1, 2, 4, 6):
            c, report = sparse_summa(a, a, p, algorithm="esc")
            assert c.allclose(reference)  # the schedule is exact
            print(
                f"{p}x{p:<4d} {p * p:>6d} "
                f"{report.total_comm_bytes / 1e6:>10.2f}MB "
                f"{report.received.mean() / 1e6:>8.3f}MB "
                f"{report.flop_imbalance:>14.2f}x"
            )
    print(
        "\nreading: total volume grows with the grid (each block is "
        "broadcast to p-1 peers)\nwhile each rank's share falls — the "
        "classic 2-D trade.  The G500 column shows why\nthe node kernel "
        "below SUMMA must tolerate skew: hub blocks concentrate flop."
    )


if __name__ == "__main__":
    main()
