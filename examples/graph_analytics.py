#!/usr/bin/env python
"""A full graph-analytics pass over one network, every step on SpGEMM.

Runs the complete §1 application list on a single synthetic social-style
network: triangle census, clustering coefficients, betweenness centrality
(sampled), label-propagation communities, and Markov clustering — each
powered by the library's SpGEMM kernels with the semirings and masks the
operations call for.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.apps import (
    betweenness_centrality,
    clustering_coefficients,
    count_triangles,
    label_propagation,
    markov_cluster,
)
from repro.rmat import g500_matrix


def main() -> None:
    graph = g500_matrix(10, 10, seed=17, symmetrize=True, drop_diagonal=True,
                        values="ones")
    n = graph.nrows
    deg = graph.row_nnz()
    print(f"network: {n:,} vertices, {graph.nnz // 2:,} edges "
          f"(G500 pattern; max degree {deg.max()})")

    # --- triangles & clustering (masked L·U wedge product) ---------------
    tri = count_triangles(graph, masked=True)
    cc = clustering_coefficients(graph)
    print(f"\ntriangles: {tri:,}")
    print(f"mean clustering coefficient: {cc[deg > 1].mean():.4f}")

    # --- betweenness centrality (sampled batched Brandes) ----------------
    rng = np.random.default_rng(0)
    sample = rng.choice(n, size=64, replace=False)
    bc = betweenness_centrality(graph, sources=sample)
    top = np.argsort(bc)[-5:][::-1]
    print("\ntop-5 betweenness vertices (64-source sample):")
    for v in top:
        print(f"  vertex {v:<6d} bc={bc[v]:10.1f}  degree={deg[v]}")

    # --- communities: label propagation vs Markov clustering -------------
    lp = label_propagation(graph, seed=3)
    print(f"\nlabel propagation: {lp.n_communities} communities "
          f"in {lp.iterations} rounds (converged: {lp.converged})")
    sizes = np.bincount(lp.labels)
    print(f"  five largest: {sorted(sizes.tolist(), reverse=True)[:5]}")

    mcl = markov_cluster(graph, inflation=1.6, prune_threshold=1e-3)
    print(f"Markov clustering: {mcl.n_clusters} clusters "
          f"in {mcl.iterations} iterations")

    # hub vertices bridge communities: their clustering is low
    hubs = deg >= np.percentile(deg, 99)
    leaves = (deg > 1) & (deg <= np.percentile(deg, 50))
    if hubs.any() and leaves.any() and cc[leaves].mean() > 0:
        print(
            f"\nhub vs peripheral clustering coefficient: "
            f"{cc[hubs].mean():.4f} vs {cc[leaves].mean():.4f} "
            "(hubs bridge, periphery clusters — the power-law signature)"
        )


if __name__ == "__main__":
    main()
