#!/usr/bin/env python
"""Algebraic multigrid: the numerical-simulation face of SpGEMM.

The paper's introduction cites the AMG method as a major SpGEMM consumer —
the coarse-grid operator is the Galerkin triple product R·A·P.  This example
builds a two-level AMG hierarchy for a 2-D Poisson problem (the triple
product runs through the library's flop-optimal chain planner and hash
kernel), solves a system with V-cycles, and contrasts the convergence with
plain Jacobi smoothing.

Run:  python examples/amg_solver.py
"""

import numpy as np

from repro.apps.amg import _jacobi, amg_setup, two_level_solve
from repro.datasets import mesh2d
from repro.matrix.construct import identity
from repro.matrix.ops import add, spmv


def main() -> None:
    nx = 40
    a = add(mesh2d(nx, nx), identity(nx * nx, value=0.05))
    print(f"operator: 2-D Poisson on a {nx}x{nx} grid "
          f"({a.nrows:,} unknowns, {a.nnz:,} nonzeros)")

    hierarchy = amg_setup(a, theta=0.25)
    print(
        f"aggregation: {a.nrows:,} -> {hierarchy.coarse.nrows:,} unknowns "
        f"(coarsening factor {hierarchy.coarsening_factor:.1f})"
    )
    print(
        f"Galerkin product associated as {hierarchy.plan_render} "
        f"(flop saving over worst order: {hierarchy.plan_saving:.2f}x)"
    )

    rng = np.random.default_rng(7)
    x_exact = rng.random(a.nrows)
    b = spmv(a, x_exact)

    x, history = two_level_solve(hierarchy, b, tol=1e-10, max_cycles=60)
    print(f"\ntwo-level AMG: {len(history)} V-cycles to "
          f"residual {history[-1]:.2e}")
    err = np.linalg.norm(x - x_exact) / np.linalg.norm(x_exact)
    print(f"relative error vs the manufactured solution: {err:.2e}")

    print("\nresidual history (every 5th cycle):")
    for i in range(0, len(history), 5):
        bar = "#" * max(1, int(50 + 2.5 * np.log10(history[i])))
        print(f"  cycle {i + 1:>3d}: {history[i]:.3e} {bar}")

    # same smoothing budget, no coarse correction
    xj = np.zeros_like(b)
    for _ in range(2 * len(history)):
        xj = _jacobi(a, xj, b, 0.67, 1)
    jacobi_res = np.linalg.norm(b - spmv(a, xj)) / np.linalg.norm(b)
    print(
        f"\nplain Jacobi with the same smoothing budget stalls at "
        f"{jacobi_res:.2e} — the coarse-grid correction (two SpGEMMs at "
        f"setup) is what buys the {jacobi_res / history[-1]:.0e}x gap."
    )


if __name__ == "__main__":
    main()
