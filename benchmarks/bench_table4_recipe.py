"""Table 4 — the best-algorithm recipe, derived from the simulations.

Re-derives the paper's recipe empirically: for every scenario cell
(real data by compression ratio; synthetic data by edge factor and
pattern; A², L·U, tall-skinny; sorted/unsorted) the benchmark finds the
best-performing algorithm in the simulator and prints the derived table
next to the paper's Table 4, reporting the agreement.

The recipe module itself (:func:`repro.core.recipe.recommend`) hard-codes
the paper's table; this bench checks how much of it the model regenerates
independently.
"""

import pytest

from repro.core.recipe import recipe_table
from repro.datasets import load_suite
from repro.machine import KNL
from repro.matrix.ops import degree_reorder, triangular_split
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.rmat import er_matrix, g500_matrix, tall_skinny_pair

from _util import SUITE_MAX_N, emit, suite_quantities, suite_times

SORTED_SET = ("mkl", "heap", "hash", "hashvec")
UNSORTED_SET = ("mkl", "mkl_inspector", "kokkos", "hash", "hashvec")


def _best(q, sort_output, algorithms):
    cfg = SimConfig(machine=KNL, sort_output=sort_output)
    times = {
        alg: simulate_spgemm(alg, config=cfg, quantities=q).seconds
        for alg in algorithms
    }
    return min(times, key=times.get)


def _family(alg: str) -> str:
    return {"hash": "hash-family", "hashvec": "hash-family"}.get(alg, alg)


@pytest.fixture(scope="module")
def table4():
    derived = {}

    # --- Table 4(a): real data, by compression ratio --------------------
    # High-CR originals are mid-sized FEM problems: the shared suite cap is
    # representative.  The low-CR originals, however, are the collection's
    # LARGEST matrices (wb-edu 9.8M rows, delaunay_n24 16.8M): deriving
    # their cell at a 6k cap would let every accumulator fit in cache, so
    # the low-CR cell is derived from the graph proxies at a 60k cap
    # (large enough that a dense accumulator no longer fits KNL's 512 KB
    # per-core L2, as none of the originals would).
    qs = suite_quantities(SUITE_MAX_N)
    high_names = [n for n, q in qs.items() if q.compression_ratio > 2]
    low_graphs = ["webbase-1M", "wb-edu", "delaunay_n24", "mc2depi",
                  "patents_main", "scircuit", "mac_econ_fwd500", "m133-b3"]
    low_qs = {
        name: ProblemQuantities.compute(m, m)
        for name, m in load_suite(max_n=60_000, subset=low_graphs).items()
    }
    for cr_class, cells in (
        ("high", {n: qs[n] for n in high_names}),
        ("low", low_qs),
    ):
        for sort_output, algs in ((True, SORTED_SET), (False, UNSORTED_SET)):
            wins = {}
            for n, q in cells.items():
                best = _best(q, sort_output, algs)
                wins[best] = wins.get(best, 0) + 1
            tag = "sorted" if sort_output else "unsorted"
            derived[f"AxA {tag} {cr_class}-CR"] = max(wins, key=wins.get)

    # L x U sorted, by compression ratio of the wedge product
    lxu_by_class = {"high": {}, "low": {}}
    subset = ["mc2depi", "patents_main", "scircuit", "webbase-1M",
              "cage12", "cant", "consph", "offshore", "filter3D"]
    for name, m in load_suite(max_n=SUITE_MAX_N, subset=subset).items():
        r, _ = degree_reorder(m)
        low, up = triangular_split(r.sort_rows())
        q = ProblemQuantities.compute(low, up)
        if q.total_flop == 0:
            continue
        best = _best(q, True, SORTED_SET)
        cls = "high" if q.compression_ratio > 2 else "low"
        lxu_by_class[cls][best] = lxu_by_class[cls].get(best, 0) + 1
    for cls, wins in lxu_by_class.items():
        if wins:
            derived[f"LxU sorted {cls}-CR"] = max(wins, key=wins.get)

    # --- Table 4(b): synthetic data -------------------------------------
    # the paper uses scale 16; uniform (ER) cells genuinely need it (the
    # cache crossover sits at scale 16), skewed cells stabilize earlier and
    # scale 13 keeps the symbolic analysis cheap
    for density, ef in (("sparse", 4), ("dense", 16)):
        for pattern, gen in (("uniform", er_matrix), ("skewed", g500_matrix)):
            scale = 16 if pattern == "uniform" else 13
            m = gen(scale, ef, seed=ef)
            q = ProblemQuantities.compute(m, m)
            for sort_output, algs in ((True, SORTED_SET), (False, UNSORTED_SET)):
                tag = "sorted" if sort_output else "unsorted"
                derived[f"AxA {tag} {density} {pattern}"] = _best(
                    q, sort_output, algs
                )
    # tall-skinny (skewed only, as in the paper's table)
    a, b = tall_skinny_pair(13, 11, seed=1)
    q = ProblemQuantities.compute(a, b)
    derived["TallSkinny sorted skewed"] = _best(q, True, SORTED_SET)
    derived["TallSkinny unsorted skewed"] = _best(q, False, UNSORTED_SET)

    # --- the paper's cells, for comparison ------------------------------
    paper = {
        "AxA sorted high-CR": "hash",
        "AxA sorted low-CR": "hash",
        "AxA unsorted high-CR": "mkl_inspector",
        "AxA unsorted low-CR": "hash",
        "LxU sorted high-CR": "hash",
        "LxU sorted low-CR": "heap",
        "AxA sorted sparse uniform": "heap",
        "AxA sorted sparse skewed": "heap",
        "AxA sorted dense uniform": "heap",
        "AxA sorted dense skewed": "hash",
        "AxA unsorted sparse uniform": "hashvec",
        "AxA unsorted sparse skewed": "hashvec",
        "AxA unsorted dense uniform": "hashvec",
        "AxA unsorted dense skewed": "hash",
        "TallSkinny sorted skewed": "hashvec",
        "TallSkinny unsorted skewed": "hash",
    }

    lines = ["Table 4: derived recipe vs the paper's",
             f"{'scenario':<30s} {'derived':<16s} {'paper':<16s} match"]
    lines.append("-" * 72)
    agree = family_agree = total = 0
    for key in paper:
        got = derived.get(key, "-")
        exact = got == paper[key]
        fam = _family(got) == _family(paper[key])
        agree += exact
        family_agree += fam
        total += 1
        lines.append(
            f"{key:<30s} {got:<16s} {paper[key]:<16s} "
            f"{'yes' if exact else ('family' if fam else 'NO')}"
        )
    lines.append(f"\nexact agreement: {agree}/{total}; "
                 f"up-to-hash-family agreement: {family_agree}/{total}")
    lines.append("\nThe paper's recipe as shipped in repro.core.recipe:")
    lines.append(recipe_table())
    emit("table4_recipe", "\n".join(lines))
    return derived, paper, agree, family_agree, total


def test_table4_recipe_agreement(table4, benchmark):
    derived, paper, agree, family_agree, total = table4
    # the headline cells must reproduce exactly
    assert derived["AxA sorted dense skewed"] == "hash"
    assert derived["AxA unsorted high-CR"] == "mkl_inspector"
    assert derived["AxA unsorted low-CR"] in ("hash", "hashvec")
    assert _family(derived["TallSkinny unsorted skewed"]) == "hash-family"
    # overall: at least ~2/3 of the table agrees up to hash-vs-hashvec
    assert family_agree >= (2 * total) // 3
    benchmark(lambda: _family("hashvec"))
