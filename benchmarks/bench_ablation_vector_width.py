"""Ablation — vector-register width in HashVector probing (§4.2.2).

Sweeps the simulated SIMD width from scalar (32-bit: 1 lane) to AVX-512
(16 lanes) on both machines, at two collision regimes, quantifying the
paper's trade-off: "HashVector can reduce the number of probing caused by
hash collision ... however, HashVector requires a few more instructions for
each check.  Thus, HashVector may degrade the performance when the
collisions in Hash SpGEMM are rare."
"""

import dataclasses

import pytest

from repro.machine import HASWELL, KNL
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.profiling import render_series
from repro.rmat import er_matrix, g500_matrix

from _util import emit

WIDTHS = [32, 64, 128, 256, 512]  # bits -> 1/2/4/8/16 lanes


@pytest.fixture(scope="module")
def ablation():
    # collision-light (ER sparse) and collision-heavy (G500 dense) inputs
    inputs = {
        "ER ef4 (rare collisions)": er_matrix(12, 4, seed=1),
        "G500 ef16 (heavy collisions)": g500_matrix(12, 16, seed=1),
    }
    panels = {}
    for iname, a in inputs.items():
        q = ProblemQuantities.compute(a, a)
        series = {}
        for machine in (KNL, HASWELL):
            scalar_hash = simulate_spgemm(
                "hash",
                config=SimConfig(machine=machine, sort_output=False),
                quantities=q,
            ).seconds
            vals = []
            for bits in WIDTHS:
                m = dataclasses.replace(machine, vector_bits=bits)
                t = simulate_spgemm(
                    "hashvec",
                    config=SimConfig(machine=m, sort_output=False),
                    quantities=q,
                ).seconds
                vals.append(scalar_hash / t)  # speedup over scalar Hash
            series[machine.name] = vals
        panels[iname] = series
        emit(
            f"ablation_vecwidth_{iname.split()[0].lower()}",
            render_series(
                f"Ablation: HashVector speedup over scalar Hash — {iname}",
                "vector bits", WIDTHS, series,
            ),
        )
    return panels


def test_vector_width_tradeoff(ablation, benchmark):
    heavy = ablation["G500 ef16 (heavy collisions)"]
    light = ablation["ER ef4 (rare collisions)"]
    for machine_name in ("KNL", "Haswell"):
        h, l = heavy[machine_name], light[machine_name]
        # wider registers help more when collisions are heavy
        assert h[-1] > h[0]
        # the benefit is larger in the heavy regime than the light one
        assert (h[-1] / h[0]) > (l[-1] / l[0])
        # 1-lane "vectorized" probing is pure overhead: never faster than
        # scalar Hash
        assert l[0] <= 1.02 and h[0] <= 1.02

    a = er_matrix(9, 4, seed=1)
    q = ProblemQuantities.compute(a, a)
    benchmark(
        simulate_spgemm, "hashvec",
        config=SimConfig(machine=KNL, sort_output=False), quantities=q,
    )
