"""Ablation — column-blocked SPA vs plain SPA vs Hash (Patwary et al.).

The paper's §2 cites Patwary's observation that blocking the SPA by columns
keeps it cache-resident.  This ablation sweeps the matrix dimension and
shows the crossover the extension's cost model encodes:

* small matrices — the plain SPA already fits in cache; blocking only adds
  re-streaming passes and per-block overheads;
* large matrices — the plain SPA thrashes (the MKL-family failure mode of
  Fig. 12) while the blocked variant keeps its accumulator cache-resident
  at the cost of extra streaming, and overtakes it.
"""

import pytest

from repro.machine import KNL
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.profiling import render_series
from repro.rmat import er_matrix

from _util import emit

SCALES = list(range(10, 18))


@pytest.fixture(scope="module")
def ablation():
    series = {"spa (plain)": [], "blocked_spa": [], "hash (unsorted)": []}
    for scale in SCALES:
        a = er_matrix(scale, 16, seed=scale)
        q = ProblemQuantities.compute(a, a)
        cfg = SimConfig(machine=KNL)
        series["spa (plain)"].append(
            simulate_spgemm("spa", config=cfg, quantities=q).mflops
        )
        series["blocked_spa"].append(
            simulate_spgemm("blocked_spa", config=cfg, quantities=q).mflops
        )
        series["hash (unsorted)"].append(
            simulate_spgemm(
                "hash", config=cfg.with_(sort_output=False), quantities=q
            ).mflops
        )
    emit(
        "ablation_blocked_spa",
        render_series(
            "Ablation: blocked vs plain SPA (ER, ef 16, KNL) [MFLOPS]",
            "scale", SCALES, series,
        ),
    )
    return series


def test_blocked_spa_payoff(ablation, benchmark):
    plain = ablation["spa (plain)"]
    blocked = ablation["blocked_spa"]
    # small matrices: both SPAs are cache-resident; the gap is modest
    assert plain[0] > 0.7 * blocked[0]
    # large matrices: blocking clearly wins once the plain SPA leaves the
    # cache (the Fig. 12 MKL-collapse regime)
    assert blocked[-2] > 1.25 * plain[-2]
    assert blocked[-1] > 1.15 * plain[-1]
    # the *relative* advantage grows from the small end to the large end
    assert blocked[-2] / plain[-2] > blocked[0] / plain[0]
    # blocked SPA stays the same order of magnitude as hash (a credible
    # competitor, which is Patwary's claim)
    assert blocked[-1] > 0.3 * ablation["hash (unsorted)"][-1]

    a = er_matrix(10, 16, seed=0)
    q = ProblemQuantities.compute(a, a)
    benchmark(
        simulate_spgemm, "blocked_spa", config=SimConfig(machine=KNL),
        quantities=q,
    )
