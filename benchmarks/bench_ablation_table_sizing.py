"""Ablation — the Fig. 7 hash-table sizing rule, measured on the real kernel.

The paper sizes each thread's table as the minimum power of two strictly
greater than the thread's max per-row flop, clipped to the column count.
This ablation runs the *instrumented executable kernel* with the final
table size scaled down/up and measures probe counts directly.

Two findings, both properties of the paper's design:

1. with an odd multiplicative hash constant, ``key * c mod 2^n`` is a
   bijection, so as soon as the table reaches the column count *no two
   distinct columns can collide at all* — the rule's clip-to-Ncol bound is
   exactly the collision-free point for mid-sized matrices;
2. tables squeezed to their safety floor (just above the largest output
   row) pay a measurably higher collision factor, while quadrupling the
   rule's size buys nothing and costs 4x the scratch memory.
"""

import numpy as np
import pytest

from repro import KernelStats
from repro.core.accumulators import HashAccumulator
from repro.core.hash_spgemm import hash_spgemm
from repro.profiling import render_series
from repro.rmat import g500_matrix

from _util import emit

# Aside discovered while building this ablation: FEM-style inputs with
# *consecutive* column runs probe collision-free at any load — an odd
# multiplicative constant is a bijection on Z_{2^n}, so runs of consecutive
# keys never collide.  The study therefore uses G500 inputs, whose column
# sets are effectively random.
SCALE_FACTORS = [1 / 16, 1.0, 4.0]
NTHREADS = 8


def _measure_collision_factor(a, size_scale: float) -> "tuple[float, float]":
    """Run the real hash kernel with the *final* table size scaled; return
    (collision factor, total table entries allocated).

    The paper's rule clips the capacity to ncols before rounding up, so
    scaling the pre-clip capacity would be a no-op for skewed inputs; the
    ablation therefore scales the post-rule size.  A safety floor (the
    largest output row, known from the symbolic oracle) keeps undersized
    tables from overflowing — linear probing needs one free slot.
    """
    import repro.core.hash_spgemm as hs
    from repro.core.accumulators import lowest_p2
    from repro.core.scheduler import rows_to_threads
    from repro.core.symbolic import symbolic_row_nnz

    # Per-thread safety floors: linear probing needs a free slot, so each
    # thread's table must exceed the largest output row it owns.  The hash
    # kernel constructs exactly one table per thread, in thread order (its
    # symbolic loop), which lets the floors be handed out sequentially.
    nnz_c = symbolic_row_nnz(a, a)
    part = rows_to_threads(a, a, NTHREADS)
    floors = []
    for tid in range(NTHREADS):
        worst = 0
        for lo, hi in part.rows_of(tid):
            if hi > lo:
                worst = max(worst, int(nnz_c[lo:hi].max(initial=0)))
        floors.append(lowest_p2(worst + 1))
    floor_iter = iter(floors)
    original = hs.HashAccumulator
    allocated = 0.0

    class ScaledTable(HashAccumulator):
        def __init__(self, capacity, ncols):
            nonlocal allocated
            super().__init__(capacity, ncols)
            scaled = lowest_p2(max(int(self.size * size_scale), 1))
            self.size = max(scaled, next(floor_iter))
            self.mask = self.size - 1
            self.keys = np.full(self.size, -1, dtype=np.int64)
            self.vals = np.zeros(self.size, dtype=np.float64)
            allocated += self.size

    hs.HashAccumulator = ScaledTable
    try:
        stats = KernelStats()
        hash_spgemm(a, a, sort_output=False, partition=part, stats=stats)
        return stats.collision_factor(), allocated
    finally:
        hs.HashAccumulator = original


@pytest.fixture(scope="module")
def ablation():
    # sparse output + large column space: the only regime where tables
    # smaller than ncols are safe, hence where collisions can exist
    a = g500_matrix(13, 4, seed=2)
    factors, entries = [], []
    for s in SCALE_FACTORS:
        c, alloc = _measure_collision_factor(a, s)
        factors.append(c)
        entries.append(alloc)
    emit(
        "ablation_table_sizing",
        render_series(
            "Ablation: hash-table size scale vs measured collision factor "
            "(G500 scale 13, ef 4, real kernel)",
            "capacity scale", SCALE_FACTORS,
            {"collision factor": factors,
             "table entries (x1k)": [e / 1e3 for e in entries]},
        ),
    )
    return factors, entries


def test_table_sizing_rule(ablation, benchmark):
    factors, entries = ablation
    baseline = factors[SCALE_FACTORS.index(1.0)]
    # finding 1: the paper's rule is collision-free here (bijective hashing
    # once the table covers the column space)
    assert baseline == pytest.approx(1.0)
    # finding 2: floor-level tables pay a real probing penalty
    assert factors[0] > 1.3 * baseline
    # quadrupling the table buys nothing ...
    assert factors[-1] == pytest.approx(baseline)
    # ... while memory grows ~linearly with the scale
    assert entries[-1] > 2.5 * entries[SCALE_FACTORS.index(1.0)]
    # collision factor is monotone non-increasing in table size
    assert all(b <= a * 1.001 for a, b in zip(factors, factors[1:]))

    a = g500_matrix(8, 8, seed=1)
    benchmark(_measure_collision_factor, a, 1.0)
