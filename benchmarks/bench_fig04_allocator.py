"""Figure 4 — cost of deallocation on KNL.

Regenerates: deallocation cost (ms) vs block size for the C++ and TBB
allocators under the "single" and "parallel" (256-thread) schemes.  Paper
shape: single deallocation explodes past the allocator threshold (>100 ms
for 1 GB); the parallel scheme stays pooled until 8 GB (C++) / 64 GB (TBB)
but costs more than single for small blocks.
"""

import pytest

from repro.machine import KNL, deallocation_cost
from repro.profiling import render_series

from _util import emit

SIZE_EXPONENTS = list(range(21, 37, 2))  # 2 MB .. 64 GB
NTHREADS = 256  # the paper's Fig. 4 thread count


@pytest.fixture(scope="module")
def figure4():
    xs = [2**k for k in SIZE_EXPONENTS]
    series = {}
    for allocator in ("cpp", "tbb"):
        for scheme in ("single", "parallel"):
            series[f"{allocator.upper()} ({scheme})"] = [
                deallocation_cost(
                    KNL, size, allocator=allocator, scheme=scheme,
                    nthreads=NTHREADS,
                ) * 1e3
                for size in xs
            ]
    emit(
        "fig04_allocator",
        render_series(
            "Figure 4: deallocation cost on KNL [ms] (256 threads)",
            "size [bytes]", [f"{x >> 20}MB" for x in xs], series, log_y=True,
        ),
    )
    return xs, series


def test_fig04_thresholds_and_crossovers(figure4, benchmark):
    xs, series = figure4
    idx = {x: i for i, x in enumerate(xs)}
    # >100 ms to free 1 GB single (both allocators fall back to munmap)
    assert series["CPP (single)"][idx[2**31]] > 100
    assert series["TBB (single)"][idx[2**31]] > 100
    # parallel jumps at 8 GB for C++ (per-thread share hits 32 MB) ...
    assert series["CPP (parallel)"][idx[2**33]] > 10 * series["CPP (parallel)"][idx[2**31]]
    # ... but TBB parallel stays pooled through 32 GB (256 MB threshold)
    assert series["TBB (parallel)"][idx[2**35]] < 1.0
    # parallel worse than single for small blocks
    assert series["TBB (parallel)"][0] > series["TBB (single)"][0]
    # parallel >50x better than single for huge blocks
    assert series["TBB (single)"][-1] > 50 * series["TBB (parallel)"][-1]
    benchmark(
        deallocation_cost, KNL, 2**33, allocator="tbb", scheme="parallel",
        nthreads=NTHREADS,
    )
