"""Amortized inspector–executor speedup; writes ``BENCH_plan.json``.

The plan layer's bargain is MKL-inspector's (§4.1, Table 3): pay the
symbolic phase once, replay numeric-only while the sparsity pattern holds.
This bench measures, on this machine, what that buys per kernel/engine:

* ``fresh_seconds`` — one full ``spgemm`` call (symbolic + numeric + sort);
* ``inspect_seconds`` — one :func:`repro.core.plan.inspect`;
* ``execute_seconds`` — one :meth:`SpgemmPlan.execute` (numeric-only);
* ``speedup_at[k]`` — ``fresh / ((inspect + k * execute) / k)``, the
  amortized per-product gain after ``k`` repeated executions.

The batched engine's execute skips the coordinate sort entirely (the
dominant fresh-call cost), so its curve saturates high; the faithful
engine's execute skips only the scalar symbolic pass, bounding it near 2x.
Every executed product is asserted bit-identical to its fresh counterpart.
"""

import os

import numpy as np

from _util import record_json, time_call
from repro import spgemm
from repro.core.plan import PlanCache, inspect as inspect_plan
from repro.rmat import er_matrix

EDGE_FACTOR = 8

#: Matrix scale for the plan-reuse record (the ISSUE's acceptance bar is a
#: >= 2x amortized hash-family speedup at k >= 8 on scale >= 14; CI smoke
#: runs use a smaller scale via this knob).
PLAN_SCALE = int(os.environ.get("REPRO_BENCH_PLAN_SCALE", "14"))

REPEAT_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: (algorithm, engine, warmup, repeats) — the scalar faithful kernels get
#: single-shot timing (one call is already seconds at scale 14), the
#: vectorized paths get best-of-3.
CODES = (
    ("hash", "faithful", 0, 1),
    ("hash", "fast", 1, 3),
    ("hashvec", "fast", 1, 3),
    ("spa", "fast", 1, 3),
    ("esc", "fast", 1, 3),
)


def _assert_bit_identical(got, want):
    assert np.array_equal(got.indptr, want.indptr)
    assert np.array_equal(got.indices, want.indices)
    assert np.array_equal(got.data.view(np.uint64), want.data.view(np.uint64))


def test_plan_reuse_record():
    """Fresh vs inspect-once/execute-k for every plan-capable code path."""
    m = er_matrix(PLAN_SCALE, EDGE_FACTOR, seed=1)
    entries = []
    out_nnz = 0
    for algorithm, engine, warmup, repeats in CODES:
        fresh_s, fresh_all, fresh_c = time_call(
            spgemm, m, m, algorithm=algorithm, engine=engine,
            warmup=warmup, repeats=repeats,
        )
        t_inspect, _, plan = time_call(
            inspect_plan, m, m, algorithm=algorithm, engine=engine,
            warmup=0, repeats=1,
        )
        exec_s, exec_all, exec_c = time_call(
            plan.execute, m, m, warmup=warmup, repeats=repeats,
        )
        _assert_bit_identical(exec_c, fresh_c)
        out_nnz = fresh_c.nnz
        speedup_at = {
            k: fresh_s / ((t_inspect + k * exec_s) / k) for k in REPEAT_COUNTS
        }
        entries.append(
            {
                "algorithm": algorithm,
                "engine": engine,
                "mode": plan.mode,
                "fresh_seconds": fresh_s,
                "fresh_samples": fresh_all,
                "inspect_seconds": t_inspect,
                "execute_seconds": exec_s,
                "execute_samples": exec_all,
                "speedup_at": speedup_at,
                "bit_identical": True,
            }
        )

    # The cache path adds only a fingerprint + dict probe per hit.
    cache = PlanCache()
    for _ in range(4):
        spgemm(m, m, algorithm="hash", engine="fast", plan_cache=cache)
    assert (cache.misses, cache.hits) == (1, 3)

    record_json(
        "BENCH_plan",
        {
            "benchmark": "spgemm plan reuse: fresh vs inspect-once/execute-k",
            "matrix": f"er(scale={PLAN_SCALE}, edge_factor={EDGE_FACTOR})",
            "nrows": m.nrows,
            "nnz": m.nnz,
            "output_nnz": out_nnz,
            "repeat_counts": list(REPEAT_COUNTS),
            "entries": entries,
            "cache_probe": {"misses": cache.misses, "hits": cache.hits},
        },
        mirror_repo_root=True,
    )
    if PLAN_SCALE >= 14:
        for algorithm in ("hash", "hashvec"):
            best = max(
                e["speedup_at"][8] for e in entries if e["algorithm"] == algorithm
            )
            assert best >= 2.0, (
                f"{algorithm} amortized speedup {best:.2f}x at k=8 "
                "below the 2x bar"
            )
