"""Served SpGEMM under open-loop load; writes ``BENCH_serve.json``.

The server's bargain (docs/serving.md) is the plan layer's, socialized:
one process-wide :class:`~repro.core.plan.PlanCache` answers every
tenant's repeated-structure traffic numeric-only, no client coordination
required.  This bench drives that claim end to end:

* **open-loop traffic** — each tenant pipelines its whole job schedule
  onto the wire up front (sends are not gated on completions, so queue
  wait is measured, not hidden) and then collects out-of-order responses
  by id;
* **repeated structures** — the schedule cycles a small set of operand
  structures across tenants, the cache-hit regime the iterative apps
  (AMG, MCL, BFS batches) produce in practice;
* **throughput + latency** — jobs/s over the wall, with client-side
  p50/p99 send-to-response latencies and the server's own admission-to-
  completion percentiles recorded side by side;
* **plan-cache hit rate** — asserted > 50% (first touch per structure
  misses, everything after hits);
* **bit-identity** — one served product per structure is compared to a
  direct in-process ``spgemm`` at the raw-bytes level.
"""

import os
import threading
import time

import numpy as np

from _util import record_json
from repro import Client, serve_in_thread, spgemm
from repro.core.options import SpgemmOptions
from repro.rmat import er_matrix, g500_matrix
from repro.serve import build_job, csr_from_wire, decode_message, encode_message

#: Matrix scale for the serving record (CI smoke runs shrink it).
SERVE_SCALE = int(os.environ.get("REPRO_BENCH_SERVE_SCALE", "10"))

EDGE_FACTOR = 8
TENANTS = ("alice", "bob", "carol")
JOBS_PER_TENANT = 24

#: Every job uses the same plan-capable options, so cache keys differ only
#: by operand structure.
OPTIONS = SpgemmOptions(algorithm="hash", engine="fast", sort_output=True)


def _structures():
    """The repeated operand structures the tenants cycle through."""
    return {
        "er_a": er_matrix(SERVE_SCALE, EDGE_FACTOR, seed=11),
        "er_b": er_matrix(SERVE_SCALE, EDGE_FACTOR, seed=22),
        "g500": g500_matrix(scale=SERVE_SCALE - 1, edge_factor=EDGE_FACTOR, seed=33),
    }


def _tenant_load(host, port, tenant, mats, out, errs):
    """Pipeline one tenant's schedule; record per-job wire latencies."""
    import socket

    names = sorted(mats)
    try:
        with socket.create_connection((host, port), timeout=120.0) as sock:
            rfile = sock.makefile("rb")
            sent = {}
            for i in range(JOBS_PER_TENANT):
                name = names[i % len(names)]
                m = mats[name]
                job = build_job(
                    "spgemm", job_id=f"{tenant}-{i}", tenant=tenant,
                    a=m, b=m, options=OPTIONS, deadline_ms=120_000,
                )
                frame = encode_message(job)
                sent[job["id"]] = time.perf_counter()
                sock.sendall(frame)
            for _ in range(JOBS_PER_TENANT):
                resp = decode_message(rfile.readline())
                t1 = time.perf_counter()
                assert resp.get("ok"), resp.get("error")
                out.append((resp["id"], (t1 - sent[resp["id"]]) * 1000.0))
    except Exception as exc:  # repro-lint: disable=overbroad-except — thread boundary; re-raised in the main thread below
        errs.append(exc)


def _percentile(values, q):
    """Nearest-rank percentile, matching the server's reservoir."""
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def test_serve_record():
    """Open-loop multi-tenant traffic against a live server."""
    mats = _structures()
    total_jobs = len(TENANTS) * JOBS_PER_TENANT

    with serve_in_thread(
        concurrency=2, max_queue_depth=total_jobs + 8,
        default_deadline_ms=300_000, plan_cache_size=16,
    ) as handle:
        # Load phase: every tenant pipelines its schedule concurrently.
        latencies, errs = [], []
        threads = [
            threading.Thread(
                target=_tenant_load,
                args=(handle.host, handle.port, t, mats, latencies, errs),
            )
            for t in TENANTS
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t0
        if errs:
            raise errs[0]
        assert len(latencies) == total_jobs

        # Identity phase: one served product per structure vs direct.
        with Client(handle.host, handle.port, tenant="verify") as cli:
            for name, m in mats.items():
                job = build_job(
                    "spgemm", job_id=f"verify-{name}", tenant="verify",
                    a=m, b=m, options=OPTIONS,
                )
                served = csr_from_wire(cli.submit(job)["result"]["c"])
                direct = spgemm(m, m, OPTIONS)
                assert np.array_equal(served.indptr, direct.indptr)
                assert np.array_equal(served.indices, direct.indices)
                assert served.data.tobytes() == direct.data.tobytes()
            snap = cli.stats()
        clean = handle.stop()

    assert clean, "drain was not clean"
    counters = snap["counters"]
    assert counters["completed"] == total_jobs + len(mats), counters
    assert counters["failed"] == 0, counters
    hit_rate = snap["plan_cache"]["hit_rate"]
    assert hit_rate > 0.5, snap["plan_cache"]

    lat_ms = [ms for _, ms in latencies]
    record_json(
        "BENCH_serve",
        {
            "benchmark": "served spgemm: open-loop multi-tenant traffic",
            "matrices": {
                name: {"nrows": m.nrows, "nnz": m.nnz}
                for name, m in mats.items()
            },
            "scale": SERVE_SCALE,
            "options": OPTIONS.to_wire(),
            "tenants": list(TENANTS),
            "jobs_per_tenant": JOBS_PER_TENANT,
            "total_jobs": total_jobs,
            "wall_seconds": wall_s,
            "throughput_jobs_per_s": total_jobs / wall_s,
            "client_latency_ms": {
                "p50": _percentile(lat_ms, 50),
                "p99": _percentile(lat_ms, 99),
                "max": max(lat_ms),
            },
            "server_latency_ms": snap["latency_ms"],
            "plan_cache": snap["plan_cache"],
            "counters": counters,
            "by_tenant": snap["tenants"],
            "bit_identical": True,
            "clean_drain": clean,
        },
        mirror_repo_root=True,
    )
