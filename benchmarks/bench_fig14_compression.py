"""Figure 14 — performance vs compression ratio on the real-matrix suite.

Regenerates: MFLOPS of the sorted-world codes (left panel) and the
unsorted-world codes (right panel) squaring each of the 26 SuiteSparse
proxies, ordered by compression ratio (flop / nnz(C)), on KNL.

Paper shape: Heap is flat regardless of compression ratio; MKL improves
with compression ratio (and is hurt by the low-CR graph matrices); Hash is
strong across the range; MKL-inspector shines at high CR in the unsorted
world; Kokkos trails.
"""

import numpy as np
import pytest

from repro.profiling import render_series

from _util import SUITE_MAX_N, emit, suite_quantities, suite_times


def _panel(sort_output: bool):
    qs = suite_quantities(SUITE_MAX_N)
    times = suite_times("KNL", sort_output, SUITE_MAX_N)
    order = sorted(qs, key=lambda n: qs[n].compression_ratio)
    crs = [qs[n].compression_ratio for n in order]
    series = {
        label: [2.0 * qs[n].total_flop / times[label][n] / 1e6 for n in order]
        for label in times
    }
    return order, crs, series


@pytest.fixture(scope="module")
def figure14():
    panels = {}
    for sort_output, tag in ((True, "sorted"), (False, "unsorted")):
        order, crs, series = _panel(sort_output)
        panels[tag] = (order, crs, series)
        xs = [f"{cr:.1f}" for cr in crs]
        emit(
            f"fig14_compression_{tag}",
            render_series(
                f"Figure 14 ({tag}): MFLOPS vs compression ratio, "
                f"26 proxies, KNL (max_n={SUITE_MAX_N})",
                "compression", xs, series, log_y=True,
            ),
        )
    return panels


def _slope(xs, ys):
    """Least-squares slope of log(y) against log(x)."""
    lx, ly = np.log(xs), np.log(ys)
    return float(np.polyfit(lx, ly, 1)[0])


def test_fig14_compression_trends(figure14, benchmark):
    order, crs, sorted_series = figure14["sorted"]
    _, _, unsorted_series = figure14["unsorted"]

    # "The performance of Heap is stable regardless of compression ratio":
    # its log-log slope is the flattest of the sorted codes.
    slopes = {label: _slope(crs, vals) for label, vals in sorted_series.items()}
    assert abs(slopes["Heap"]) <= min(abs(s) for s in slopes.values()) + 0.15
    # "MKL gets better performance with higher compression ratio"
    assert slopes["MKL"] > 0.2
    # "Hash outperforms MKL on most of matrices"
    hash_wins = sum(
        sorted_series["Hash"][i] > sorted_series["MKL"][i]
        for i in range(len(order))
    )
    assert hash_wins > 0.6 * len(order)
    # low-CR half: Hash beats MKL on every one of the lowest-CR matrices
    low_half = range(len(order) // 3)
    assert all(
        sorted_series["Hash"][i] > sorted_series["MKL"][i] for i in low_half
    )
    # unsorted world: "MKL-inspector shows significant improvement especially
    # for the matrices with high compression ratio"
    hi = len(order) - 1
    assert unsorted_series["MKL-inspector"][hi] > unsorted_series["MKL"][hi]
    # "KokkosKernels ... underperforms other kernels in this test": worst or
    # second-worst average rank among unsorted codes
    mean_rank = {}
    for label in unsorted_series:
        ranks = []
        for i in range(len(order)):
            vals = sorted(
                (unsorted_series[other][i] for other in unsorted_series),
                reverse=True,
            )
            ranks.append(vals.index(unsorted_series[label][i]))
        mean_rank[label] = np.mean(ranks)
    worst_two = sorted(mean_rank, key=mean_rank.get)[-2:]
    assert "Kokkos" in worst_two

    benchmark(lambda: suite_times("KNL", True, SUITE_MAX_N))
