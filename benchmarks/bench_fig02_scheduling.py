"""Figure 2 — OpenMP scheduling cost on Haswell and KNL.

Regenerates the microbenchmark: cost (ms) of an empty parallel loop under
static/dynamic/guided scheduling for 2^5..2^19 iterations, on both machines.
Paper shape: static flat and cheap; dynamic linear in iterations and much
worse on KNL; guided tracking dynamic (especially on KNL).
"""

import pytest

from repro.machine import HASWELL, KNL, loop_scheduling_cost
from repro.profiling import render_series

from _util import emit

ITER_EXPONENTS = list(range(5, 20))


@pytest.fixture(scope="module")
def figure2():
    xs = [2**k for k in ITER_EXPONENTS]
    series = {}
    for machine in (KNL, HASWELL):
        for policy in ("static", "dynamic", "guided"):
            series[f"{machine.name} {policy}"] = [
                loop_scheduling_cost(machine, policy, n) * 1e3 for n in xs
            ]
    emit(
        "fig02_scheduling",
        render_series(
            "Figure 2: OpenMP scheduling cost [ms]",
            "#iterations", xs, series, log_y=True,
        ),
    )
    return xs, series


def test_fig02_static_flat_dynamic_linear(figure2, benchmark):
    xs, series = figure2
    # static stays within ~2x of its floor until late; dynamic grows ~linearly
    for m in ("KNL", "Haswell"):
        static = series[f"{m} static"]
        dynamic = series[f"{m} dynamic"]
        assert static[8] < 2 * static[0]
        assert dynamic[-1] / dynamic[0] > 100
        assert dynamic[-1] > 20 * static[-1]
    # KNL strictly worse than Haswell for every policy at scale
    for policy in ("static", "dynamic", "guided"):
        assert series[f"KNL {policy}"][-1] > series[f"Haswell {policy}"][-1]
    # guided ~ dynamic on KNL (the paper's observation)
    assert series["KNL guided"][-1] > 0.5 * series["KNL dynamic"][-1]
    benchmark(loop_scheduling_cost, KNL, "dynamic", 2**19)
