"""Extension bench — Sparse SUMMA communication scaling on the 2-D grid.

The node-level kernels the paper optimizes exist to serve distributed
SpGEMM (CombBLAS); this bench measures the simulated schedule's exact
communication ledger: total volume grows with the grid (more broadcast
copies) while per-rank volume shrinks ~1/sqrt(P), and G500's hub structure
produces the flop imbalance that motivates 2-D (over 1-D) distributions in
the first place.
"""

import pytest

from repro.distributed import sparse_summa
from repro.profiling import render_series
from repro.rmat import er_matrix, g500_matrix

from _util import emit

GRIDS = [1, 2, 3, 4, 6]
SCALE, EF = 10, 8


@pytest.fixture(scope="module")
def summa_sweep():
    inputs = {
        "ER": er_matrix(SCALE, EF, seed=1),
        "G500": g500_matrix(SCALE, EF, seed=1),
    }
    data = {}
    for name, a in inputs.items():
        rows = []
        for p in GRIDS:
            _, rep = sparse_summa(a, a, p, algorithm="esc")
            rows.append(rep)
        data[name] = rows
    series = {}
    for name, reports in data.items():
        series[f"{name} per-rank MB"] = [
            r.received.mean() / 1e6 for r in reports
        ]
        series[f"{name} imbalance"] = [r.flop_imbalance for r in reports]
    emit(
        "distributed_summa",
        render_series(
            f"Sparse SUMMA: per-rank comm and flop imbalance "
            f"(scale {SCALE}, ef {EF})",
            "grid p (PxP ranks)", GRIDS, series,
        ),
    )
    return data


def test_summa_scaling(summa_sweep, benchmark):
    for name, reports in summa_sweep.items():
        per_rank = [r.received.mean() for r in reports]
        # no communication on one rank; shrinking per-rank volume beyond
        assert per_rank[0] == 0.0
        assert per_rank[-1] < per_rank[1]
        # total volume grows with the grid (broadcast replication)
        totals = [r.total_comm_bytes for r in reports]
        assert totals[-1] > totals[1]
    # skew penalty: G500's imbalance exceeds ER's on the largest grid
    assert (
        summa_sweep["G500"][-1].flop_imbalance
        > summa_sweep["ER"][-1].flop_imbalance
    )

    a = er_matrix(8, 8, seed=2)
    benchmark(sparse_summa, a, a, 2, algorithm="esc")
