"""Figure 5 — stanza-access bandwidth: DDR only vs MCDRAM as Cache (KNL).

Regenerates: effective bandwidth (GB/s) vs contiguous-access (stanza)
length from 8 bytes to 16 KB.  Paper shape: both memories slow and equal at
tiny stanzas (latency bound), MCDRAM-as-cache >3.4x DDR at long stanzas.
"""

import pytest

from repro.machine import KNL, MemoryMode, stanza_bandwidth
from repro.profiling import render_series

from _util import emit

STANZA_EXPONENTS = list(range(3, 15))  # 8 B .. 16 KB


@pytest.fixture(scope="module")
def figure5():
    xs = [2**k for k in STANZA_EXPONENTS]
    series = {
        "DDR only": [
            stanza_bandwidth(KNL, L, MemoryMode.FLAT_DDR) / 1e9 for L in xs
        ],
        "MCDRAM as Cache": [
            stanza_bandwidth(KNL, L, MemoryMode.CACHE) / 1e9 for L in xs
        ],
    }
    emit(
        "fig05_stanza",
        render_series(
            "Figure 5: stanza bandwidth on KNL [GB/s]",
            "stanza [bytes]", xs, series, log_y=True,
        ),
    )
    return xs, series


def test_fig05_mcdram_crossover(figure5, benchmark):
    xs, series = figure5
    ddr, mcd = series["DDR only"], series["MCDRAM as Cache"]
    # equal (within 10%) at 8-byte random access
    assert abs(mcd[0] - ddr[0]) / ddr[0] < 0.10
    # >3.4x at 16 KB (the paper's headline number)
    assert mcd[-1] / ddr[-1] > 3.4
    # both curves monotone in stanza length
    assert all(b >= a for a, b in zip(ddr, ddr[1:]))
    assert all(b >= a for a, b in zip(mcd, mcd[1:]))
    # the MCDRAM advantage is monotone: longer stanzas help it more
    ratios = [m / d for m, d in zip(mcd, ddr)]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    benchmark(stanza_bandwidth, KNL, 4096, MemoryMode.CACHE)
