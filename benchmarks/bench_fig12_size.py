"""Figure 12 — scaling with matrix size (scale) on KNL and Haswell.

Regenerates: MFLOPS of all nine code configurations squaring ER and G500
matrices of growing scale at edge factor 16.  Paper shape: the MKL family
leads at small scales (the SPA fits in cache) and falls off at large ones,
where Hash/HashVec take over and stay flat; Heap is stable; on G500 the MKL
family is poor at every scale that matters.
"""

import pytest

from repro.machine import HASWELL, KNL
from repro.perfmodel import ProblemQuantities
from repro.profiling import render_series
from repro.rmat import er_matrix, g500_matrix

from _util import FULL, PAPER_CODES, emit, simulate_codes

# the KNL crossover (SPA leaves the 512 KB L2) sits at scale 16,
# so the reduced range still includes 16-17
ER_SCALES = list(range(8, 21 if FULL else 18))
G500_SCALES = list(range(8, 18 if FULL else 15))
EDGE_FACTOR = 16


@pytest.fixture(scope="module")
def figure12():
    panels = {}
    for gname, gen, scales in (
        ("ER", er_matrix, ER_SCALES),
        ("G500", g500_matrix, G500_SCALES),
    ):
        quantities = []
        for sc in scales:
            m = gen(sc, EDGE_FACTOR, seed=sc)
            quantities.append(ProblemQuantities.compute(m, m))
        for machine in (KNL, HASWELL):
            series = {label: [] for label, _, _ in PAPER_CODES}
            for q in quantities:
                for label, val in simulate_codes(q, machine).items():
                    series[label].append(val)
            key = f"{machine.name} / {gname}"
            panels[key] = (scales, series)
            emit(
                f"fig12_size_{machine.name.lower()}_{gname.lower()}",
                render_series(
                    f"Figure 12 ({key}): MFLOPS vs scale, edge factor 16",
                    "scale", scales, series,
                ),
            )
    return panels


def test_fig12_size_trends(figure12, benchmark):
    panels = figure12
    # KNL / ER: MKL-inspector leads at small scale, then crosses below
    # Hash (unsorted) — "for large scale matrices, MKL goes down, and Heap
    # and Hash overcome"
    scales, s = panels["KNL / ER"]
    small, large = 0, len(scales) - 1
    assert s["MKL-inspector (unsorted)"][small] > s["Hash (unsorted)"][small]
    assert s["Hash (unsorted)"][large] > s["MKL-inspector (unsorted)"][large]
    # hash stays within 2.5x of its own peak at the largest scale (stable)
    assert s["Hash (unsorted)"][large] > max(s["Hash (unsorted)"]) / 2.5
    # MKL family collapses after its peak ("MKL goes down")
    assert s["MKL (unsorted)"][large] < 0.6 * max(s["MKL (unsorted)"])
    assert s["MKL-inspector (unsorted)"][large] < 0.6 * max(
        s["MKL-inspector (unsorted)"]
    )
    # G500 / KNL: "the performance of MKL is terrible even if its output is
    # unsorted" — hash-family above the MKL family at the largest scale
    scales_g, g = panels["KNL / G500"]
    lg = len(scales_g) - 1
    assert g["Hash (unsorted)"][lg] > g["MKL (unsorted)"][lg]
    assert g["Hash (unsorted)"][lg] > g["MKL-inspector (unsorted)"][lg]
    # Heap "shows stable performance" on G500: flat within 3x across scales
    heap_vals = [v for v in g["Heap"][2:]]
    assert max(heap_vals) < 3 * min(heap_vals)

    q = ProblemQuantities.compute(
        er_matrix(10, 16, seed=0), er_matrix(10, 16, seed=0)
    )
    benchmark(simulate_codes, q, HASWELL)
