"""Figure 10 — speedup from MCDRAM (Cache mode) vs Flat-DDR, by edge factor.

Regenerates: Cache-mode-over-Flat-DDR speedup of Heap / Hash / HashVec
(sorted and unsorted) squaring G500 matrices of fixed scale with edge
factors 4..64.  Paper shape: Hash-family speedup grows with density toward
~1.2-1.4x (bandwidth-bound streaming of denser B rows), Heap stays near
1.0x (fine-grained access), and Heap *degrades* at edge factor 64 when its
flop-sized temporaries exceed the MCDRAM capacity.

Scaling note: the paper runs scale 15; we default to scale 12 and shrink
the modeled MCDRAM capacity by the same factor as the problem's memory
footprint, preserving the capacity-overflow crossover (see DESIGN.md).
"""

import dataclasses

import pytest

from repro.machine import KNL, MemoryMode
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.profiling import render_series
from repro.rmat import g500_matrix

from _util import FULL, emit

SCALE = 15 if FULL else 12
EDGE_FACTORS = [4, 8, 16, 32, 64]

# The paper's scale-15 runs put Heap's edge-factor-64 temporaries past the
# 16 GB MCDRAM.  At our default scale 12 the same overflow point is reached
# by scaling the capacity with the problem (2^15/2^12 = 8x smaller).
CAPACITY = 16e9 if FULL else 16e9 / 8

MACHINE = dataclasses.replace(
    KNL, mem=dataclasses.replace(KNL.mem, mcdram_capacity_bytes=CAPACITY)
)

CODES = (
    ("Heap", "heap", True),
    ("Hash", "hash", True),
    ("HashVec", "hashvec", True),
    ("Hash (unsorted)", "hash", False),
    ("HashVec (unsorted)", "hashvec", False),
)


@pytest.fixture(scope="module")
def figure10():
    series = {label: [] for label, _, _ in CODES}
    for ef in EDGE_FACTORS:
        a = g500_matrix(SCALE, ef, seed=ef)
        q = ProblemQuantities.compute(a, a)
        for label, alg, sort in CODES:
            cache = simulate_spgemm(
                alg,
                config=SimConfig(machine=MACHINE, sort_output=sort,
                                 memory_mode=MemoryMode.CACHE),
                quantities=q,
            )
            flat = simulate_spgemm(
                alg,
                config=SimConfig(machine=MACHINE, sort_output=sort,
                                 memory_mode=MemoryMode.FLAT_DDR),
                quantities=q,
            )
            series[label].append(flat.seconds / cache.seconds)
    emit(
        "fig10_mcdram",
        render_series(
            f"Figure 10: Cache-mode speedup over Flat-DDR (G500 scale {SCALE})",
            "edge factor", EDGE_FACTORS, series,
        ),
    )
    return series


def test_fig10_mcdram_benefit_structure(figure10, benchmark):
    series = figure10
    # Hash-family benefits grow with density
    for label in ("Hash", "HashVec", "Hash (unsorted)", "HashVec (unsorted)"):
        vals = series[label]
        assert vals[-2] > vals[0]  # denser -> more MCDRAM benefit
        assert vals[-2] > 1.05  # a real benefit at ef=32
    # Heap never gains much ...
    assert max(series["Heap"]) < 1.15
    # ... and loses ground at edge factor 64 (temporaries exceed capacity)
    assert series["Heap"][-1] < series["Heap"][-2]

    a = g500_matrix(10, 16, seed=1)
    q = ProblemQuantities.compute(a, a)
    benchmark(
        simulate_spgemm, "hash",
        config=SimConfig(machine=MACHINE), quantities=q,
    )
