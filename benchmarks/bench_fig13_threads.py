"""Figure 13 — strong scaling with thread count on KNL.

Regenerates: MFLOPS vs thread count (1..272) for ER and G500 inputs of
fixed scale, edge factor 16.  Paper shape: all kernels scale well to ~64
threads; MKL (unsorted) stops improving past 68 (one thread per core);
Heap and Hash/HashVec keep improving into the SMT region.
"""

import pytest

from repro.machine import KNL
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.profiling import render_series
from repro.rmat import er_matrix, g500_matrix

from _util import FULL, emit

SCALE = 16 if FULL else 14
THREADS = [1, 2, 4, 8, 16, 32, 64, 68, 128, 136, 192, 204, 256, 272]

CODES = (
    ("Heap", "heap", True),
    ("Hash", "hash", True),
    ("HashVec", "hashvec", True),
    ("MKL (unsorted)", "mkl", False),
    ("MKL-inspector (unsorted)", "mkl_inspector", False),
    ("Kokkos (unsorted)", "kokkos", False),
    ("Hash (unsorted)", "hash", False),
    ("HashVec (unsorted)", "hashvec", False),
)


@pytest.fixture(scope="module")
def figure13():
    panels = {}
    for gname, gen in (("ER", er_matrix), ("G500", g500_matrix)):
        a = gen(SCALE, 16, seed=3)
        q = ProblemQuantities.compute(a, a)
        series = {label: [] for label, _, _ in CODES}
        for t in THREADS:
            for label, alg, sort in CODES:
                cfg = SimConfig(machine=KNL, nthreads=t, sort_output=sort)
                series[label].append(
                    simulate_spgemm(alg, config=cfg, quantities=q).mflops
                )
        panels[gname] = series
        emit(
            f"fig13_threads_{gname.lower()}",
            render_series(
                f"Figure 13 ({gname}): MFLOPS vs threads, KNL, scale {SCALE}",
                "threads", THREADS, series, log_y=True,
            ),
        )
    return panels


def test_fig13_strong_scaling(figure13, benchmark):
    panels = figure13
    i64 = THREADS.index(64)
    i272 = THREADS.index(272)
    for gname, series in panels.items():
        for label in ("Hash (unsorted)", "Heap", "HashVec"):
            vals = series[label]
            # good scalability until around 64 threads
            assert vals[i64] > 8 * vals[0], (gname, label)
            # further improvement past 64 threads (SMT region)
            assert vals[i272] > vals[i64], (gname, label)
        # relative SMT gain of hash exceeds MKL's ("MKL with unsorted output
        # has no improvement over 68 threads")
        i68 = THREADS.index(68)
        mkl_gain = series["MKL (unsorted)"][i272] / series["MKL (unsorted)"][i68]
        hash_gain = series["Hash (unsorted)"][i272] / series["Hash (unsorted)"][i68]
        assert hash_gain > mkl_gain, gname
        assert mkl_gain < 1.1, gname

    a = er_matrix(10, 16, seed=3)
    q = ProblemQuantities.compute(a, a)
    benchmark(
        simulate_spgemm, "hash",
        config=SimConfig(machine=KNL, nthreads=272), quantities=q,
    )
