"""Ablation — masked vs unmasked triangle counting, real operation counts.

§5.6 computes the full wedge matrix L·U and then masks it with A.  The
GraphBLAS-style extension (:func:`repro.core.masked.masked_spgemm`) fuses
the mask into the kernel.  This ablation runs BOTH executable pipelines on
graph proxies and measures what fusion saves: the entries materialized (and
sorted, and allocated) collapse from nnz(L·U) to at most nnz(A), while the
flop count is unchanged — exactly the accounting a fused mask promises.
"""

import pytest

from repro import KernelStats
from repro.core.masked import masked_spgemm
from repro.core.spgemm import spgemm
from repro.datasets import load_dataset
from repro.matrix.ops import degree_reorder, triangular_split
from repro.profiling import render_series

from _util import emit, record_json

GRAPHS = ["mc2depi", "scircuit", "patents_main", "webbase-1M"]
MAX_N = 4000


@pytest.fixture(scope="module")
def ablation():
    rows = []
    for name in GRAPHS:
        m = load_dataset(name, max_n=MAX_N)
        a, _ = degree_reorder(m)
        a = a.sort_rows()
        low, up = triangular_split(a)

        full_stats = KernelStats()
        wedges = spgemm(low, up, algorithm="hash", stats=full_stats)

        fused_stats = KernelStats()
        closed = masked_spgemm(low, up, a, stats=fused_stats)

        rows.append({
            "name": name,
            "flop": full_stats.flops,
            "unmasked_nnz": wedges.nnz,
            "masked_nnz": closed.nnz,
            "unmasked_sorted": full_stats.sorted_elements,
            "masked_sorted": fused_stats.sorted_elements,
            "masked_kept": fused_stats.masked_kept,
        })
    series = {
        "materialized (unmasked)": [r["unmasked_nnz"] for r in rows],
        "materialized (masked)": [r["masked_nnz"] for r in rows],
        "flop (both)": [r["flop"] for r in rows],
    }
    emit(
        "ablation_masked",
        render_series(
            f"Ablation: fused mask in L·U triangle counting (max_n={MAX_N})",
            "graph", [r["name"] for r in rows], series, log_y=True,
        ),
    )
    record_json(
        "ablation_masked",
        {
            "benchmark": "ablation: fused mask in L*U triangle counting",
            "max_n": MAX_N,
            "rows": rows,
        },
    )
    return rows


def test_masked_fusion_savings(ablation, benchmark):
    for r in ablation:
        # the fused kernel still evaluates every product ...
        assert r["flop"] > 0
        # ... but materializes a (strict, for these graphs) subset
        assert r["masked_nnz"] < r["unmasked_nnz"], r["name"]
        # and sorts proportionally less
        assert r["masked_sorted"] <= r["unmasked_sorted"]
    # on at least one skewed graph the saving is large (>2x fewer entries)
    assert any(
        r["unmasked_nnz"] > 2 * max(r["masked_nnz"], 1) for r in ablation
    )

    m = load_dataset("mc2depi", max_n=1000)
    a, _ = degree_reorder(m)
    a = a.sort_rows()
    low, up = triangular_split(a)
    benchmark(masked_spgemm, low, up, a)
