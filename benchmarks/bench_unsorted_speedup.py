"""§5.4.4 — harmonic-mean speedup of unsorted over sorted operation.

Regenerates the paper's headline numbers: "the harmonic mean of the
speedups achieved operating on unsorted data over all real matrices we
have studied from the SuiteSparse collection on KNL is 1.58x for MKL,
1.63x for Hash, and 1.68x for HashVector."
"""

import pytest

from repro.profiling import harmonic_mean_speedup

from _util import SUITE_MAX_N, emit, suite_times

PAPER_NUMBERS = {"MKL": 1.58, "Hash": 1.63, "HashVec": 1.68}


@pytest.fixture(scope="module")
def speedups():
    sorted_times = suite_times("KNL", True, SUITE_MAX_N)
    unsorted_times = suite_times("KNL", False, SUITE_MAX_N)
    out = {}
    for label in ("MKL", "Hash", "HashVec"):
        out[label] = harmonic_mean_speedup(
            sorted_times[label], unsorted_times[label]
        )
    lines = ["Unsorted-over-sorted harmonic-mean speedups (26 proxies, KNL)",
             f"{'code':<10s} {'measured':>10s} {'paper':>8s}"]
    for label, val in out.items():
        lines.append(f"{label:<10s} {val:>10.2f} {PAPER_NUMBERS[label]:>8.2f}")
    emit("unsorted_speedup", "\n".join(lines))
    return out


def test_unsorted_speedups(speedups, benchmark):
    # every code gains from skipping the sort ...
    for label, val in speedups.items():
        assert val > 1.1, label
    # ... in the paper's ballpark (1.58-1.68; accept a generous band since
    # the suite is proxied and downscaled)
    for label, val in speedups.items():
        assert 1.1 < val < 2.5, (label, val)
    # the paper's ordering: HashVector gains at least as much as Hash
    # (its sort volume is identical but its probe phase is cheaper)
    assert speedups["HashVec"] >= 0.95 * speedups["Hash"]
    benchmark(
        harmonic_mean_speedup,
        suite_times("KNL", True, SUITE_MAX_N)["Hash"],
        suite_times("KNL", False, SUITE_MAX_N)["Hash"],
    )
