"""Figure 16 — square x tall-skinny SpGEMM (the multi-source-BFS scenario).

Regenerates: MFLOPS of the nine codes multiplying a scale-L G500 matrix by
a tall-skinny matrix of 2^S randomly selected columns, for several (L, S)
combinations.  Paper shape: "The result of square x tall-skinny follows
that of A²  ... Both for sorted and unsorted cases, Hash or HashVec is the
best performer."
"""

import pytest

from repro.machine import KNL
from repro.perfmodel import ProblemQuantities
from repro.profiling import render_series
from repro.rmat import tall_skinny_pair

from _util import FULL, PAPER_CODES, emit, simulate_codes

LONG_SCALES = [18, 19, 20] if FULL else [12, 13, 14]
# paper: short scales 10..16 against long 18..20.  In reduced mode the
# shorts shift up accordingly; extremely skinny shorts (2^4 columns) are a
# downscaling artifact where any accumulator trivially fits in cache.
SHORT_OFFSETS = [-8, -6, -4, -2] if FULL else [-6, -4, -3, -2]


@pytest.fixture(scope="module")
def figure16():
    panels = {}
    for long_scale in LONG_SCALES:
        shorts = [long_scale + off for off in SHORT_OFFSETS]
        series = {label: [] for label, _, _ in PAPER_CODES}
        for short_scale in shorts:
            a, b = tall_skinny_pair(long_scale, short_scale, seed=long_scale)
            q = ProblemQuantities.compute(a, b)
            for label, val in simulate_codes(q, KNL).items():
                series[label].append(val)
        panels[long_scale] = (shorts, series)
        emit(
            f"fig16_tallskinny_long{long_scale}",
            render_series(
                f"Figure 16: square x tall-skinny, long scale {long_scale}, KNL",
                "short scale", shorts, series,
            ),
        )
    return panels


def test_fig16_hash_family_dominates(figure16, benchmark):
    # assert on the paper's regime — the two largest short sides per panel
    # (at tiny short sides every accumulator fits in cache and the one-phase
    # codes win on overheads, a reduced-scale artifact noted above)
    for long_scale, (shorts, series) in figure16.items():
        # unsorted world: hash-family on top at the largest short side
        i = len(shorts) - 1
        best_hash = max(
            series["Hash (unsorted)"][i], series["HashVec (unsorted)"][i]
        )
        for label in ("MKL (unsorted)", "MKL-inspector (unsorted)",
                      "Kokkos (unsorted)"):
            assert best_hash > series[label][i], (long_scale, label)
        # sorted world: hash-family best at the two largest short sides
        for i in range(len(shorts) - 2, len(shorts)):
            best_sorted = max(
                ("MKL", "Heap", "Hash", "HashVec"),
                key=lambda L: series[L][i],
            )
            assert best_sorted in ("Hash", "HashVec"), (long_scale, shorts[i])

    a, b = tall_skinny_pair(10, 6, seed=0)
    q = ProblemQuantities.compute(a, b)
    benchmark(simulate_codes, q, KNL)
