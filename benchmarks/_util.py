"""Shared infrastructure for the figure-regeneration benchmark harness.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run the paper's full parameter ranges (ER scale
  up to 20, G500 up to 17, suite at 60k rows).  The default ranges are
  scaled down to keep ``pytest benchmarks/`` in the minutes, with identical
  qualitative structure.
* ``REPRO_BENCH_MAX_N`` — override the proxy-suite dimension cap.

Every bench writes its rendered series to ``benchmarks/results/<name>.txt``
(and prints it, visible with ``pytest -s``), so the regenerated "figures"
persist after the run.
"""

from __future__ import annotations

import functools
import json
import os
import platform
import time
from pathlib import Path

from repro.machine import HASWELL, KNL
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
SUITE_MAX_N = int(
    os.environ.get("REPRO_BENCH_MAX_N", "60000" if FULL else "6000")
)

#: the nine code configurations of Figures 11/12 (paper legend order)
PAPER_CODES = (
    ("MKL", "mkl", True),
    ("Heap", "heap", True),
    ("Hash", "hash", True),
    ("HashVec", "hashvec", True),
    ("MKL (unsorted)", "mkl", False),
    ("MKL-inspector (unsorted)", "mkl_inspector", False),
    ("Kokkos (unsorted)", "kokkos", False),
    ("Hash (unsorted)", "hash", False),
    ("HashVec (unsorted)", "hashvec", False),
)

#: sorted-world codes of Figures 14(left)/17
SORTED_CODES = (
    ("MKL", "mkl"),
    ("Heap", "heap"),
    ("Hash", "hash"),
    ("HashVec", "hashvec"),
)

#: unsorted-world codes of Figure 14(right)
UNSORTED_CODES = (
    ("MKL", "mkl"),
    ("MKL-inspector", "mkl_inspector"),
    ("Kokkos", "kokkos"),
    ("Hash", "hash"),
    ("HashVec", "hashvec"),
)


def emit(name: str, text: str) -> None:
    """Print a rendered figure and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def time_call(fn, *args, warmup: int = 1, repeats: int = 3, **kwargs):
    """Best-of-N wall-clock timing with warmup.

    Runs ``fn(*args, **kwargs)`` ``warmup`` times untimed (JIT-free Python
    still benefits: allocator pools, branch caches, the engine's scratch
    arena), then ``repeats`` timed runs.  Returns ``(best_seconds,
    all_seconds, last_result)`` — best-of is the standard estimator for
    minimum-noise comparisons, and the full list is kept for the JSON
    record so variance stays inspectable across PRs.
    """
    if warmup < 0 or repeats < 1:
        raise ValueError("warmup must be >= 0 and repeats >= 1")
    for _ in range(warmup):
        fn(*args, **kwargs)
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        samples.append(time.perf_counter() - t0)
    return min(samples), samples, result


def time_call_traced(fn, *args, warmup: int = 1, repeats: int = 3, **kwargs):
    """Paired untraced/traced timing for the phase-breakdown benches.

    Runs ``fn(*args, **kwargs)`` in *interleaved* untraced/traced rounds
    (so ambient drift — GC pressure, cache state — hits both sides alike)
    and takes best-of-N on each side, keeping the tracer of the fastest
    traced run.  ``REPRO_TRACE`` is masked for the duration so the env
    tracer cannot contaminate the untraced baseline.  Returns
    ``(untraced_best, traced_best, tracer_of_best)``.
    """
    from repro.observability import Tracer

    if warmup < 0 or repeats < 1:
        raise ValueError("warmup must be >= 0 and repeats >= 1")
    saved = os.environ.pop("REPRO_TRACE", None)
    try:
        for _ in range(warmup):
            fn(*args, **kwargs)
        untraced_best = traced_best = None
        best_tracer = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(*args, **kwargs)
            elapsed = time.perf_counter() - t0
            if untraced_best is None or elapsed < untraced_best:
                untraced_best = elapsed
            tracer = Tracer()
            t0 = time.perf_counter()
            fn(*args, tracer=tracer, **kwargs)
            elapsed = time.perf_counter() - t0
            if traced_best is None or elapsed < traced_best:
                traced_best, best_tracer = elapsed, tracer
        return untraced_best, traced_best, best_tracer
    finally:
        if saved is not None:
            os.environ["REPRO_TRACE"] = saved


@functools.lru_cache(maxsize=1)
def lint_status() -> "tuple[tuple[str, object], ...]":
    """Contract-linter verdict on ``src/repro`` at benchmark time.

    Benchmark numbers from a tree that violates its own registration or
    accumulation-order contracts are not comparable to numbers from a clean
    tree, so every JSON record carries the verdict.  Cached: one lint pass
    per benchmark session.  Returned as a tuple of items (lru_cache needs a
    hashable value); callers ``dict(...)`` it.
    """
    repo_root = Path(__file__).resolve().parent.parent
    src = repo_root / "src" / "repro"
    try:
        from repro.analysis import analyze_paths

        result = analyze_paths([str(src)], root=str(repo_root))
    except Exception as exc:  # repro-lint: disable=overbroad-except — never let linting break a benchmark run
        return (("clean", False), ("error", f"{type(exc).__name__}: {exc}"))
    return (
        ("clean", result.clean),
        ("findings", len(result.findings)),
        ("suppressed", len(result.suppressed)),
        ("files_scanned", result.files_scanned),
    )


def record_json(name: str, payload: dict, *, mirror_repo_root: bool = False) -> Path:
    """Persist a machine-readable benchmark record as ``<name>.json``.

    The record is annotated with timestamp, interpreter/platform info and
    the contract-linter verdict (see :func:`lint_status`) so the perf
    trajectory is comparable across PRs.  ``mirror_repo_root=True``
    additionally writes a copy next to the repository root (for records,
    like ``BENCH_engine.json``, that are committed as part of the PR).
    """
    record = dict(payload)
    record.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    record.setdefault("python", platform.python_version())
    record.setdefault("platform", platform.platform())
    record.setdefault("lint", dict(lint_status()))
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(text)
    if mirror_repo_root:
        (Path(__file__).resolve().parent.parent / f"{name}.json").write_text(text)
    return path


def simulate_codes(q: ProblemQuantities, machine, codes=PAPER_CODES, **cfg_kw):
    """MFLOPS of each (label, algorithm, sorted) code on one problem."""
    out = {}
    for entry in codes:
        if len(entry) == 3:
            label, alg, sort = entry
        else:
            label, alg = entry
            sort = cfg_kw.get("sort_output", True)
        config = SimConfig(machine=machine, sort_output=sort, **{
            k: v for k, v in cfg_kw.items() if k != "sort_output"
        })
        out[label] = simulate_spgemm(alg, config=config, quantities=q).mflops
    return out


@functools.lru_cache(maxsize=None)
def suite_quantities(max_n: int = SUITE_MAX_N):
    """ProblemQuantities of squaring every proxy matrix (cached: shared by
    the Fig. 14 / Fig. 15 / Table 4 / speedup benches)."""
    from repro.datasets import load_suite

    out = {}
    for name, m in load_suite(max_n=max_n).items():
        out[name] = ProblemQuantities.compute(m, m)
    return out


@functools.lru_cache(maxsize=None)
def suite_times(machine_name: str, sort_output: bool, max_n: int = SUITE_MAX_N):
    """Simulated times of every code on every suite matrix.

    Returns ``{code_label: {matrix: seconds}}`` for the Dolan-Moré profile
    and harmonic-speedup benches.
    """
    machine = {"KNL": KNL, "Haswell": HASWELL}[machine_name]
    codes = SORTED_CODES if sort_output else UNSORTED_CODES
    times: "dict[str, dict[str, float]]" = {label: {} for label, _ in codes}
    for name, q in suite_quantities(max_n).items():
        for label, alg in codes:
            cfg = SimConfig(machine=machine, sort_output=sort_output)
            times[label][name] = simulate_spgemm(
                alg, config=cfg, quantities=q
            ).seconds
    return times
