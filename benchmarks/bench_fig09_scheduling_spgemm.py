"""Figure 9 — Heap SpGEMM performance vs scheduling/memory scheme (KNL).

Regenerates: MFLOPS of Heap SpGEMM squaring G500 (edge factor 16) matrices
of growing scale under five configurations: plain static, dynamic and
guided OpenMP scheduling, and the paper's flop-balanced assignment with
"single" vs "parallel" temporary memory management.

Paper shape: 'balanced parallel' dominates; static suffers load imbalance;
dynamic/guided pay scheduling overhead; 'balanced single' falls off at
large sizes when the flop-sized temporary buffers hit the expensive
single-thread deallocation path.
"""

import pytest

from repro.machine import KNL
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.profiling import render_series
from repro.rmat import g500_matrix

from _util import FULL, emit

SCALES = list(range(6, 17 if FULL else 15))
EDGE_FACTOR = 16

CONFIGS = (
    ("static", dict(scheduling="static", memory_scheme="parallel")),
    ("dynamic", dict(scheduling="dynamic", memory_scheme="parallel")),
    ("guided", dict(scheduling="guided", memory_scheme="parallel")),
    ("balanced single", dict(scheduling="balanced", memory_scheme="single")),
    ("balanced parallel", dict(scheduling="balanced", memory_scheme="parallel")),
)


@pytest.fixture(scope="module")
def figure9():
    series = {label: [] for label, _ in CONFIGS}
    for scale in SCALES:
        a = g500_matrix(scale, EDGE_FACTOR, seed=scale)
        q = ProblemQuantities.compute(a, a)
        for label, kw in CONFIGS:
            # Fig. 4/9 pair: the temporaries are freed with the C++ heap
            # unless TBB is used; we keep the C++ allocator so the single
            # scheme's cliff is visible at these (scaled-down) sizes.
            cfg = SimConfig(machine=KNL, allocator="cpp", **kw)
            series[label].append(
                simulate_spgemm("heap", config=cfg, quantities=q).mflops
            )
    emit(
        "fig09_scheduling_spgemm",
        render_series(
            "Figure 9: Heap SpGEMM on G500 inputs, KNL Cache mode [MFLOPS]",
            "scale", SCALES, series,
        ),
    )
    return series


def test_fig09_balanced_beats_plain_policies(figure9, benchmark):
    series = figure9
    n = len(SCALES)
    bp = series["balanced parallel"]
    bs = series["balanced single"]
    # one of the two balanced schemes is the best configuration everywhere
    for i in range(n):
        best_balanced = max(bp[i], bs[i])
        for other in ("static", "dynamic", "guided"):
            assert best_balanced >= series[other][i], (SCALES[i], other)
    # balanced-parallel strictly beats static & guided once there are
    # enough rows for imbalance to matter (at tiny scales every thread owns
    # <= 1 row, so static == balanced minus the prefix-sum prep)
    mid = [i for i, sc in enumerate(SCALES) if sc >= 9]
    assert all(bp[i] > series["static"][i] for i in mid)
    assert all(bp[i] > series["guided"][i] for i in mid)
    # dynamic's dispatch overhead shows at small scales
    assert bp[0] > series["dynamic"][0]
    # the Fig. 4 pair of observations: parallel freeing costs more than
    # single for SMALL temporaries (small scales) but wins at LARGE ones,
    # where single-thread deallocation of the flop-sized buffers dominates
    assert bs[0] > bp[0]
    assert bp[-1] > bs[-1]
    assert bp[-1] > 1.2 * bs[-1]

    a = g500_matrix(9, EDGE_FACTOR, seed=9)
    q = ProblemQuantities.compute(a, a)
    benchmark(
        simulate_spgemm, "heap", config=SimConfig(machine=KNL), quantities=q
    )
