"""Wall-clock pytest-benchmark timings of the *executable* kernels.

Everything else in ``benchmarks/`` exercises the calibrated machine model;
this file times the real Python kernels on this machine.  Absolute numbers
are CPython-bound (see DESIGN.md — pure Python cannot exhibit the paper's
hardware effects), but the relative cost of the accumulator families and
the benefit of skipping the output sort are real measurements here.
"""

import pytest

from repro import spgemm
from repro.parallel import parallel_spgemm
from repro.rmat import er_matrix, g500_matrix

SCALE = 10
EDGE_FACTOR = 8


@pytest.fixture(scope="module")
def g500():
    return g500_matrix(SCALE, EDGE_FACTOR, seed=1)


@pytest.fixture(scope="module")
def er():
    return er_matrix(SCALE, EDGE_FACTOR, seed=1)


@pytest.mark.parametrize("algorithm", ["hash", "hashvec", "heap", "spa", "kokkos", "esc"])
def test_kernel_g500_sorted(benchmark, g500, algorithm):
    result = benchmark(spgemm, g500, g500, algorithm=algorithm, sort_output=True)
    assert result.nnz > 0


@pytest.mark.parametrize("algorithm", ["hash", "hashvec"])
def test_kernel_g500_unsorted(benchmark, g500, algorithm):
    result = benchmark(spgemm, g500, g500, algorithm=algorithm, sort_output=False)
    assert result.nnz > 0


def test_kernel_er_esc(benchmark, er):
    result = benchmark(spgemm, er, er, algorithm="esc")
    assert result.nnz > 0


def test_parallel_esc_two_workers(benchmark, g500):
    result = benchmark(parallel_spgemm, g500, g500, algorithm="esc", nworkers=2)
    assert result.nnz > 0


def test_symbolic_phase(benchmark, g500):
    from repro.core.symbolic import symbolic_row_nnz

    out = benchmark(symbolic_row_nnz, g500, g500)
    assert out.sum() > 0


def test_flop_balanced_partition(benchmark, g500):
    from repro.core.scheduler import rows_to_threads

    p = benchmark(rows_to_threads, g500, g500, 64)
    assert p.nrows == g500.nrows
