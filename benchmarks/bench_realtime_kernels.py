"""Wall-clock pytest-benchmark timings of the *executable* kernels.

Everything else in ``benchmarks/`` exercises the calibrated machine model;
this file times the real Python kernels on this machine.  Absolute numbers
are CPython-bound (see DESIGN.md — pure Python cannot exhibit the paper's
hardware effects), but the relative cost of the accumulator families and
the benefit of skipping the output sort are real measurements here.
"""

import os

import numpy as np
import pytest

from _util import record_json, time_call
from repro import spgemm
from repro.parallel import parallel_spgemm
from repro.rmat import er_matrix, g500_matrix

SCALE = 10
EDGE_FACTOR = 8

#: Matrix scale for the engine speedup record (the ISSUE's acceptance bar is
#: >= 10x at scale >= 14; CI smoke runs use a smaller scale via this knob).
ENGINE_SCALE = int(os.environ.get("REPRO_BENCH_ENGINE_SCALE", "14"))


@pytest.fixture(scope="module")
def g500():
    return g500_matrix(SCALE, EDGE_FACTOR, seed=1)


@pytest.fixture(scope="module")
def er():
    return er_matrix(SCALE, EDGE_FACTOR, seed=1)


@pytest.mark.parametrize("algorithm", ["hash", "hashvec", "heap", "spa", "kokkos", "esc"])
def test_kernel_g500_sorted(benchmark, g500, algorithm):
    result = benchmark(spgemm, g500, g500, algorithm=algorithm, sort_output=True)
    assert result.nnz > 0


@pytest.mark.parametrize("algorithm", ["hash", "hashvec"])
def test_kernel_g500_unsorted(benchmark, g500, algorithm):
    result = benchmark(spgemm, g500, g500, algorithm=algorithm, sort_output=False)
    assert result.nnz > 0


def test_kernel_er_esc(benchmark, er):
    result = benchmark(spgemm, er, er, algorithm="esc")
    assert result.nnz > 0


def test_parallel_esc_two_workers(benchmark, g500):
    result = benchmark(parallel_spgemm, g500, g500, algorithm="esc", nworkers=2)
    assert result.nnz > 0


def test_symbolic_phase(benchmark, g500):
    from repro.core.symbolic import symbolic_row_nnz

    out = benchmark(symbolic_row_nnz, g500, g500)
    assert out.sum() > 0


def test_flop_balanced_partition(benchmark, g500):
    from repro.core.scheduler import rows_to_threads

    p = benchmark(rows_to_threads, g500, g500, 64)
    assert p.nrows == g500.nrows


def test_engine_speedup_record():
    """Fast vs faithful hash on an ER matrix; writes ``BENCH_engine.json``.

    At the default scale (2^14) the batched engine must be >= 10x faster
    than the scalar hash kernel and bit-identical to it; smaller smoke
    scales (``REPRO_BENCH_ENGINE_SCALE``) only check identity, since fixed
    per-call overheads dominate tiny problems.
    """
    er_big = er_matrix(ENGINE_SCALE, EDGE_FACTOR, seed=1)
    faithful_s, faithful_all, faithful_c = time_call(
        spgemm, er_big, er_big, algorithm="hash", engine="faithful",
        warmup=0, repeats=1,
    )
    fast_s, fast_all, fast_c = time_call(
        spgemm, er_big, er_big, algorithm="hash", engine="fast",
        warmup=1, repeats=3,
    )
    assert np.array_equal(fast_c.indptr, faithful_c.indptr)
    assert np.array_equal(fast_c.indices, faithful_c.indices)
    assert np.array_equal(
        fast_c.data.view(np.uint64), faithful_c.data.view(np.uint64)
    )
    speedup = faithful_s / fast_s
    record_json(
        "BENCH_engine",
        {
            "benchmark": "spgemm hash engine=fast vs engine=faithful",
            "matrix": f"er(scale={ENGINE_SCALE}, edge_factor={EDGE_FACTOR})",
            "nrows": er_big.nrows,
            "nnz": er_big.nnz,
            "output_nnz": fast_c.nnz,
            "faithful_seconds": faithful_s,
            "faithful_samples": faithful_all,
            "fast_seconds": fast_s,
            "fast_samples": fast_all,
            "speedup": speedup,
            "bit_identical": True,
        },
        mirror_repo_root=True,
    )
    if ENGINE_SCALE >= 14:
        assert speedup >= 10.0, f"speedup {speedup:.1f}x below the 10x bar"
