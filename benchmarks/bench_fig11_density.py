"""Figure 11 — scaling with density (edge factor) on KNL and Haswell.

Regenerates: MFLOPS of all nine code configurations squaring ER and G500
matrices of fixed scale with edge factors 4 / 8 / 16, on both machines.
Paper shape: performance of everything but MKL rises with density on ER;
the hash family dominates G500; unsorted beats sorted throughout.
"""

import pytest

from repro.machine import HASWELL, KNL
from repro.perfmodel import ProblemQuantities
from repro.profiling import render_series
from repro.rmat import er_matrix, g500_matrix

from _util import FULL, PAPER_CODES, emit, simulate_codes

SCALE = 16 if FULL else 14
EDGE_FACTORS = [4, 8, 16]


@pytest.fixture(scope="module")
def figure11():
    panels = {}
    for gname, gen in (("ER", er_matrix), ("G500", g500_matrix)):
        quantities = [
            ProblemQuantities.compute(m, m)
            for m in (gen(SCALE, ef, seed=ef) for ef in EDGE_FACTORS)
        ]
        for machine in (KNL, HASWELL):
            series = {label: [] for label, _, _ in PAPER_CODES}
            for q in quantities:
                for label, val in simulate_codes(q, machine).items():
                    series[label].append(val)
            key = f"{machine.name} / {gname}"
            panels[key] = series
            emit(
                f"fig11_density_{machine.name.lower()}_{gname.lower()}",
                render_series(
                    f"Figure 11 ({key}): MFLOPS vs edge factor, scale {SCALE}",
                    "edge factor", EDGE_FACTORS, series,
                ),
            )
    return panels


def test_fig11_density_trends(figure11, benchmark):
    panels = figure11
    # ER: every non-MKL code gains with density (paper: "performance of all
    # codes except MKL increases significantly as the ER matrices get denser")
    for mach in ("KNL", "Haswell"):
        s = panels[f"{mach} / ER"]
        for label in ("Heap", "Hash", "HashVec", "Hash (unsorted)",
                      "HashVec (unsorted)", "Kokkos (unsorted)"):
            assert s[label][-1] > s[label][0], (mach, label)
    # G500 on KNL: hash-family unsorted on top
    g = panels["KNL / G500"]
    best_hash = max(g["Hash (unsorted)"][-1], g["HashVec (unsorted)"][-1])
    for label in ("MKL", "MKL (unsorted)", "Heap", "Kokkos (unsorted)"):
        assert best_hash > g[label][-1], label
    # unsorted beats sorted for the same algorithm everywhere
    for panel in panels.values():
        for base in ("Hash", "HashVec", "MKL"):
            for i, _ in enumerate(EDGE_FACTORS):
                assert panel[f"{base} (unsorted)"][i] >= panel[base][i]

    q = ProblemQuantities.compute(
        er_matrix(10, 8, seed=0), er_matrix(10, 8, seed=0)
    )
    benchmark(simulate_codes, q, KNL)
