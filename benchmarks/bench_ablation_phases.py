"""Ablation — two-phase vs one-phase hash SpGEMM (§2's two strategies).

§2: "the memory allocation of output matrix becomes hard, and we need to
select from two strategies.  One is a two-phase method, which counts the
number of non-zero elements of output matrix first ... The other is that we
allocate large enough memory space for output matrix and compute.  The
former requires more computation cost, and the latter uses much more
memory space."

This ablation runs the *real instrumented kernel* both ways and verifies
the paper's stated trade-off quantitatively: one-phase does exactly half
the hash accesses; two-phase allocates exactly nnz(C) while one-phase's
working buffers are flop-bounded.  The model-level comparison then shows
where each side of the trade wins on KNL.
"""

import pytest

from repro import KernelStats
from repro.core.hash_spgemm import hash_spgemm
from repro.machine import KNL
from repro.perfmodel import ProblemQuantities, SimConfig, simulate_spgemm
from repro.profiling import render_series
from repro.rmat import g500_matrix

from _util import emit


@pytest.fixture(scope="module")
def ablation():
    a = g500_matrix(9, 16, seed=4)
    two = KernelStats()
    one = KernelStats()
    c2 = hash_spgemm(a, a, stats=two, nthreads=4)
    c1 = hash_spgemm(a, a, stats=one, nthreads=4, one_phase=True)
    assert c1.allclose(c2)
    q = ProblemQuantities.compute(a, a)
    rows = {
        "hash accesses": (two.hash_accesses, one.hash_accesses),
        "hash probes": (two.hash_probes, one.hash_probes),
        "output entries": (c2.nnz, c1.nnz),
        "working-set bound (entries)": (c2.nnz, int(q.total_flop)),
    }
    lines = [
        "Ablation: two-phase vs one-phase hash (G500 scale 9, real kernel)",
        f"{'quantity':<30s} {'two-phase':>14s} {'one-phase':>14s}",
        "-" * 62,
    ]
    for name, (t, o) in rows.items():
        lines.append(f"{name:<30s} {t:>14,} {o:>14,}")
    emit("ablation_phases", "\n".join(lines))
    return rows, q


def test_phase_tradeoff(ablation, benchmark):
    rows, q = ablation
    two_acc, one_acc = rows["hash accesses"]
    # one phase = exactly half the table accesses
    assert one_acc * 2 == two_acc
    # the price: the one-phase working-set bound (flop) exceeds the
    # two-phase exact allocation (nnz(C)) by the compression ratio
    exact, bound = rows["working-set bound (entries)"]
    assert bound > exact
    assert bound / exact == pytest.approx(q.compression_ratio, rel=1e-6)

    a = g500_matrix(8, 8, seed=1)
    benchmark(hash_spgemm, a, a, one_phase=True)
