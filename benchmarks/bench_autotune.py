"""Calibrated selector vs the static Table-4 recipe; writes ``BENCH_autotune.json``.

The static recipe transplants the paper's Table 4 verbatim — including
its faith in the MKL-inspector proxy for unsorted high-CR products, which
on *this* interpreter is often not where the fast engine's wins are.  The
autotuner replaces that table with measurement: a calibration pass fits
per-algorithm cost curves on this host (``python -m repro calibrate``),
and the online refinement loop then corrects the curves from observed
production traffic until repeated-structure workloads converge on the
true winner.

This bench exercises the full loop the way a serve deployment would see
it: calibrate, run a few passes of ``algorithm="auto"`` traffic over the
Table-2 proxy suite (each multiply feeding its measured wall time back
through the refiner), and finally time the verdicts of both selectors
for real.

Acceptance gate (ISSUE 9): the calibrated selector must beat the static
recipe in aggregate — ``totals.calibrated_seconds <= totals.static_seconds``.
"""

import os

from _util import SUITE_MAX_N, record_json, time_call
from repro import recommend, recommend_calibrated, run_calibration, spgemm
from repro.autotune import resolve_auto
from repro.core.engine import resolve_engine
from repro.datasets import load_suite

#: Calibration grid scale (2**scale rows per generated problem).
AUTOTUNE_SCALE = int(os.environ.get("REPRO_BENCH_AUTOTUNE_SCALE", "10"))

#: Proxy-suite dimension cap for the comparison jobs.
AUTOTUNE_MAX_N = int(
    os.environ.get("REPRO_BENCH_AUTOTUNE_MAX_N", str(SUITE_MAX_N))
)

#: Upper bound on refinement warm-up passes (stops early once the
#: selector's verdicts stop changing between passes).
REFINE_PASSES = int(os.environ.get("REPRO_BENCH_AUTOTUNE_PASSES", "3"))


def _timed(m, algorithm, sort_output):
    """Best-of wall seconds of one verdict, sized to the engine it gets.

    Kernels the batched engine covers are cheap enough for best-of-2 with
    warmup; faithful-only verdicts (e.g. the static recipe's
    MKL-inspector cells) already take seconds per call, so they run
    single-shot.
    """
    if resolve_engine("fast", algorithm) == "fast":
        warmup, repeats = 1, 2
    else:
        warmup, repeats = 0, 1
    best, _, _ = time_call(
        spgemm, m, m, algorithm=algorithm, engine="fast",
        sort_output=sort_output, warmup=warmup, repeats=repeats,
    )
    return best


def _refine(profile, jobs):
    """Run ``algorithm="auto"`` traffic until the verdicts stabilize.

    Each pass resolves every job through the calibrated selector and
    feeds the measured wall seconds of the chosen kernel back into the
    profile's online refiner — exactly what production ``auto`` traffic
    does.  Returns the per-pass verdict history.
    """
    import time as _time

    history = []
    previous = None
    for _ in range(REFINE_PASSES):
        verdicts = {}
        for name, m, sort_output in jobs:
            algorithm, observe = resolve_auto(
                m, m, sort_output=sort_output, profile=profile
            )
            t0 = _time.perf_counter()
            spgemm(
                m, m, algorithm=algorithm, engine="fast",
                sort_output=sort_output,
            )
            observe(_time.perf_counter() - t0)
            verdicts[(name, sort_output)] = algorithm
        history.append(verdicts)
        if verdicts == previous:
            break
        previous = verdicts
    return history


def test_autotune_record():
    profile = run_calibration(
        scale=AUTOTUNE_SCALE, repeats=1, engine="fast", nthreads=1
    )
    suite = load_suite(max_n=AUTOTUNE_MAX_N)
    jobs = [
        (name, m, sort_output)
        for name, m in sorted(suite.items())
        for sort_output in (True, False)
    ]

    history = _refine(profile, jobs)

    records = []
    static_total = calibrated_total = 0.0
    agreements = 0
    for name, m, sort_output in jobs:
        d_static = recommend(m, sort_output=sort_output)
        d_cal = recommend_calibrated(
            m, sort_output=sort_output, profile=profile
        )
        t_static = _timed(m, d_static.algorithm, sort_output)
        if d_cal.algorithm == d_static.algorithm:
            t_cal = t_static
            agreements += 1
        else:
            t_cal = _timed(m, d_cal.algorithm, sort_output)
        static_total += t_static
        calibrated_total += t_cal
        records.append({
            "matrix": name,
            "n": m.nrows,
            "nnz": m.nnz,
            "sort_output": sort_output,
            "static_algorithm": d_static.algorithm,
            "static_seconds": t_static,
            "calibrated_algorithm": d_cal.algorithm,
            "calibrated_seconds": t_cal,
        })

    speedup = static_total / calibrated_total if calibrated_total else 1.0
    record_json(
        "BENCH_autotune",
        {
            "description": (
                "aggregate wall seconds of following each selector's "
                "verdict over the Table-2 proxy suite (engine='fast'), "
                "after calibration + online refinement warm-up"
            ),
            "calibration": {
                "scale": AUTOTUNE_SCALE,
                "machine": profile.machine,
                "engine": profile.engine,
                "grid_problems": profile.grid["problems"],
                "curves": {
                    alg: {
                        "coefficients": list(curve.coefficients),
                        "rmse_seconds": curve.rmse_seconds,
                        "samples": curve.samples,
                    }
                    for alg, curve in sorted(profile.curves.items())
                },
            },
            "refinement": {
                "passes": len(history),
                "observations": profile.refiner.observations(),
                "verdict_changes_per_pass": [
                    sum(
                        1 for k in cur
                        if prev is not None and cur[k] != prev[k]
                    )
                    for prev, cur in zip([None] + history[:-1], history)
                ],
            },
            "suite_max_n": AUTOTUNE_MAX_N,
            "jobs": records,
            "totals": {
                "static_seconds": static_total,
                "calibrated_seconds": calibrated_total,
                "speedup": speedup,
                "jobs": len(records),
                "agreements": agreements,
            },
        },
        mirror_repo_root=True,
    )
    print(
        f"\nautotune: static {static_total:.3f}s vs calibrated "
        f"{calibrated_total:.3f}s over {len(records)} jobs "
        f"({agreements} agreements, {len(history)} refinement passes) "
        f"-> {speedup:.2f}x"
    )
    # ISSUE 9 acceptance gate: calibrated advice must win in aggregate.
    assert calibrated_total <= static_total


if __name__ == "__main__":
    test_autotune_record()
