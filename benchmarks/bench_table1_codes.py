"""Table 1 — summary of the SpGEMM codes studied.

Prints the executable registry in the paper's Table-1 layout and checks
that every paper row is represented with the right properties.
"""

import pytest

from repro.core.spgemm import ALGORITHMS, available_algorithms, spgemm
from repro import random_csr

from _util import emit


@pytest.fixture(scope="module")
def table1():
    lines = [
        "Table 1: Summary of SpGEMM codes studied",
        f"{'Algorithm':<14s} {'Phases':^6s} {'Accumulator':<18s} {'Sortedness (In/Out)':<18s}",
        "-" * 64,
    ]
    for info in ALGORITHMS.values():
        lines.append(info.table_row())
    text = "\n".join(lines)
    emit("table1_codes", text)
    return text


def test_table1_contents(table1, benchmark):
    # the paper's five rows are all present with their printed properties
    assert "mkl" in table1 and "heap" in table1 and "hash" in table1
    assert "mkl_inspector" in table1 and "hashvec" in table1
    assert "kokkos" in table1
    assert "(proxy)" in table1  # closed-source stand-ins are marked
    info = ALGORITHMS
    assert info["mkl"].phases == 2 and info["mkl_inspector"].phases == 1
    assert info["kokkos"].phases == 2
    assert info["hash"].accumulator == "Hash Table"
    assert info["heap"].accumulator == "Heap"
    # every registered algorithm is runnable through the dispatcher
    a = random_csr(16, 16, 0.2, seed=0)
    for alg in available_algorithms():
        spgemm(a, a, algorithm=alg)
    benchmark(lambda: [i.table_row() for i in ALGORITHMS.values()])
