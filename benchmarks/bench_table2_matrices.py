"""Table 2 — matrix data used in the experiments.

Prints, for every proxy in the suite: the paper's published statistics
(n, nnz(A), flop(A²), nnz(A²)) next to the proxy's measured statistics at
the benchmark dimension cap, plus per-row density and compression ratio,
so the structural fidelity of each substitution is auditable.
"""

import pytest

from repro.datasets import DATASETS, load_suite
from repro.matrix.stats import matrix_stats

from _util import SUITE_MAX_N, emit


@pytest.fixture(scope="module")
def table2():
    suite = load_suite(max_n=SUITE_MAX_N)
    lines = [
        f"Table 2: proxy suite at max_n={SUITE_MAX_N} "
        "(paper values in parentheses, counts in millions)",
        f"{'Matrix':<18s} {'n':>14s} {'nnz/row':>18s} {'CR=flop/nnzC':>20s}",
        "-" * 74,
    ]
    stats = {}
    for name, m in suite.items():
        st = matrix_stats(name, m)
        spec = DATASETS[name]
        stats[name] = (st, spec)
        lines.append(
            f"{name:<18s} "
            f"{m.nrows / 1e6:>6.3f} ({spec.paper_n / 1e6:5.3f}) "
            f"{m.nnz / m.nrows:>8.1f} ({spec.paper_nnz_per_row:6.1f}) "
            f"{st.compression_ratio:>8.2f} ({spec.paper_compression_ratio:7.2f})"
        )
    text = "\n".join(lines)
    emit("table2_matrices", text)
    return stats


def test_table2_fidelity(table2, benchmark):
    stats = table2
    assert len(stats) == 26
    for name, (st, spec) in stats.items():
        # per-row density within 2x of the original
        ratio = st.edge_factor / spec.paper_nnz_per_row
        assert 0.5 < ratio < 2.0, name
    # the suite's compression-ratio range spans sparse-output graphs (~1)
    # through FEM problems (>6), the spread Figs. 14/15/17 rely on
    crs = [st.compression_ratio for st, _ in stats.values()]
    assert min(crs) < 1.5
    assert max(crs) > 6.0
    # paper stats sanity: Table 2's own numbers reproduce their CR column
    assert stats["pwtk"][1].paper_compression_ratio == pytest.approx(
        626.05 / 32.77, rel=1e-3
    )
    benchmark(lambda: matrix_stats("cage12", next(iter([
        load_suite(max_n=2000, subset=["cage12"])["cage12"]
    ]))))
